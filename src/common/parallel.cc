#include "common/parallel.h"

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <exception>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "robustness/deadline.h"

namespace tsad {

namespace {

// Set on pool threads so nested ParallelFor calls run inline instead of
// re-entering the pool (which could otherwise deadlock: every worker
// waiting on work only workers can finish).
thread_local bool t_in_worker = false;

// --threads override; 0 means "not set".
std::atomic<std::size_t> g_thread_override{0};

std::size_t HardwareThreads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

std::size_t EnvThreads() {
  static const std::size_t cached = [] {
    const char* env = std::getenv("TSAD_THREADS");
    if (env == nullptr || *env == '\0') return std::size_t{0};
    char* end = nullptr;
    const unsigned long long v = std::strtoull(env, &end, 10);
    if (end == env || *end != '\0') return std::size_t{0};  // not a number
    return static_cast<std::size_t>(v);
  }();
  return cached;
}

// One ParallelFor invocation: a chunk-claim counter plus completion and
// first-error bookkeeping, shared between the submitting thread and the
// pool workers.
struct Job {
  std::size_t begin = 0;
  std::size_t end = 0;
  std::size_t grain = 1;
  std::size_t num_chunks = 0;
  const std::function<Status(std::size_t)>* fn = nullptr;

  // Deadline of the submitting thread, re-installed on every worker.
  bool deadline_active = false;
  std::chrono::steady_clock::time_point deadline;

  std::atomic<std::size_t> next_chunk{0};  // claim counter
  std::atomic<std::size_t> remaining;      // chunks not yet finished

  // Lowest failing index and its Status. error_index doubles as the
  // cheap skip signal: chunks entirely above it are not executed.
  std::atomic<std::size_t> error_index{kNoError};
  Status first_error;
  std::mutex error_mu;

  std::mutex done_mu;
  std::condition_variable done_cv;

  static constexpr std::size_t kNoError = static_cast<std::size_t>(-1);

  void RecordError(std::size_t index, Status status) {
    std::lock_guard<std::mutex> lock(error_mu);
    if (index < error_index.load(std::memory_order_relaxed)) {
      error_index.store(index, std::memory_order_relaxed);
      first_error = std::move(status);
    }
  }

  // Runs one index with exception containment.
  void RunIndex(std::size_t i) {
    Status s;
    try {
      s = (*fn)(i);
    } catch (const std::exception& e) {
      s = Status::Internal(std::string("worker exception: ") + e.what());
    } catch (...) {
      s = Status::Internal("worker exception of unknown type");
    }
    if (!s.ok()) RecordError(i, std::move(s));
  }

  // Claims and executes chunks until none are left. Both the submitter
  // and the workers drive this — the serial path is literally this
  // function on one thread.
  void RunChunks() {
    for (;;) {
      const std::size_t c = next_chunk.fetch_add(1, std::memory_order_relaxed);
      if (c >= num_chunks) return;
      const std::size_t lo = begin + c * grain;
      const std::size_t hi = std::min(end, lo + grain);
      // Skip work strictly above an already-recorded error; indices
      // below it always run so the LOWEST error is found exactly.
      if (error_index.load(std::memory_order_relaxed) >= lo) {
        for (std::size_t i = lo; i < hi; ++i) {
          if (error_index.load(std::memory_order_relaxed) < i) break;
          RunIndex(i);
        }
      }
      FinishChunk();
    }
  }

  void FinishChunk() {
    if (remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard<std::mutex> lock(done_mu);
      done_cv.notify_all();
    }
  }

  void WaitDone() {
    std::unique_lock<std::mutex> lock(done_mu);
    done_cv.wait(lock,
                 [&] { return remaining.load(std::memory_order_acquire) == 0; });
  }
};

// The lazily-initialized fixed pool. Worker count follows
// ParallelThreads() - 1 (the submitting thread is the extra worker);
// resizes happen between loops, never under one.
class ThreadPool {
 public:
  static ThreadPool& Instance() {
    static ThreadPool pool;
    return pool;
  }

  Status Run(std::size_t begin, std::size_t end,
             const std::function<Status(std::size_t)>& fn, std::size_t grain) {
    if (begin >= end) return Status::OK();
    if (grain == 0) grain = 1;

    // shared_ptr, not a stack object: a worker that selected this job
    // may still hold a reference after the submitter has seen
    // completion and returned.
    auto job = std::make_shared<Job>();
    job->begin = begin;
    job->end = end;
    job->grain = grain;
    job->num_chunks = (end - begin + grain - 1) / grain;
    job->fn = &fn;
    job->remaining.store(job->num_chunks, std::memory_order_relaxed);
    job->deadline_active = DeadlineActive();
    if (job->deadline_active) job->deadline = DeadlineTimePoint();

    const std::size_t threads = ParallelThreads();
    const bool serial = t_in_worker || threads <= 1 || job->num_chunks <= 1;
    if (!serial) {
      EnsureWorkers(threads - 1);
      Submit(job);
    }
    job->RunChunks();  // the submitter always participates
    if (!serial) {
      job->WaitDone();
      Retire(job.get());
    }
    if (job->error_index.load(std::memory_order_relaxed) != Job::kNoError) {
      return job->first_error;
    }
    return Status::OK();
  }

 private:
  ThreadPool() = default;

  ~ThreadPool() { StopAll(); }

  void Submit(std::shared_ptr<Job> job) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      jobs_.push_back(std::move(job));
      ++inflight_;
    }
    cv_.notify_all();
  }

  void Retire(Job* job) {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto it = jobs_.begin(); it != jobs_.end(); ++it) {
      if (it->get() == job) {
        jobs_.erase(it);
        break;
      }
    }
    --inflight_;
  }

  void EnsureWorkers(std::size_t desired) {
    std::unique_lock<std::mutex> lock(mu_);
    if (workers_.size() == desired) return;
    // Only resize between loops; a concurrent submitter keeps the
    // current size and the resize lands on a later call.
    if (inflight_ != 0) return;
    StopAllLocked(lock);
    stop_ = false;
    workers_.reserve(desired);
    for (std::size_t i = 0; i < desired; ++i) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }

  void StopAll() {
    std::unique_lock<std::mutex> lock(mu_);
    StopAllLocked(lock);
  }

  // Precondition: `lock` holds mu_. Re-acquires it before returning.
  void StopAllLocked(std::unique_lock<std::mutex>& lock) {
    stop_ = true;
    lock.unlock();
    cv_.notify_all();
    for (std::thread& t : workers_) t.join();
    workers_.clear();
    lock.lock();
  }

  void WorkerLoop() {
    t_in_worker = true;
    for (;;) {
      std::shared_ptr<Job> job;
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [&] { return stop_ || !jobs_.empty(); });
        if (stop_) return;
        // Claim from the oldest job that still has unclaimed chunks;
        // fully-claimed jobs stay queued until their submitter retires
        // them (other workers may still be executing their chunks).
        for (const std::shared_ptr<Job>& candidate : jobs_) {
          if (candidate->next_chunk.load(std::memory_order_relaxed) <
              candidate->num_chunks) {
            job = candidate;
            break;
          }
        }
        if (job == nullptr) {
          // Nothing claimable right now; avoid a busy spin by waiting
          // for the queue to change.
          cv_.wait_for(lock, std::chrono::milliseconds(1));
          continue;
        }
      }
      if (job->deadline_active) {
        // Adopt the submitter's absolute deadline so CheckDeadline()
        // polls inside the loop body stay cooperative per worker.
        DeadlineScope scope(job->deadline);
        job->RunChunks();
      } else {
        job->RunChunks();
      }
    }
  }

  std::mutex mu_;
  std::condition_variable cv_;
  std::vector<std::thread> workers_;
  std::deque<std::shared_ptr<Job>> jobs_;
  std::size_t inflight_ = 0;
  bool stop_ = false;
};

}  // namespace

std::size_t ParallelThreads() {
  const std::size_t override_count =
      g_thread_override.load(std::memory_order_relaxed);
  if (override_count > 0) return override_count;
  const std::size_t env = EnvThreads();
  if (env > 0) return env;
  return HardwareThreads();
}

void SetParallelThreads(std::size_t n) {
  g_thread_override.store(n, std::memory_order_relaxed);
}

Status ParallelFor(std::size_t begin, std::size_t end,
                   const std::function<Status(std::size_t)>& fn,
                   std::size_t grain) {
  return ThreadPool::Instance().Run(begin, end, fn, grain);
}

}  // namespace tsad
