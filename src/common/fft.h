// FFT support for MASS (Mueen's Algorithm for Similarity Search), the
// sliding-dot-product kernel under the matrix profile / discord
// substrate.
//
// We implement an iterative radix-2 Cooley-Tukey transform and provide
// power-of-two padding helpers; callers (MASS) pad to the next power of
// two, so no Bluestein stage is needed.

#ifndef TSAD_COMMON_FFT_H_
#define TSAD_COMMON_FFT_H_

#include <complex>
#include <cstddef>
#include <vector>

namespace tsad {

/// In-place iterative radix-2 FFT. `inverse` applies the conjugate
/// transform and the 1/N scaling.
///
/// The transform length must be a power of two; this is enforced in
/// ALL build modes (not just debug asserts): a non-power-of-two input
/// is zero-padded in place to NextPowerOfTwo(x.size()), so x may grow.
/// Callers that care about the exact transform length (all of MASS
/// does) should pad explicitly, as SlidingDotProduct already does; the
/// internal padding is a release-build safety net, never silent
/// garbage. An empty input is a no-op.
void Fft(std::vector<std::complex<double>>& x, bool inverse);

/// Smallest power of two >= n (n = 0 maps to 1).
std::size_t NextPowerOfTwo(std::size_t n);

/// Full linear cross-correlation-style sliding dot products via FFT:
/// given series t (length n) and query q (length m <= n), returns the
/// vector d of length n - m + 1 with
///   d[i] = sum_{j=0}^{m-1} t[i + j] * q[j].
/// Runs in O(n log n).
std::vector<double> SlidingDotProduct(const std::vector<double>& t,
                                      const std::vector<double>& q);

/// Naive O(n*m) reference of SlidingDotProduct, used by tests and as a
/// fallback for tiny inputs.
std::vector<double> SlidingDotProductNaive(const std::vector<double>& t,
                                           const std::vector<double>& q);

}  // namespace tsad

#endif  // TSAD_COMMON_FFT_H_
