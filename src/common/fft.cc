#include "common/fft.h"

#include <cassert>
#include <cmath>

namespace tsad {

namespace {
constexpr double kPi = 3.14159265358979323846;
}  // namespace

std::size_t NextPowerOfTwo(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

void Fft(std::vector<std::complex<double>>& x, bool inverse) {
  // The radix-2 butterflies require a power-of-two length. An assert
  // alone compiles out under NDEBUG and the loops below then silently
  // produce garbage, so the precondition is enforced in release builds
  // too: non-power-of-two inputs are zero-padded in place to the next
  // power of two (documented in the header; callers observe x.size()
  // growing). An empty input is a no-op.
  if (x.empty()) return;
  if ((x.size() & (x.size() - 1)) != 0) {
    x.resize(NextPowerOfTwo(x.size()));
  }
  const std::size_t n = x.size();
  assert(n > 0 && (n & (n - 1)) == 0 && "FFT size must be a power of two");

  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(x[i], x[j]);
  }

  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle = 2.0 * kPi / static_cast<double>(len) *
                         (inverse ? 1.0 : -1.0);
    const std::complex<double> wlen(std::cos(angle), std::sin(angle));
    for (std::size_t i = 0; i < n; i += len) {
      std::complex<double> w(1.0, 0.0);
      for (std::size_t j = 0; j < len / 2; ++j) {
        const std::complex<double> u = x[i + j];
        const std::complex<double> v = x[i + j + len / 2] * w;
        x[i + j] = u + v;
        x[i + j + len / 2] = u - v;
        w *= wlen;
      }
    }
  }

  if (inverse) {
    const double inv_n = 1.0 / static_cast<double>(n);
    for (auto& c : x) c *= inv_n;
  }
}

std::vector<double> SlidingDotProductNaive(const std::vector<double>& t,
                                           const std::vector<double>& q) {
  const std::size_t n = t.size();
  const std::size_t m = q.size();
  if (m == 0 || m > n) return {};
  std::vector<double> out(n - m + 1);
  for (std::size_t i = 0; i + m <= n; ++i) {
    double acc = 0.0;
    for (std::size_t j = 0; j < m; ++j) acc += t[i + j] * q[j];
    out[i] = acc;
  }
  return out;
}

std::vector<double> SlidingDotProduct(const std::vector<double>& t,
                                      const std::vector<double>& q) {
  const std::size_t n = t.size();
  const std::size_t m = q.size();
  if (m == 0 || m > n) return {};
  if (n < 64) return SlidingDotProductNaive(t, q);  // not worth the FFT

  const std::size_t size = NextPowerOfTwo(n + m - 1);
  std::vector<std::complex<double>> fa(size), fb(size);
  for (std::size_t i = 0; i < n; ++i) fa[i] = t[i];
  // Reverse q so that convolution yields correlation.
  for (std::size_t i = 0; i < m; ++i) fb[i] = q[m - 1 - i];

  Fft(fa, /*inverse=*/false);
  Fft(fb, /*inverse=*/false);
  for (std::size_t i = 0; i < size; ++i) fa[i] *= fb[i];
  Fft(fa, /*inverse=*/true);

  // Valid correlation outputs live at offsets m-1 .. n-1.
  std::vector<double> out(n - m + 1);
  for (std::size_t i = 0; i + m <= n; ++i) out[i] = fa[i + m - 1].real();
  return out;
}

}  // namespace tsad
