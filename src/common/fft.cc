#include "common/fft.h"

#include <cassert>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <list>
#include <mutex>
#include <unordered_map>

namespace tsad {

namespace {
constexpr double kPi = 3.14159265358979323846;
}  // namespace

std::size_t NextPowerOfTwo(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

void Fft(std::vector<std::complex<double>>& x, bool inverse) {
  // The radix-2 butterflies require a power-of-two length. An assert
  // alone compiles out under NDEBUG and the loops below then silently
  // produce garbage, so the precondition is enforced in release builds
  // too: non-power-of-two inputs are zero-padded in place to the next
  // power of two (documented in the header; callers observe x.size()
  // growing). An empty input is a no-op.
  if (x.empty()) return;
  if ((x.size() & (x.size() - 1)) != 0) {
    x.resize(NextPowerOfTwo(x.size()));
  }
  const std::size_t n = x.size();
  assert(n > 0 && (n & (n - 1)) == 0 && "FFT size must be a power of two");

  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(x[i], x[j]);
  }

  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle = 2.0 * kPi / static_cast<double>(len) *
                         (inverse ? 1.0 : -1.0);
    const std::complex<double> wlen(std::cos(angle), std::sin(angle));
    for (std::size_t i = 0; i < n; i += len) {
      std::complex<double> w(1.0, 0.0);
      for (std::size_t j = 0; j < len / 2; ++j) {
        const std::complex<double> u = x[i + j];
        const std::complex<double> v = x[i + j + len / 2] * w;
        x[i + j] = u + v;
        x[i + j + len / 2] = u - v;
        w *= wlen;
      }
    }
  }

  if (inverse) {
    const double inv_n = 1.0 / static_cast<double>(n);
    for (auto& c : x) c *= inv_n;
  }
}

FftPlan::FftPlan(std::size_t n) : n_(NextPowerOfTwo(n)) {
  // Bit-reversal permutation, tabulated by the same incremental
  // recurrence the free Fft runs per call.
  bitrev_.assign(n_, 0);
  for (std::size_t i = 1, j = 0; i < n_; ++i) {
    std::size_t bit = n_ >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    bitrev_[i] = j;
  }

  // Twiddle tables: for each stage the free Fft restarts w at (1, 0)
  // and advances it with w *= wlen for every butterfly, the same
  // sequence in every i-block. Tabulating that exact recurrence once
  // yields the exact doubles the free function multiplies by, which is
  // what makes the planned transform bit-identical.
  fwd_twiddles_.reserve(n_ > 0 ? n_ - 1 : 0);
  inv_twiddles_.reserve(n_ > 0 ? n_ - 1 : 0);
  for (int pass = 0; pass < 2; ++pass) {
    const bool inverse = pass == 1;
    auto& table = inverse ? inv_twiddles_ : fwd_twiddles_;
    for (std::size_t len = 2; len <= n_; len <<= 1) {
      const double angle = 2.0 * kPi / static_cast<double>(len) *
                           (inverse ? 1.0 : -1.0);
      const std::complex<double> wlen(std::cos(angle), std::sin(angle));
      std::complex<double> w(1.0, 0.0);
      for (std::size_t j = 0; j < len / 2; ++j) {
        table.push_back(w);
        w *= wlen;
      }
    }
  }
}

void FftPlan::Run(std::vector<std::complex<double>>& x, bool inverse) const {
  if (x.size() > n_) {
    std::fprintf(stderr,
                 "FftPlan: input length %zu exceeds plan size %zu — "
                 "transforming a truncated prefix would corrupt results\n",
                 x.size(), n_);
    std::abort();
  }
  if (x.size() != n_) x.resize(n_);

  for (std::size_t i = 1; i < n_; ++i) {
    const std::size_t j = bitrev_[i];
    if (i < j) std::swap(x[i], x[j]);
  }

  const std::vector<std::complex<double>>& twiddles =
      inverse ? inv_twiddles_ : fwd_twiddles_;
  for (std::size_t len = 2; len <= n_; len <<= 1) {
    const std::complex<double>* w = twiddles.data() + (len / 2 - 1);
    const std::size_t half = len / 2;
    for (std::size_t i = 0; i < n_; i += len) {
      for (std::size_t j = 0; j < half; ++j) {
        const std::complex<double> u = x[i + j];
        const std::complex<double> v = x[i + j + half] * w[j];
        x[i + j] = u + v;
        x[i + j + half] = u - v;
      }
    }
  }

  if (inverse) {
    const double inv_n = 1.0 / static_cast<double>(n_);
    for (auto& c : x) c *= inv_n;
  }
}

void FftPlan::Forward(std::vector<std::complex<double>>& x) const {
  Run(x, /*inverse=*/false);
}

void FftPlan::Inverse(std::vector<std::complex<double>>& x) const {
  Run(x, /*inverse=*/true);
}

namespace {

struct PlanCache {
  std::mutex mutex;
  struct Entry {
    std::shared_ptr<const FftPlan> plan;
    std::list<std::size_t>::iterator lru_pos;
  };
  std::unordered_map<std::size_t, Entry> plans;
  std::list<std::size_t> lru;  // front = most recently used
  std::size_t capacity = kDefaultFftPlanCacheCapacity;
  std::size_t hits = 0;
  std::size_t misses = 0;
  std::size_t evictions = 0;

  PlanCache() {
    if (const char* env = std::getenv("TSAD_FFT_PLAN_CACHE_CAP")) {
      char* end = nullptr;
      const unsigned long long v = std::strtoull(env, &end, 10);
      if (end != env && *end == '\0') {
        capacity = static_cast<std::size_t>(v);
      }
    }
  }

  // Drops least-recently-used plans until within capacity. Caller
  // holds the mutex. capacity == 0 means unbounded.
  void EvictToCapacity() {
    if (capacity == 0) return;
    while (plans.size() > capacity) {
      plans.erase(lru.back());
      lru.pop_back();
      ++evictions;
    }
  }
};

PlanCache& GetPlanCache() {
  static PlanCache* cache = new PlanCache;  // leaked: workers may outlive exit
  return *cache;
}

}  // namespace

std::shared_ptr<const FftPlan> GetFftPlan(std::size_t n) {
  const std::size_t size = NextPowerOfTwo(n);
  PlanCache& cache = GetPlanCache();
  std::lock_guard<std::mutex> lock(cache.mutex);
  auto it = cache.plans.find(size);
  if (it != cache.plans.end()) {
    ++cache.hits;
    cache.lru.splice(cache.lru.begin(), cache.lru, it->second.lru_pos);
    return it->second.plan;
  }
  ++cache.misses;
  auto plan = std::make_shared<const FftPlan>(size);
  cache.lru.push_front(size);
  cache.plans.emplace(size, PlanCache::Entry{plan, cache.lru.begin()});
  cache.EvictToCapacity();
  return plan;
}

void SetFftPlanCacheCapacity(std::size_t capacity) {
  PlanCache& cache = GetPlanCache();
  std::lock_guard<std::mutex> lock(cache.mutex);
  cache.capacity = capacity;
  cache.EvictToCapacity();
}

std::size_t FftPlanCacheCapacity() {
  PlanCache& cache = GetPlanCache();
  std::lock_guard<std::mutex> lock(cache.mutex);
  return cache.capacity;
}

FftPlanCacheStats GetFftPlanCacheStats() {
  PlanCache& cache = GetPlanCache();
  std::lock_guard<std::mutex> lock(cache.mutex);
  return {cache.hits, cache.misses, cache.evictions, cache.plans.size()};
}

void ResetFftPlanCacheStats() {
  PlanCache& cache = GetPlanCache();
  std::lock_guard<std::mutex> lock(cache.mutex);
  cache.hits = 0;
  cache.misses = 0;
  cache.evictions = 0;
}

std::vector<double> SlidingDotProductNaive(const std::vector<double>& t,
                                           const std::vector<double>& q) {
  const std::size_t n = t.size();
  const std::size_t m = q.size();
  if (m == 0 || m > n) return {};
  std::vector<double> out(n - m + 1);
  for (std::size_t i = 0; i + m <= n; ++i) {
    double acc = 0.0;
    for (std::size_t j = 0; j < m; ++j) acc += t[i + j] * q[j];
    out[i] = acc;
  }
  return out;
}

std::vector<double> SlidingDotProduct(const std::vector<double>& t,
                                      const std::vector<double>& q) {
  const std::size_t n = t.size();
  const std::size_t m = q.size();
  if (m == 0 || m > n) return {};
  if (n < 64) return SlidingDotProductNaive(t, q);  // not worth the FFT

  const std::size_t size = NextPowerOfTwo(n + m - 1);
  std::vector<std::complex<double>> fa(size), fb(size);
  for (std::size_t i = 0; i < n; ++i) fa[i] = t[i];
  // Reverse q so that convolution yields correlation.
  for (std::size_t i = 0; i < m; ++i) fb[i] = q[m - 1 - i];

  Fft(fa, /*inverse=*/false);
  Fft(fb, /*inverse=*/false);
  for (std::size_t i = 0; i < size; ++i) fa[i] *= fb[i];
  Fft(fa, /*inverse=*/true);

  // Valid correlation outputs live at offsets m-1 .. n-1.
  std::vector<double> out(n - m + 1);
  for (std::size_t i = 0; i + m <= n; ++i) out[i] = fa[i + m - 1].real();
  return out;
}

SlidingDotPlan::SlidingDotPlan(const std::vector<double>& series, std::size_t m)
    : series_(series), m_(m) {
  const std::size_t n = series_.size();
  // Degenerate shapes and the small-input naive cutoff never touch the
  // FFT in the free function; the plan mirrors that exactly.
  if (m_ == 0 || m_ > n || n < 64) return;
  size_ = NextPowerOfTwo(n + m_ - 1);
  fft_ = GetFftPlan(size_);
  spectrum_.assign(size_, std::complex<double>());
  for (std::size_t i = 0; i < n; ++i) spectrum_[i] = series_[i];
  fft_->Forward(spectrum_);
}

std::vector<double> SlidingDotPlan::Query(const std::vector<double>& q) const {
  if (q.size() != m_) {
    std::fprintf(stderr,
                 "SlidingDotPlan: query length %zu does not match the plan's "
                 "query length %zu\n",
                 q.size(), m_);
    std::abort();
  }
  const std::size_t n = series_.size();
  const std::size_t m = m_;
  if (m == 0 || m > n) return {};
  if (n < 64) return SlidingDotProductNaive(series_, q);

  std::vector<std::complex<double>> fb(size_);
  for (std::size_t i = 0; i < m; ++i) fb[i] = q[m - 1 - i];
  fft_->Forward(fb);
  // Same operand order as the free function's fa[i] *= fb[i] (series
  // spectrum times query spectrum).
  for (std::size_t i = 0; i < size_; ++i) fb[i] = spectrum_[i] * fb[i];
  fft_->Inverse(fb);

  std::vector<double> out(n - m + 1);
  for (std::size_t i = 0; i + m <= n; ++i) out[i] = fb[i + m - 1].real();
  return out;
}

}  // namespace tsad
