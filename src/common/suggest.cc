#include "common/suggest.h"

#include <algorithm>
#include <limits>

namespace tsad {

std::size_t EditDistance(std::string_view a, std::string_view b) {
  std::vector<std::size_t> row(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j) row[j] = j;
  for (std::size_t i = 1; i <= a.size(); ++i) {
    std::size_t diag = row[0];
    row[0] = i;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const std::size_t subst = diag + (a[i - 1] == b[j - 1] ? 0 : 1);
      diag = row[j];
      row[j] = std::min({row[j] + 1, row[j - 1] + 1, subst});
    }
  }
  return row[b.size()];
}

std::string SuggestClosest(std::string_view name,
                           const std::vector<std::string>& candidates) {
  std::string best;
  std::size_t best_distance = std::numeric_limits<std::size_t>::max();
  for (const std::string& candidate : candidates) {
    const std::size_t d = EditDistance(name, candidate);
    if (d < best_distance) {
      best_distance = d;
      best = candidate;
    }
  }
  const std::size_t cutoff = std::max<std::size_t>(1, name.size() / 2);
  return best_distance <= cutoff ? best : std::string();
}

}  // namespace tsad
