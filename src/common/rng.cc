#include "common/rng.h"

#include <cassert>
#include <cmath>

namespace tsad {

namespace {

constexpr double kPi = 3.14159265358979323846;

uint64_t SplitMix64(uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

inline uint64_t Rotl(uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(uint64_t seed) : seed_(seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(sm);
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high bits -> [0, 1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  const uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<int64_t>(NextUint64());  // full range
  // Rejection sampling to avoid modulo bias.
  const uint64_t limit = UINT64_MAX - UINT64_MAX % range;
  uint64_t v;
  do {
    v = NextUint64();
  } while (v >= limit);
  return lo + static_cast<int64_t>(v % range);
}

double Rng::Gaussian() {
  // Box-Muller; u1 nudged away from 0 to keep log finite.
  double u1 = NextDouble();
  const double u2 = NextDouble();
  if (u1 < 1e-300) u1 = 1e-300;
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * kPi * u2);
}

double Rng::Gaussian(double mean, double stddev) {
  return mean + stddev * Gaussian();
}

bool Rng::Bernoulli(double p) { return NextDouble() < p; }

double Rng::Exponential(double lambda) {
  assert(lambda > 0.0);
  double u = NextDouble();
  if (u < 1e-300) u = 1e-300;
  return -std::log(u) / lambda;
}

uint64_t Rng::Poisson(double mean) {
  assert(mean >= 0.0);
  if (mean <= 0.0) return 0;
  if (mean > 64.0) {
    // Normal approximation with continuity correction.
    const double v = Gaussian(mean, std::sqrt(mean));
    return v <= 0.0 ? 0 : static_cast<uint64_t>(v + 0.5);
  }
  const double limit = std::exp(-mean);
  uint64_t k = 0;
  double p = 1.0;
  do {
    ++k;
    p *= NextDouble();
  } while (p > limit);
  return k - 1;
}

Rng Rng::Fork(uint64_t stream) {
  // Mix the original seed with the stream id through SplitMix64 so
  // forked generators are independent of draw order on the parent.
  uint64_t mix = seed_ ^ (0xA0761D6478BD642FULL * (stream + 1));
  const uint64_t derived = SplitMix64(mix);
  return Rng(derived);
}

}  // namespace tsad
