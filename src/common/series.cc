#include "common/series.h"

#include <algorithm>
#include <cmath>

namespace tsad {

std::vector<AnomalyRegion> NormalizeRegions(
    std::vector<AnomalyRegion> regions) {
  std::erase_if(regions,
                [](const AnomalyRegion& r) { return r.begin >= r.end; });
  std::sort(regions.begin(), regions.end(),
            [](const AnomalyRegion& a, const AnomalyRegion& b) {
              return a.begin < b.begin;
            });
  std::vector<AnomalyRegion> merged;
  for (const AnomalyRegion& r : regions) {
    if (!merged.empty() && r.begin <= merged.back().end) {
      merged.back().end = std::max(merged.back().end, r.end);
    } else {
      merged.push_back(r);
    }
  }
  return merged;
}

std::vector<AnomalyRegion> RegionsFromBinary(
    const std::vector<uint8_t>& labels) {
  std::vector<AnomalyRegion> regions;
  std::size_t i = 0;
  const std::size_t n = labels.size();
  while (i < n) {
    if (labels[i]) {
      std::size_t begin = i;
      while (i < n && labels[i]) ++i;
      regions.push_back({begin, i});
    } else {
      ++i;
    }
  }
  return regions;
}

std::vector<uint8_t> BinaryFromRegions(
    const std::vector<AnomalyRegion>& regions, std::size_t n) {
  std::vector<uint8_t> labels(n, 0);
  for (const AnomalyRegion& r : regions) {
    for (std::size_t i = r.begin; i < r.end && i < n; ++i) labels[i] = 1;
  }
  return labels;
}

bool LabeledSeries::IsAnomalous(std::size_t i) const {
  // anomalies_ is sorted and disjoint: binary search by begin.
  auto it = std::upper_bound(
      anomalies_.begin(), anomalies_.end(), i,
      [](std::size_t x, const AnomalyRegion& r) { return x < r.begin; });
  if (it == anomalies_.begin()) return false;
  return std::prev(it)->contains(i);
}

std::size_t LabeledSeries::NumAnomalousPoints() const {
  std::size_t total = 0;
  for (const AnomalyRegion& r : anomalies_) {
    std::size_t end = std::min(r.end, values_.size());
    if (r.begin < end) total += end - r.begin;
  }
  return total;
}

double LabeledSeries::AnomalyDensity() const {
  if (values_.empty()) return 0.0;
  return static_cast<double>(NumAnomalousPoints()) /
         static_cast<double>(values_.size());
}

Status LabeledSeries::Validate() const {
  for (const AnomalyRegion& r : anomalies_) {
    if (r.end > values_.size()) {
      return Status::InvalidArgument(
          "series '" + name_ + "': anomaly region [" +
          std::to_string(r.begin) + ", " + std::to_string(r.end) +
          ") exceeds series length " + std::to_string(values_.size()));
    }
  }
  if (train_length_ > values_.size()) {
    return Status::InvalidArgument(
        "series '" + name_ + "': train_length " +
        std::to_string(train_length_) + " exceeds series length " +
        std::to_string(values_.size()));
  }
  if (!anomalies_.empty() && anomalies_.front().begin < train_length_) {
    return Status::InvalidArgument(
        "series '" + name_ + "': anomaly at " +
        std::to_string(anomalies_.front().begin) +
        " lies inside the training prefix of length " +
        std::to_string(train_length_));
  }
  for (double v : values_) {
    if (!std::isfinite(v)) {
      return Status::InvalidArgument("series '" + name_ +
                                     "': contains non-finite value");
    }
  }
  return Status::OK();
}

Result<LabeledSeries> MultivariateSeries::Dimension(std::size_t dim) const {
  if (dim >= dimensions_.size()) {
    return Status::InvalidArgument(
        "dimension " + std::to_string(dim) + " out of range (have " +
        std::to_string(dimensions_.size()) + ")");
  }
  return LabeledSeries(name_ + "/dim" + std::to_string(dim), dimensions_[dim],
                       anomalies_, train_length_);
}

Status MultivariateSeries::Validate() const {
  const std::size_t n = length();
  for (std::size_t d = 0; d < dimensions_.size(); ++d) {
    if (dimensions_[d].size() != n) {
      return Status::InvalidArgument(
          "multivariate series '" + name_ + "': dimension " +
          std::to_string(d) + " has length " +
          std::to_string(dimensions_[d].size()) + ", expected " +
          std::to_string(n));
    }
    for (double v : dimensions_[d]) {
      if (!std::isfinite(v)) {
        return Status::InvalidArgument("multivariate series '" + name_ +
                                       "': non-finite value in dimension " +
                                       std::to_string(d));
      }
    }
  }
  for (const AnomalyRegion& r : anomalies_) {
    if (r.end > n) {
      return Status::InvalidArgument("multivariate series '" + name_ +
                                     "': anomaly region out of bounds");
    }
  }
  if (train_length_ > n) {
    return Status::InvalidArgument("multivariate series '" + name_ +
                                   "': train_length out of bounds");
  }
  return Status::OK();
}

Status BenchmarkDataset::Validate() const {
  for (const LabeledSeries& s : series) {
    TSAD_RETURN_IF_ERROR(s.Validate());
  }
  return Status::OK();
}

}  // namespace tsad
