#include "common/vector_ops.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace tsad {

namespace {

// Prefix sums with long-double accumulation: sums[i] = x[0]+...+x[i-1].
std::vector<long double> PrefixSums(const std::vector<double>& x) {
  std::vector<long double> sums(x.size() + 1, 0.0L);
  for (std::size_t i = 0; i < x.size(); ++i) sums[i + 1] = sums[i] + x[i];
  return sums;
}

std::vector<long double> PrefixSquareSums(const std::vector<double>& x) {
  std::vector<long double> sums(x.size() + 1, 0.0L);
  for (std::size_t i = 0; i < x.size(); ++i)
    sums[i + 1] = sums[i] + static_cast<long double>(x[i]) * x[i];
  return sums;
}

// MATLAB-compatible centered window around i for window length k:
// `before` elements into the past, `after` into the future, truncated
// to [0, n). Returns [lo, hi) bounds.
inline void CenteredWindow(std::size_t i, std::size_t n, std::size_t k,
                           std::size_t* lo, std::size_t* hi) {
  const std::size_t before = k / 2;
  const std::size_t after = (k - 1) / 2;
  *lo = i >= before ? i - before : 0;
  *hi = std::min(n, i + after + 1);
}

}  // namespace

std::vector<double> Diff(const std::vector<double>& x) {
  if (x.size() < 2) return {};
  std::vector<double> out(x.size() - 1);
  for (std::size_t i = 0; i + 1 < x.size(); ++i) out[i] = x[i + 1] - x[i];
  return out;
}

std::vector<double> Diff2(const std::vector<double>& x) { return Diff(Diff(x)); }

std::vector<double> Abs(std::vector<double> x) {
  for (double& v : x) v = std::fabs(v);
  return x;
}

std::vector<double> MovMean(const std::vector<double>& x, std::size_t k) {
  assert(k >= 1);
  const std::size_t n = x.size();
  std::vector<double> out(n);
  const auto sums = PrefixSums(x);
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t lo, hi;
    CenteredWindow(i, n, k, &lo, &hi);
    out[i] = static_cast<double>((sums[hi] - sums[lo]) /
                                 static_cast<long double>(hi - lo));
  }
  return out;
}

std::vector<double> MovStd(const std::vector<double>& x, std::size_t k) {
  assert(k >= 1);
  const std::size_t n = x.size();
  std::vector<double> out(n);
  const auto sums = PrefixSums(x);
  const auto sq = PrefixSquareSums(x);
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t lo, hi;
    CenteredWindow(i, n, k, &lo, &hi);
    const std::size_t m = hi - lo;
    if (m < 2) {
      out[i] = 0.0;
      continue;
    }
    const long double s = sums[hi] - sums[lo];
    const long double ss = sq[hi] - sq[lo];
    long double var = (ss - s * s / static_cast<long double>(m)) /
                      static_cast<long double>(m - 1);
    if (var < 0.0L) var = 0.0L;  // guard against catastrophic cancellation
    out[i] = static_cast<double>(std::sqrt(static_cast<double>(var)));
  }
  return out;
}

std::vector<double> TrailingMean(const std::vector<double>& x, std::size_t k) {
  assert(k >= 1);
  const std::size_t n = x.size();
  std::vector<double> out(n);
  const auto sums = PrefixSums(x);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t lo = i + 1 >= k ? i + 1 - k : 0;
    out[i] = static_cast<double>((sums[i + 1] - sums[lo]) /
                                 static_cast<long double>(i + 1 - lo));
  }
  return out;
}

std::vector<double> TrailingStd(const std::vector<double>& x, std::size_t k) {
  assert(k >= 1);
  const std::size_t n = x.size();
  std::vector<double> out(n);
  const auto sums = PrefixSums(x);
  const auto sq = PrefixSquareSums(x);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t lo = i + 1 >= k ? i + 1 - k : 0;
    const std::size_t m = i + 1 - lo;
    if (m < 2) {
      out[i] = 0.0;
      continue;
    }
    const long double s = sums[i + 1] - sums[lo];
    const long double ss = sq[i + 1] - sq[lo];
    long double var = (ss - s * s / static_cast<long double>(m)) /
                      static_cast<long double>(m - 1);
    if (var < 0.0L) var = 0.0L;
    out[i] = static_cast<double>(std::sqrt(static_cast<double>(var)));
  }
  return out;
}

std::vector<double> CumSum(const std::vector<double>& x) {
  std::vector<double> out(x.size());
  long double acc = 0.0L;
  for (std::size_t i = 0; i < x.size(); ++i) {
    acc += x[i];
    out[i] = static_cast<double>(acc);
  }
  return out;
}

void ZNormalizeInPlace(std::vector<double>& x) {
  if (x.empty()) return;
  long double sum = 0.0L, sq = 0.0L;
  for (double v : x) {
    sum += v;
    sq += static_cast<long double>(v) * v;
  }
  const long double n = static_cast<long double>(x.size());
  const double mean = static_cast<double>(sum / n);
  long double var = sq / n - (sum / n) * (sum / n);
  if (var < 0.0L) var = 0.0L;
  const double sd = std::sqrt(static_cast<double>(var));
  if (sd < 1e-12) {
    for (double& v : x) v -= mean;
  } else {
    for (double& v : x) v = (v - mean) / sd;
  }
}

std::vector<double> ZNormalize(std::vector<double> x) {
  ZNormalizeInPlace(x);
  return x;
}

std::vector<double> MinMaxScale(std::vector<double> x, double lo, double hi) {
  if (x.empty()) return x;
  const auto [mn_it, mx_it] = std::minmax_element(x.begin(), x.end());
  const double mn = *mn_it, mx = *mx_it;
  const double range = mx - mn;
  if (range < 1e-300) {
    for (double& v : x) v = lo;
    return x;
  }
  for (double& v : x) v = lo + (v - mn) / range * (hi - lo);
  return x;
}

std::size_t ArgMax(const std::vector<double>& x) {
  assert(!x.empty());
  return static_cast<std::size_t>(
      std::max_element(x.begin(), x.end()) - x.begin());
}

std::size_t ArgMin(const std::vector<double>& x) {
  assert(!x.empty());
  return static_cast<std::size_t>(
      std::min_element(x.begin(), x.end()) - x.begin());
}

std::vector<double> Add(const std::vector<double>& a,
                        const std::vector<double>& b) {
  assert(a.size() == b.size());
  std::vector<double> out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] + b[i];
  return out;
}

std::vector<double> Subtract(const std::vector<double>& a,
                             const std::vector<double>& b) {
  assert(a.size() == b.size());
  std::vector<double> out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
  return out;
}

std::vector<double> Scale(std::vector<double> x, double factor) {
  for (double& v : x) v *= factor;
  return x;
}

std::vector<double> PadLeft(const std::vector<double>& x, std::size_t pad,
                            double value) {
  std::vector<double> out;
  out.reserve(x.size() + pad);
  out.assign(pad, value);
  out.insert(out.end(), x.begin(), x.end());
  return out;
}

std::vector<std::size_t> IndicesAbove(const std::vector<double>& x,
                                      double threshold) {
  std::vector<std::size_t> idx;
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (x[i] > threshold) idx.push_back(i);
  }
  return idx;
}

std::vector<double> Ewma(const std::vector<double>& x, double alpha) {
  assert(alpha > 0.0 && alpha <= 1.0);
  std::vector<double> out(x.size());
  if (x.empty()) return out;
  out[0] = x[0];
  for (std::size_t i = 1; i < x.size(); ++i) {
    out[i] = alpha * x[i] + (1.0 - alpha) * out[i - 1];
  }
  return out;
}

}  // namespace tsad
