// Vectorized primitive operations mirroring the MATLAB built-ins the
// paper's "one-liner" detectors are made of: diff, abs, movmean,
// movstd, plus the usual supporting cast (cumsum, z-normalization,
// argmax, ...).
//
// Semantics deliberately follow MATLAB where the paper depends on them:
//  * Diff(x) has length n-1, Diff(x)[i] = x[i+1] - x[i].
//  * MovMean(x, k) / MovStd(x, k) are centered moving windows of length
//    k, truncated at the boundaries (MATLAB's default 'Endpoints'
//    behaviour), output length n.
//  * MovStd uses the unbiased (n-1) normalization like MATLAB's default.

#ifndef TSAD_COMMON_VECTOR_OPS_H_
#define TSAD_COMMON_VECTOR_OPS_H_

#include <cstddef>
#include <vector>

namespace tsad {

/// First difference: out[i] = x[i+1] - x[i]; length n-1 (empty if n<2).
std::vector<double> Diff(const std::vector<double>& x);

/// Second difference: Diff(Diff(x)); length n-2 (empty if n<3).
std::vector<double> Diff2(const std::vector<double>& x);

/// Element-wise absolute value.
std::vector<double> Abs(std::vector<double> x);

/// Centered moving mean with window length k (k >= 1), truncated
/// windows at the boundaries. MATLAB-compatible: for even k the window
/// extends one element further into the past than the future.
std::vector<double> MovMean(const std::vector<double>& x, std::size_t k);

/// Centered moving standard deviation (unbiased, N-1 normalization,
/// 0 for singleton windows), truncated at boundaries; MATLAB-compatible
/// window alignment.
std::vector<double> MovStd(const std::vector<double>& x, std::size_t k);

/// Trailing (causal) moving mean over the last k samples (fewer at the
/// start). Used by streaming-style detectors.
std::vector<double> TrailingMean(const std::vector<double>& x, std::size_t k);

/// Trailing (causal) moving standard deviation (unbiased) over the last
/// k samples.
std::vector<double> TrailingStd(const std::vector<double>& x, std::size_t k);

/// Cumulative sum; out[i] = x[0] + ... + x[i].
std::vector<double> CumSum(const std::vector<double>& x);

/// Z-normalizes x in place to zero mean, unit (population) standard
/// deviation. If the std is ~0 the series is centered only.
void ZNormalizeInPlace(std::vector<double>& x);

/// Returns a z-normalized copy of x.
std::vector<double> ZNormalize(std::vector<double> x);

/// Min-max scales x into [lo, hi]. Constant series map to lo.
std::vector<double> MinMaxScale(std::vector<double> x, double lo, double hi);

/// Index of the maximum element. Precondition: x non-empty (asserts).
std::size_t ArgMax(const std::vector<double>& x);

/// Index of the minimum element. Precondition: x non-empty (asserts).
std::size_t ArgMin(const std::vector<double>& x);

/// Element-wise a + b. Precondition: equal sizes (asserts).
std::vector<double> Add(const std::vector<double>& a,
                        const std::vector<double>& b);

/// Element-wise a - b. Precondition: equal sizes (asserts).
std::vector<double> Subtract(const std::vector<double>& a,
                             const std::vector<double>& b);

/// Element-wise scalar multiply.
std::vector<double> Scale(std::vector<double> x, double factor);

/// Pads `x` on the left with `pad` copies of `value` (used to restore
/// alignment after Diff so scores line up with the original series).
std::vector<double> PadLeft(const std::vector<double>& x, std::size_t pad,
                            double value);

/// Indices i where x[i] > threshold.
std::vector<std::size_t> IndicesAbove(const std::vector<double>& x,
                                      double threshold);

/// Exponentially weighted moving average with smoothing factor alpha in
/// (0, 1]; out[0] = x[0].
std::vector<double> Ewma(const std::vector<double>& x, double alpha);

}  // namespace tsad

#endif  // TSAD_COMMON_VECTOR_OPS_H_
