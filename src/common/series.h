// Core data types for labeled time series benchmarks.
//
// The unit of evaluation throughout this library is the LabeledSeries:
// a univariate series, an optional training prefix, and ground-truth
// anomaly regions. A BenchmarkDataset is a named collection of labeled
// series (e.g., "Yahoo A1"), and a MultivariateSeries models OMNI/SMD
// style machine telemetry (many aligned dimensions sharing one label
// track).

#ifndef TSAD_COMMON_SERIES_H_
#define TSAD_COMMON_SERIES_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace tsad {

/// A univariate time series is a plain vector of doubles; the library
/// uses this alias everywhere for readability.
using Series = std::vector<double>;

/// A contiguous ground-truth anomaly, as a half-open index interval
/// [begin, end) into the series it annotates. A point anomaly at index
/// i is {i, i + 1}.
struct AnomalyRegion {
  std::size_t begin = 0;
  std::size_t end = 0;

  std::size_t length() const { return end - begin; }
  bool contains(std::size_t i) const { return i >= begin && i < end; }

  friend bool operator==(const AnomalyRegion& a, const AnomalyRegion& b) {
    return a.begin == b.begin && a.end == b.end;
  }
};

/// Sorts regions by begin and merges overlapping or touching regions.
/// Empty regions (begin >= end) are dropped.
std::vector<AnomalyRegion> NormalizeRegions(std::vector<AnomalyRegion> regions);

/// Converts a binary 0/1 label vector into the (normalized) list of
/// contiguous anomaly regions.
std::vector<AnomalyRegion> RegionsFromBinary(const std::vector<uint8_t>& labels);

/// Converts regions into a binary label vector of length n. Regions
/// extending past n are clipped.
std::vector<uint8_t> BinaryFromRegions(const std::vector<AnomalyRegion>& regions,
                                       std::size_t n);

/// A univariate series with ground-truth anomaly labels.
///
/// `train_length` is the length of the prefix designated as anomaly-free
/// training data (0 means the benchmark provides no training split). In
/// UCR-archive style datasets, exactly one anomaly region exists and it
/// lies entirely after the training prefix.
class LabeledSeries {
 public:
  LabeledSeries() = default;
  LabeledSeries(std::string name, Series values,
                std::vector<AnomalyRegion> anomalies,
                std::size_t train_length = 0)
      : name_(std::move(name)),
        values_(std::move(values)),
        anomalies_(NormalizeRegions(std::move(anomalies))),
        train_length_(train_length) {}

  const std::string& name() const { return name_; }
  const Series& values() const { return values_; }
  Series& mutable_values() { return values_; }
  const std::vector<AnomalyRegion>& anomalies() const { return anomalies_; }
  std::size_t train_length() const { return train_length_; }
  std::size_t length() const { return values_.size(); }

  void set_name(std::string name) { name_ = std::move(name); }
  void set_train_length(std::size_t n) { train_length_ = n; }
  /// Replaces the anomaly regions (they are normalized on the way in).
  void set_anomalies(std::vector<AnomalyRegion> anomalies) {
    anomalies_ = NormalizeRegions(std::move(anomalies));
  }

  /// True if index i falls inside any ground-truth anomaly region.
  bool IsAnomalous(std::size_t i) const;

  /// Binary label vector of the same length as the series.
  std::vector<uint8_t> BinaryLabels() const {
    return BinaryFromRegions(anomalies_, values_.size());
  }

  /// Total number of points labeled anomalous.
  std::size_t NumAnomalousPoints() const;

  /// Fraction of points labeled anomalous, in [0, 1]. Returns 0 for an
  /// empty series.
  double AnomalyDensity() const;

  /// The test portion (everything after the training prefix), as a copy.
  Series TestValues() const {
    return Series(values_.begin() +
                      static_cast<std::ptrdiff_t>(
                          train_length_ < values_.size() ? train_length_
                                                         : values_.size()),
                  values_.end());
  }

  /// Structural validation: labels within bounds, train prefix within
  /// bounds, train prefix anomaly-free, values finite.
  Status Validate() const;

 private:
  std::string name_;
  Series values_;
  std::vector<AnomalyRegion> anomalies_;  // normalized: sorted, disjoint
  std::size_t train_length_ = 0;
};

/// OMNI/SMD-style multivariate telemetry: d aligned dimensions of equal
/// length sharing one ground-truth label track.
class MultivariateSeries {
 public:
  MultivariateSeries() = default;
  MultivariateSeries(std::string name, std::vector<Series> dimensions,
                     std::vector<AnomalyRegion> anomalies,
                     std::size_t train_length = 0)
      : name_(std::move(name)),
        dimensions_(std::move(dimensions)),
        anomalies_(NormalizeRegions(std::move(anomalies))),
        train_length_(train_length) {}

  const std::string& name() const { return name_; }
  const std::vector<Series>& dimensions() const { return dimensions_; }
  const std::vector<AnomalyRegion>& anomalies() const { return anomalies_; }
  std::size_t train_length() const { return train_length_; }

  std::size_t num_dimensions() const { return dimensions_.size(); }
  /// Length of each dimension (they are required to agree). 0 if empty.
  std::size_t length() const {
    return dimensions_.empty() ? 0 : dimensions_.front().size();
  }

  /// Extracts one dimension as a LabeledSeries sharing the label track.
  /// Returns InvalidArgument if dim is out of range.
  Result<LabeledSeries> Dimension(std::size_t dim) const;

  /// Structural validation: all dimensions equal length, labels in
  /// bounds, values finite.
  Status Validate() const;

 private:
  std::string name_;
  std::vector<Series> dimensions_;
  std::vector<AnomalyRegion> anomalies_;
  std::size_t train_length_ = 0;
};

/// A named collection of labeled series: one benchmark (sub-)archive.
struct BenchmarkDataset {
  std::string name;
  std::vector<LabeledSeries> series;

  std::size_t size() const { return series.size(); }

  /// Validates every member series.
  Status Validate() const;
};

}  // namespace tsad

#endif  // TSAD_COMMON_SERIES_H_
