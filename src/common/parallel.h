// The parallel execution layer: a lazily-initialized fixed thread pool
// behind a ParallelFor / ParallelMap API, built for the repository's
// embarrassingly parallel hot loops (per-series triviality search,
// row-blocked STOMP, the robustness matrix, archive evaluation).
//
// Guarantees, in order of importance:
//
//  * Determinism. Results are placed by index, never by completion
//    order, and error propagation always surfaces the LOWEST-index
//    failure. Given a per-index function that is itself deterministic,
//    output is bit-identical at every thread count — `--threads 1`,
//    `--threads 8` and the serial fallback all produce the same bytes.
//  * Containment. A worker returning a non-OK Status stops new work
//    from starting at higher indices; a worker that throws is caught
//    and converted to an Internal status. Neither deadlocks the pool
//    or takes the process down.
//  * Deadline transparency. If the submitting thread has an active
//    DeadlineScope, its absolute deadline is re-installed on every
//    worker, so cooperative CheckDeadline() polling inside the loop
//    body keeps working under parallel execution.
//
// Thread count resolution (first match wins): SetParallelThreads(n)
// with n > 0, the TSAD_THREADS environment variable, then
// hardware_concurrency. A count of 1 runs the loop inline on the
// calling thread through the same chunk-execution code path — an exact
// serial fallback, not a separate implementation. Nested ParallelFor
// calls from inside a worker also run inline (no pool re-entry, no
// deadlock).

#ifndef TSAD_COMMON_PARALLEL_H_
#define TSAD_COMMON_PARALLEL_H_

#include <cstddef>
#include <functional>
#include <optional>
#include <utility>
#include <vector>

#include "common/status.h"

namespace tsad {

/// The effective thread count for parallel loops: the explicit
/// SetParallelThreads override if set, else TSAD_THREADS from the
/// environment (read once), else std::thread::hardware_concurrency
/// (never less than 1).
std::size_t ParallelThreads();

/// Overrides the thread count (the `--threads` CLI flag lands here).
/// 0 clears the override and returns to env/hardware resolution. The
/// pool is resized lazily on the next parallel call; a resize request
/// made while loops are in flight takes effect once they drain.
void SetParallelThreads(std::size_t n);

/// Runs fn(i) for every i in [begin, end), distributing chunks of
/// `grain` consecutive indices across the pool. Blocks until all work
/// finishes. Returns OK if every invocation returned OK; otherwise the
/// Status of the lowest failing index (deterministic across thread
/// counts). Once an error at index e is recorded, indices > e may be
/// skipped; indices < e are always attempted.
Status ParallelFor(std::size_t begin, std::size_t end,
                   const std::function<Status(std::size_t)>& fn,
                   std::size_t grain = 1);

/// Maps fn over [0, n) into an index-ordered vector: out[i] = fn(i)'s
/// value. First (lowest-index) error wins, as with ParallelFor.
template <typename T, typename Fn>
Result<std::vector<T>> ParallelMap(std::size_t n, Fn&& fn,
                                   std::size_t grain = 1) {
  std::vector<std::optional<T>> slots(n);
  Status s = ParallelFor(
      0, n,
      [&](std::size_t i) -> Status {
        Result<T> r = fn(i);
        if (!r.ok()) return r.status();
        slots[i].emplace(std::move(r).value());
        return Status::OK();
      },
      grain);
  if (!s.ok()) return s;
  std::vector<T> out;
  out.reserve(n);
  for (auto& slot : slots) out.push_back(std::move(*slot));
  return out;
}

}  // namespace tsad

#endif  // TSAD_COMMON_PARALLEL_H_
