// Minimal CSV / plain-text serialization for labeled series, so the
// generated archives can be exported for inspection (plotting is the
// paper's #1 recommendation) and re-imported.
//
// Format for a LabeledSeries (one row per point):
//   # name=<name> train_length=<n>
//   value,label
//   0.123,0
//   ...
//
// A bare value-per-line format (no labels, no header) is also supported
// for interoperability with the real UCR archive's .txt files.

#ifndef TSAD_COMMON_CSV_H_
#define TSAD_COMMON_CSV_H_

#include <string>

#include "common/series.h"
#include "common/status.h"

namespace tsad {

/// Serializes a labeled series to CSV text (see format above).
std::string SeriesToCsv(const LabeledSeries& series);

/// Parses CSV text produced by SeriesToCsv.
Result<LabeledSeries> SeriesFromCsv(const std::string& text);

/// Writes a labeled series to a file.
Status WriteSeriesCsv(const LabeledSeries& series, const std::string& path);

/// Reads a labeled series from a file written by WriteSeriesCsv.
Result<LabeledSeries> ReadSeriesCsv(const std::string& path);

/// Serializes raw values, one per line (UCR .txt style).
std::string ValuesToText(const Series& values);

/// Parses whitespace/newline-separated numbers (UCR .txt style).
Result<Series> ValuesFromText(const std::string& text);

/// Writes raw values to a file, one per line.
Status WriteValuesText(const Series& values, const std::string& path);

/// Reads raw values from a file (one or more numbers per line).
Result<Series> ReadValuesText(const std::string& path);

}  // namespace tsad

#endif  // TSAD_COMMON_CSV_H_
