#include "common/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "common/vector_ops.h"

namespace tsad {

double Mean(const std::vector<double>& x) {
  if (x.empty()) return 0.0;
  long double sum = 0.0L;
  for (double v : x) sum += v;
  return static_cast<double>(sum / static_cast<long double>(x.size()));
}

double Variance(const std::vector<double>& x) {
  if (x.empty()) return 0.0;
  const double m = Mean(x);
  long double acc = 0.0L;
  for (double v : x) acc += static_cast<long double>(v - m) * (v - m);
  return static_cast<double>(acc / static_cast<long double>(x.size()));
}

double SampleVariance(const std::vector<double>& x) {
  if (x.size() < 2) return 0.0;
  const double m = Mean(x);
  long double acc = 0.0L;
  for (double v : x) acc += static_cast<long double>(v - m) * (v - m);
  return static_cast<double>(acc / static_cast<long double>(x.size() - 1));
}

double StdDev(const std::vector<double>& x) { return std::sqrt(Variance(x)); }

double SampleStdDev(const std::vector<double>& x) {
  return std::sqrt(SampleVariance(x));
}

double Min(const std::vector<double>& x) {
  if (x.empty()) return std::numeric_limits<double>::infinity();
  return *std::min_element(x.begin(), x.end());
}

double Max(const std::vector<double>& x) {
  if (x.empty()) return -std::numeric_limits<double>::infinity();
  return *std::max_element(x.begin(), x.end());
}

double Median(std::vector<double> x) {
  if (x.empty()) return 0.0;
  const std::size_t n = x.size();
  const std::size_t mid = n / 2;
  std::nth_element(x.begin(), x.begin() + static_cast<std::ptrdiff_t>(mid),
                   x.end());
  double hi = x[mid];
  if (n % 2 == 1) return hi;
  double lo =
      *std::max_element(x.begin(), x.begin() + static_cast<std::ptrdiff_t>(mid));
  return 0.5 * (lo + hi);
}

double Mad(const std::vector<double>& x) {
  if (x.empty()) return 0.0;
  const double med = Median(std::vector<double>(x));
  std::vector<double> dev(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) dev[i] = std::fabs(x[i] - med);
  return Median(std::move(dev));
}

double Quantile(std::vector<double> x, double q) {
  if (x.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  std::sort(x.begin(), x.end());
  const double pos = q * static_cast<double>(x.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, x.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return x[lo] * (1.0 - frac) + x[hi] * frac;
}

double Autocorrelation(const std::vector<double>& x, std::size_t lag) {
  const std::size_t n = x.size();
  if (lag >= n || n < 2) return 0.0;
  const double m = Mean(x);
  long double num = 0.0L, den = 0.0L;
  for (std::size_t i = 0; i < n; ++i) {
    den += static_cast<long double>(x[i] - m) * (x[i] - m);
  }
  if (den <= 0.0L) return 0.0;
  for (std::size_t i = 0; i + lag < n; ++i) {
    num += static_cast<long double>(x[i] - m) * (x[i + lag] - m);
  }
  return static_cast<double>(num / den);
}

double ComplexityEstimate(const std::vector<double>& x) {
  long double acc = 0.0L;
  for (std::size_t i = 0; i + 1 < x.size(); ++i) {
    const long double d = static_cast<long double>(x[i + 1]) - x[i];
    acc += d * d;
  }
  return std::sqrt(static_cast<double>(acc));
}

double PearsonCorrelation(const std::vector<double>& a,
                          const std::vector<double>& b) {
  assert(a.size() == b.size());
  const std::size_t n = a.size();
  if (n < 2) return 0.0;
  const double ma = Mean(a), mb = Mean(b);
  long double num = 0.0L, da = 0.0L, db = 0.0L;
  for (std::size_t i = 0; i < n; ++i) {
    num += static_cast<long double>(a[i] - ma) * (b[i] - mb);
    da += static_cast<long double>(a[i] - ma) * (a[i] - ma);
    db += static_cast<long double>(b[i] - mb) * (b[i] - mb);
  }
  if (da <= 0.0L || db <= 0.0L) return 0.0;
  return static_cast<double>(num / std::sqrt(static_cast<double>(da) *
                                             static_cast<double>(db)));
}

double EuclideanDistance(const std::vector<double>& a,
                         const std::vector<double>& b) {
  assert(a.size() == b.size());
  long double acc = 0.0L;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const long double d = static_cast<long double>(a[i]) - b[i];
    acc += d * d;
  }
  return std::sqrt(static_cast<double>(acc));
}

double ZNormalizedDistance(std::vector<double> a, std::vector<double> b) {
  ZNormalizeInPlace(a);
  ZNormalizeInPlace(b);
  return EuclideanDistance(a, b);
}

RegionProfile ProfileRegion(const std::vector<double>& x, std::size_t begin,
                            std::size_t end) {
  begin = std::min(begin, x.size());
  end = std::min(end, x.size());
  if (begin > end) std::swap(begin, end);
  std::vector<double> region(x.begin() + static_cast<std::ptrdiff_t>(begin),
                             x.begin() + static_cast<std::ptrdiff_t>(end));
  RegionProfile p;
  p.mean = Mean(region);
  p.min = Min(region);
  p.max = Max(region);
  p.variance = Variance(region);
  p.autocorr_lag1 = Autocorrelation(region, 1);
  p.complexity = ComplexityEstimate(region);
  return p;
}

double ProfileDistance(const RegionProfile& a, const RegionProfile& b,
                       double scale) {
  if (scale <= 0.0) scale = 1.0;
  const double scale2 = scale * scale;
  double worst = 0.0;
  worst = std::max(worst, std::fabs(a.mean - b.mean) / scale);
  worst = std::max(worst, std::fabs(a.min - b.min) / scale);
  worst = std::max(worst, std::fabs(a.max - b.max) / scale);
  worst = std::max(worst, std::fabs(a.variance - b.variance) / scale2);
  worst = std::max(worst, std::fabs(a.autocorr_lag1 - b.autocorr_lag1));
  // Complexity scales with amplitude, normalize by scale.
  worst = std::max(worst, std::fabs(a.complexity - b.complexity) / scale);
  return worst;
}

}  // namespace tsad
