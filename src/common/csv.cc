#include "common/csv.h"

#include <cerrno>
#include <charconv>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

namespace tsad {

namespace {

// Parses one double with std::from_chars semantics; returns false on
// failure. `sv` is trimmed of leading spaces first.
bool ParseDouble(std::string_view sv, double* out) {
  while (!sv.empty() && (sv.front() == ' ' || sv.front() == '\t')) {
    sv.remove_prefix(1);
  }
  while (!sv.empty() && (sv.back() == ' ' || sv.back() == '\t' ||
                         sv.back() == '\r')) {
    sv.remove_suffix(1);
  }
  if (sv.empty()) return false;
  const char* begin = sv.data();
  const char* end = sv.data() + sv.size();
  auto [ptr, ec] = std::from_chars(begin, end, *out);
  return ec == std::errc() && ptr == end;
}

Result<std::string> ReadFileToString(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open '" + path + "' for reading");
  std::ostringstream buf;
  buf << in.rdbuf();
  if (in.bad()) return Status::IOError("error while reading '" + path + "'");
  return buf.str();
}

Status WriteStringToFile(const std::string& text, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IOError("cannot open '" + path + "' for writing");
  out << text;
  out.flush();
  if (!out) return Status::IOError("error while writing '" + path + "'");
  return Status::OK();
}

}  // namespace

std::string SeriesToCsv(const LabeledSeries& series) {
  std::ostringstream out;
  out << "# name=" << series.name()
      << " train_length=" << series.train_length() << "\n";
  out << "value,label\n";
  const std::vector<uint8_t> labels = series.BinaryLabels();
  out.precision(17);
  for (std::size_t i = 0; i < series.length(); ++i) {
    out << series.values()[i] << ',' << static_cast<int>(labels[i]) << "\n";
  }
  return out.str();
}

Result<LabeledSeries> SeriesFromCsv(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  std::string name;
  std::size_t train_length = 0;
  Series values;
  std::vector<uint8_t> labels;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    if (line[0] == '#') {
      // Header comment: "# name=<name> train_length=<n>"
      const std::size_t name_pos = line.find("name=");
      const std::size_t train_pos = line.find("train_length=");
      if (name_pos != std::string::npos) {
        std::size_t end = line.find(' ', name_pos);
        name = line.substr(name_pos + 5,
                           end == std::string::npos ? std::string::npos
                                                    : end - (name_pos + 5));
      }
      if (train_pos != std::string::npos) {
        train_length = static_cast<std::size_t>(
            std::strtoull(line.c_str() + train_pos + 13, nullptr, 10));
      }
      continue;
    }
    if (line == "value,label") continue;  // column header
    const std::size_t comma = line.find(',');
    if (comma == std::string::npos) {
      return Status::InvalidArgument("line " + std::to_string(lineno) +
                                     ": expected 'value,label'");
    }
    double v = 0.0;
    if (!ParseDouble(std::string_view(line).substr(0, comma), &v)) {
      return Status::InvalidArgument("line " + std::to_string(lineno) +
                                     ": bad value field");
    }
    double lab = 0.0;
    if (!ParseDouble(std::string_view(line).substr(comma + 1), &lab)) {
      return Status::InvalidArgument("line " + std::to_string(lineno) +
                                     ": bad label field");
    }
    values.push_back(v);
    labels.push_back(lab != 0.0 ? 1 : 0);
  }
  LabeledSeries series(std::move(name), std::move(values),
                       RegionsFromBinary(labels), train_length);
  return series;
}

Status WriteSeriesCsv(const LabeledSeries& series, const std::string& path) {
  return WriteStringToFile(SeriesToCsv(series), path);
}

Result<LabeledSeries> ReadSeriesCsv(const std::string& path) {
  TSAD_ASSIGN_OR_RETURN(const std::string text, ReadFileToString(path));
  return SeriesFromCsv(text);
}

std::string ValuesToText(const Series& values) {
  std::ostringstream out;
  out.precision(17);
  for (double v : values) out << v << "\n";
  return out.str();
}

Result<Series> ValuesFromText(const std::string& text) {
  Series values;
  const char* p = text.c_str();
  const char* end = p + text.size();
  while (p < end) {
    // Skip whitespace/newlines/commas.
    while (p < end && (*p == ' ' || *p == '\t' || *p == '\n' || *p == '\r' ||
                       *p == ',')) {
      ++p;
    }
    if (p >= end) break;
    double v = 0.0;
    auto [ptr, ec] = std::from_chars(p, end, v);
    if (ec != std::errc()) {
      return Status::InvalidArgument(
          "bad number near offset " +
          std::to_string(static_cast<std::size_t>(p - text.c_str())));
    }
    values.push_back(v);
    p = ptr;
  }
  return values;
}

Status WriteValuesText(const Series& values, const std::string& path) {
  return WriteStringToFile(ValuesToText(values), path);
}

Result<Series> ReadValuesText(const std::string& path) {
  TSAD_ASSIGN_OR_RETURN(const std::string text, ReadFileToString(path));
  return ValuesFromText(text);
}

}  // namespace tsad
