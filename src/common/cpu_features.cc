#include "common/cpu_features.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <vector>

#include "common/suggest.h"

namespace tsad {

namespace {

#if defined(__x86_64__) || defined(__i386__)
SimdTier ProbeSimdTier() {
  // __builtin_cpu_init is idempotent and makes the probe safe from any
  // call context (including static initializers in other TUs).
  __builtin_cpu_init();
  if (__builtin_cpu_supports("avx512f")) return SimdTier::kAvx512;
  if (__builtin_cpu_supports("avx2")) return SimdTier::kAvx2;
  if (__builtin_cpu_supports("sse2")) return SimdTier::kSse2;
  return SimdTier::kScalar;
}
#else
SimdTier ProbeSimdTier() { return SimdTier::kScalar; }
#endif

// Override slot: -1 = none installed. Relaxed atomics suffice — the
// override is installed during startup (CLI flag / env) before kernels
// run, and a racing reader only ever sees a stale-but-valid tier.
std::atomic<int> g_tier_override{-1};

// Guards the one-shot lazy TSAD_MP_ISA application.
std::once_flag g_env_once;
std::atomic<bool> g_env_consumed{false};

Status ApplyEnvLocked() {
  // Marking consumed FIRST makes SetSimdTierOverride/Clear inside this
  // function (and any later explicit call) authoritative.
  g_env_consumed.store(true, std::memory_order_relaxed);
  const char* env = std::getenv("TSAD_MP_ISA");
  if (env == nullptr || *env == '\0') return Status::OK();
  const Result<SimdTierRequest> request = ParseSimdTier(env);
  if (!request.ok()) {
    return Status::InvalidArgument("TSAD_MP_ISA: " +
                                   request.status().message());
  }
  if (!request->has_override) return Status::OK();  // "auto"
  const Status status = SetSimdTierOverride(request->tier);
  if (!status.ok()) {
    return Status::InvalidArgument("TSAD_MP_ISA: " + status.message());
  }
  return Status::OK();
}

}  // namespace

SimdTier DetectSimdTier() {
  static const SimdTier tier = ProbeSimdTier();
  return tier;
}

bool SimdTierSupported(SimdTier tier) {
  return static_cast<int>(tier) <= static_cast<int>(DetectSimdTier());
}

const char* SimdTierName(SimdTier tier) {
  switch (tier) {
    case SimdTier::kScalar:
      return "scalar";
    case SimdTier::kSse2:
      return "sse2";
    case SimdTier::kAvx2:
      return "avx2";
    case SimdTier::kAvx512:
      return "avx512";
  }
  return "scalar";
}

Result<SimdTierRequest> ParseSimdTier(const std::string& name) {
  static const std::vector<std::string> kNames = {"auto", "scalar", "sse2",
                                                  "avx2", "avx512"};
  if (name == "auto") return SimdTierRequest{false, SimdTier::kScalar};
  if (name == "scalar") return SimdTierRequest{true, SimdTier::kScalar};
  if (name == "sse2") return SimdTierRequest{true, SimdTier::kSse2};
  if (name == "avx2") return SimdTierRequest{true, SimdTier::kAvx2};
  if (name == "avx512") return SimdTierRequest{true, SimdTier::kAvx512};
  std::string message = "unknown matrix-profile ISA tier '" + name +
                        "'; known: auto scalar sse2 avx2 avx512";
  const std::string suggestion = SuggestClosest(name, kNames);
  if (!suggestion.empty()) {
    message += "; did you mean '" + suggestion + "'?";
  }
  return Status::InvalidArgument(message);
}

Result<SimdTier> ResolveSimdTierRequest(SimdTier requested,
                                        SimdTier detected) {
  if (static_cast<int>(requested) <= static_cast<int>(detected)) {
    return requested;
  }
  return Status::InvalidArgument(
      std::string("ISA tier '") + SimdTierName(requested) +
      "' is not supported on this host (detected '" +
      SimdTierName(detected) +
      "'); refusing to downgrade silently — pick a supported tier or "
      "'auto'");
}

Status SetSimdTierOverride(SimdTier tier) {
  const Result<SimdTier> resolved =
      ResolveSimdTierRequest(tier, DetectSimdTier());
  TSAD_RETURN_IF_ERROR(resolved.status());
  g_env_consumed.store(true, std::memory_order_relaxed);
  g_tier_override.store(static_cast<int>(*resolved),
                        std::memory_order_relaxed);
  return Status::OK();
}

void ClearSimdTierOverride() {
  g_env_consumed.store(true, std::memory_order_relaxed);
  g_tier_override.store(-1, std::memory_order_relaxed);
}

SimdTier ActiveSimdTier() {
  if (!g_env_consumed.load(std::memory_order_relaxed)) {
    std::call_once(g_env_once, [] {
      if (g_env_consumed.load(std::memory_order_relaxed)) return;
      const Status status = ApplyEnvLocked();
      if (!status.ok()) {
        // The lazy path has no caller to hand a Status to; a wrong
        // TSAD_MP_ISA silently ignored would run the wrong kernel for
        // the whole process, so fail loudly (the CLI and benches call
        // ApplySimdTierEnv first and turn this into a clean error).
        std::fprintf(stderr, "%s\n", status.ToString().c_str());
        std::abort();
      }
    });
  }
  const int override_tier = g_tier_override.load(std::memory_order_relaxed);
  if (override_tier >= 0) return static_cast<SimdTier>(override_tier);
  return DetectSimdTier();
}

Status ApplySimdTierEnv() {
  if (g_env_consumed.load(std::memory_order_relaxed)) return Status::OK();
  Status status = Status::OK();
  std::call_once(g_env_once, [&status] {
    if (g_env_consumed.load(std::memory_order_relaxed)) return;
    status = ApplyEnvLocked();
  });
  return status;
}

}  // namespace tsad
