// Status and Result<T>: exception-free error propagation for the tsad
// library, in the style of RocksDB's Status / Abseil's StatusOr.
//
// Conventions used across the library:
//  * Functions that can fail on bad input or I/O return Status or
//    Result<T>.
//  * Programming errors (violated preconditions that indicate a bug in
//    the caller, not bad data) may assert in debug builds.
//  * Status is cheap to copy for OK (no allocation); error statuses
//    carry a code and a message.

#ifndef TSAD_COMMON_STATUS_H_
#define TSAD_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace tsad {

/// Canonical error space, loosely following absl::StatusCode.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kOutOfRange = 3,
  kFailedPrecondition = 4,
  kInternal = 5,
  kUnimplemented = 6,
  kIOError = 7,
  kDeadlineExceeded = 8,
  kResourceExhausted = 9,
};

/// Returns a human-readable name for a status code ("OK",
/// "InvalidArgument", ...).
std::string_view StatusCodeToString(StatusCode code);

/// A success-or-error value. OK statuses are allocation-free.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message. An empty
  /// message is allowed but discouraged for non-OK codes.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  // Factory helpers, mirroring absl::InvalidArgumentError and friends.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// Result<T>: either a value or an error Status. Modeled on
/// absl::StatusOr<T>, reduced to what this library needs.
///
/// Usage:
///   Result<TimeSeries> r = LoadSeries(path);
///   if (!r.ok()) return r.status();
///   Use(r.value());
template <typename T>
class Result {
 public:
  /// Constructs from a value (implicit, so `return value;` works).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs from an error status. Must not be OK: a Result carrying
  /// an OK status but no value is a bug.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status w/o value");
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) noexcept = default;
  Result& operator=(Result&&) noexcept = default;

  bool ok() const { return value_.has_value(); }

  /// The error status; OK() if a value is held.
  const Status& status() const { return status_; }

  /// The held value. Precondition: ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` if this holds an error.
  T value_or(T fallback) const& { return ok() ? *value_ : fallback; }

 private:
  std::optional<T> value_;
  Status status_;  // OK iff value_ holds a value.
};

/// Early-return helper: propagates a non-OK status out of the calling
/// function. Only usable in functions returning Status.
#define TSAD_RETURN_IF_ERROR(expr)                   \
  do {                                               \
    ::tsad::Status tsad_return_if_error_s = (expr);  \
    if (!tsad_return_if_error_s.ok())                \
      return tsad_return_if_error_s;                 \
  } while (0)

#define TSAD_STATUS_CONCAT_INNER_(a, b) a##b
#define TSAD_STATUS_CONCAT_(a, b) TSAD_STATUS_CONCAT_INNER_(a, b)

/// Unwraps a Result<T> into `lhs` (which may be a declaration, e.g.
/// `TSAD_ASSIGN_OR_RETURN(auto mp, ComputeMatrixProfile(x, m))`),
/// early-returning the error status on failure. Usable in functions
/// returning Status or Result<U>. Replaces the repeated
/// `if (!r.ok()) return r.status();` pattern.
#define TSAD_ASSIGN_OR_RETURN(lhs, expr)                                 \
  TSAD_ASSIGN_OR_RETURN_IMPL_(                                           \
      TSAD_STATUS_CONCAT_(tsad_assign_or_return_, __LINE__), lhs, expr)

#define TSAD_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                \
  if (!tmp.ok()) return tmp.status();               \
  lhs = std::move(tmp).value()

}  // namespace tsad

#endif  // TSAD_COMMON_STATUS_H_
