// Scalar summary statistics used by the mislabel auditor (Fig 6 compares
// mean/min/max/variance/autocorrelation/complexity of candidate regions)
// and by dataset generators.

#ifndef TSAD_COMMON_STATS_H_
#define TSAD_COMMON_STATS_H_

#include <cstddef>
#include <vector>

namespace tsad {

/// Arithmetic mean; 0 for an empty input.
double Mean(const std::vector<double>& x);

/// Population variance (N normalization); 0 if size < 1.
double Variance(const std::vector<double>& x);

/// Sample variance (N-1 normalization); 0 if size < 2.
double SampleVariance(const std::vector<double>& x);

/// Population standard deviation.
double StdDev(const std::vector<double>& x);

/// Sample standard deviation.
double SampleStdDev(const std::vector<double>& x);

/// Minimum; +inf for empty input.
double Min(const std::vector<double>& x);

/// Maximum; -inf for empty input.
double Max(const std::vector<double>& x);

/// Median (interpolated for even sizes); 0 for empty input.
double Median(std::vector<double> x);

/// Median absolute deviation (raw, not scaled to sigma).
double Mad(const std::vector<double>& x);

/// Linear-interpolated quantile, q in [0, 1]; 0 for empty input.
double Quantile(std::vector<double> x, double q);

/// Lag-l sample autocorrelation in [-1, 1]; 0 if undefined (constant
/// series or l >= n).
double Autocorrelation(const std::vector<double>& x, std::size_t lag);

/// "Complexity estimate" from the CID distance (Batista et al.):
/// sqrt(sum of squared first differences). Larger = more wiggly.
double ComplexityEstimate(const std::vector<double>& x);

/// Pearson correlation of two equal-length vectors; 0 if undefined.
double PearsonCorrelation(const std::vector<double>& a,
                          const std::vector<double>& b);

/// Euclidean distance between equal-length vectors (asserts on size
/// mismatch).
double EuclideanDistance(const std::vector<double>& a,
                         const std::vector<double>& b);

/// Euclidean distance between z-normalized copies of a and b.
double ZNormalizedDistance(std::vector<double> a, std::vector<double> b);

/// A small bundle of descriptive statistics for a region of a series —
/// exactly the checklist Fig 6 of the paper runs over the "rounded
/// bottom" regions ("mean, min, max, variance, autocorrelation,
/// complexity").
struct RegionProfile {
  double mean = 0.0;
  double min = 0.0;
  double max = 0.0;
  double variance = 0.0;
  double autocorr_lag1 = 0.0;
  double complexity = 0.0;
};

/// Profiles x[begin, end). Out-of-range indices are clipped.
RegionProfile ProfileRegion(const std::vector<double>& x, std::size_t begin,
                            std::size_t end);

/// A normalized dissimilarity between two profiles (max relative
/// difference across the fields, using scale `scale` to normalize the
/// location-dependent fields). Used to decide whether two regions are
/// statistically indistinguishable.
double ProfileDistance(const RegionProfile& a, const RegionProfile& b,
                       double scale);

}  // namespace tsad

#endif  // TSAD_COMMON_STATS_H_
