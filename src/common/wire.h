// Exact binary serialization for detector/engine snapshots.
//
// The serving layer's Snapshot()/Restore() contract is bit-exactness: a
// restored detector must continue the stream with byte-identical scores.
// Text formats round-trip doubles only with care and long doubles not at
// all, so snapshots are a length-checked little-endian byte stream:
//
//  * u64      — 8 bytes, little-endian (explicit shifts, not memcpy, so
//               the blob is identical on any host).
//  * double   — IEEE-754 bit pattern as u64.
//  * long double — stored as a double-double pair (hi = round(v),
//               lo = v - hi). On x86-64's 80-bit extended format the
//               residual fits a double exactly, so the round trip is
//               lossless without serializing padding bytes.
//  * string   — u64 length + raw bytes.
//
// ByteReader returns OutOfRange on truncation instead of reading past
// the end, so a corrupted snapshot degrades to a clean Status.

#ifndef TSAD_COMMON_WIRE_H_
#define TSAD_COMMON_WIRE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace tsad {

/// Appends typed values to a byte buffer.
class ByteWriter {
 public:
  void PutU64(std::uint64_t v);
  void PutDouble(double v);
  void PutLongDouble(long double v);
  void PutString(std::string_view s);
  void PutDoubles(const std::vector<double>& v);          // length + values
  void PutLongDoubles(const std::vector<long double>& v); // length + values

  const std::string& str() const { return buf_; }
  std::string Take() { return std::move(buf_); }

 private:
  std::string buf_;
};

/// Reads typed values back; every getter bounds-checks and returns
/// OutOfRange once the buffer is exhausted.
class ByteReader {
 public:
  explicit ByteReader(std::string_view buf) : buf_(buf) {}

  Status GetU64(std::uint64_t* v);
  Status GetDouble(double* v);
  Status GetLongDouble(long double* v);
  Status GetString(std::string* s);
  Status GetDoubles(std::vector<double>* v);
  Status GetLongDoubles(std::vector<long double>* v);

  /// Bytes not yet consumed.
  std::size_t remaining() const { return buf_.size() - pos_; }

  /// OK only when the whole buffer was consumed — catches snapshots
  /// applied to the wrong detector type.
  Status ExpectDone() const;

 private:
  std::string_view buf_;
  std::size_t pos_ = 0;
};

}  // namespace tsad

#endif  // TSAD_COMMON_WIRE_H_
