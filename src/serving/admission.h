// Admission control for the sharded serving engine: the first rung of
// the degradation ladder (admit -> shed -> evict -> quarantine ->
// recover, see DESIGN.md §8).
//
// The queue-capacity backpressure in ShardedEngine is binary — a full
// queue sheds (or blocks) every producer equally. Under sustained
// overload that is the wrong shape: a monitoring stream that pages a
// human should keep flowing while a bulk backfill gets pushed back, and
// one noisy tenant must not starve the other nine. An AdmissionPolicy
// makes that call per Push, BEFORE the point is enqueued, from a
// snapshot of where the point would land (queue depth, the stream's
// priority class, the tenant's in-flight backlog).
//
// Denial is backpressure, not failure: a denied Push returns
// kResourceExhausted, the stream stays healthy, and the point is
// counted in ServingStats::points_denied (distinct from points_shed,
// the queue-capacity sheds).

#ifndef TSAD_SERVING_ADMISSION_H_
#define TSAD_SERVING_ADMISSION_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "common/status.h"

namespace tsad {

/// Priority classes, most to least important. The class gates two
/// independent survival decisions: how much queue headroom admission
/// leaves the stream under load, and whether the memory-budget enforcer
/// may cold-evict it (kCritical streams are never evicted).
enum class StreamPriority : int {
  kCritical = 0,  // admitted while any capacity remains; never evicted
  kHigh = 1,
  kNormal = 2,
  kBatch = 3,  // first denied under load, first cold-evicted
};

inline constexpr int kNumStreamPriorities = 4;

std::string_view StreamPriorityName(StreamPriority priority);

/// Parses a priority name ("critical", "high", "normal", "batch"),
/// rejecting unknown names with a "did you mean" hint (common/suggest).
Result<StreamPriority> ParseStreamPriority(std::string_view name);

/// The facts available to one admission decision. Depth/backlog values
/// are racy snapshots — admission shapes load, it does not serialize
/// it — but never stale by more than the in-flight Pushes.
struct AdmissionRequest {
  std::string_view stream_id;
  std::string_view tenant;  // "" = the default tenant
  StreamPriority priority = StreamPriority::kNormal;
  std::size_t queue_depth = 0;     // target shard's current occupancy
  std::size_t queue_capacity = 0;  // target shard's configured capacity
  std::uint64_t tenant_in_flight = 0;  // tenant's accepted-not-yet-drained
};

enum class AdmissionDecision {
  kAdmit,
  kDeny,  // reject with kResourceExhausted; the stream stays healthy
};

/// Pluggable per-Push admission decision. Called concurrently from
/// every producer thread, outside the engine's locks: implementations
/// must be thread-safe and cheap (one Push = one call).
class AdmissionPolicy {
 public:
  virtual ~AdmissionPolicy() = default;
  virtual std::string_view name() const = 0;
  virtual AdmissionDecision Admit(const AdmissionRequest& request) const = 0;
};

/// The default when ServingConfig::admission is null: every point is
/// admitted (queue-capacity backpressure still applies after it).
class AdmitAllPolicy : public AdmissionPolicy {
 public:
  std::string_view name() const override { return "admit-all"; }
  AdmissionDecision Admit(const AdmissionRequest&) const override {
    return AdmissionDecision::kAdmit;
  }
};

/// Configuration for PriorityQuotaPolicy.
struct PriorityQuotaConfig {
  /// Per-class queue-fill ceiling, as a fraction of shard capacity:
  /// class p is admitted only while depth < fill_limit[p] * capacity.
  /// Lower classes keep headroom free for higher ones, so under overload
  /// the queue's tail is reserved for kCritical — the ladder's "shed
  /// the bulk work first" rung. Defaults: critical rides to the brim,
  /// batch is denied once the queue is half full.
  double fill_limit[kNumStreamPriorities] = {1.0, 0.9, 0.75, 0.5};

  /// Per-tenant cap on accepted-but-not-yet-drained points; a tenant at
  /// its quota is denied until Pump drains its backlog. 0 = unlimited.
  std::uint64_t default_tenant_quota = 0;

  /// Per-tenant overrides of default_tenant_quota (0 = unlimited).
  std::map<std::string, std::uint64_t> tenant_quota;
};

/// Priority fill ceilings + per-tenant in-flight quotas. Stateless
/// (decisions are pure functions of the request), hence trivially
/// thread-safe.
class PriorityQuotaPolicy : public AdmissionPolicy {
 public:
  explicit PriorityQuotaPolicy(PriorityQuotaConfig config = {});

  std::string_view name() const override { return "priority-quota"; }
  AdmissionDecision Admit(const AdmissionRequest& request) const override;

  const PriorityQuotaConfig& config() const { return config_; }

 private:
  PriorityQuotaConfig config_;
};

}  // namespace tsad

#endif  // TSAD_SERVING_ADMISSION_H_
