#include "serving/online_adapters.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/stats.h"
#include "detectors/control_chart.h"
#include "robustness/sanitize.h"
#include "detectors/cusum.h"
#include "detectors/moving_zscore.h"
#include "detectors/merlin.h"
#include "detectors/registry.h"
#include "detectors/streaming_discord.h"

namespace tsad {

namespace {

// Every snapshot leads with the adapter name so a blob restored into
// the wrong detector fails loudly instead of deserializing garbage.
Status CheckBlobName(ByteReader* reader, std::string_view expected) {
  std::string tag;
  TSAD_RETURN_IF_ERROR(reader->GetString(&tag));
  if (tag != expected) {
    return Status::InvalidArgument("snapshot is for detector '" + tag +
                                   "', not '" + std::string(expected) + "'");
  }
  return Status::OK();
}

}  // namespace

// ---------------------------------------------------------------------------
// OnlineMovingZScore

OnlineMovingZScore::OnlineMovingZScore(std::string name, std::size_t window,
                                       double min_std)
    : window_(window), min_std_(min_std), name_(std::move(name)),
      ring_(window, 0.0) {}

Status OnlineMovingZScore::Observe(double value,
                                   std::vector<ScoredPoint>* out) {
  const std::size_t t = observed_;
  if (t < window_) {
    // Inside the first window the batch path scores 0 and accumulates
    // with plain `sum += x` — no slide yet.
    out->push_back({t, 0.0});
    sum_ += value;
    sq_ += static_cast<long double>(value) * value;
    ring_[t] = value;
  } else {
    const long double w = static_cast<long double>(window_);
    const long double mean = sum_ / w;
    long double var = sq_ / w - mean * mean;
    if (var < 0.0L) var = 0.0L;
    const double sd =
        std::max(min_std_, std::sqrt(static_cast<double>(var)));
    out->push_back({t, std::fabs(value - static_cast<double>(mean)) / sd});
    // Slide exactly as the batch loop does: the delta `x_new - x_old`
    // is formed in double before widening to the long double sum.
    const double old = ring_[t % window_];
    sum_ += value - old;
    sq_ += static_cast<long double>(value) * value -
           static_cast<long double>(old) * old;
    ring_[t % window_] = value;
  }
  ++observed_;
  return Status::OK();
}

Status OnlineMovingZScore::Flush(std::vector<ScoredPoint>* /*out*/) {
  return Status::OK();  // every point was scored on arrival
}

Result<std::string> OnlineMovingZScore::Snapshot() const {
  ByteWriter writer;
  writer.PutString(name_);
  writer.PutU64(observed_);
  writer.PutLongDouble(sum_);
  writer.PutLongDouble(sq_);
  writer.PutDoubles(ring_);
  return writer.Take();
}

Status OnlineMovingZScore::Restore(std::string_view blob) {
  ByteReader reader(blob);
  TSAD_RETURN_IF_ERROR(CheckBlobName(&reader, name_));
  std::uint64_t observed;
  TSAD_RETURN_IF_ERROR(reader.GetU64(&observed));
  TSAD_RETURN_IF_ERROR(reader.GetLongDouble(&sum_));
  TSAD_RETURN_IF_ERROR(reader.GetLongDouble(&sq_));
  TSAD_RETURN_IF_ERROR(reader.GetDoubles(&ring_));
  TSAD_RETURN_IF_ERROR(reader.ExpectDone());
  if (ring_.size() != window_) {
    return Status::InvalidArgument("snapshot window mismatch for " + name_);
  }
  observed_ = observed;
  return Status::OK();
}

// ---------------------------------------------------------------------------
// ReferenceStatsOnline

ReferenceStatsOnline::ReferenceStatsOnline(std::string name,
                                           std::size_t train_length)
    : name_(std::move(name)), train_length_(train_length) {}

Status ReferenceStatsOnline::Observe(double value,
                                     std::vector<ScoredPoint>* out) {
  if (trained_) {
    out->push_back({observed_, Step(value)});
    ++observed_;
    return Status::OK();
  }
  buffer_.push_back(value);
  ++observed_;
  if (buffer_.size() == train_length_) Drain(/*causal=*/true, out);
  return Status::OK();
}

Status ReferenceStatsOnline::Flush(std::vector<ScoredPoint>* out) {
  // Stream ended before the training prefix completed: the batch path
  // (train_length > n) falls back to whole-series robust statistics,
  // and "whole series" is exactly our buffer now.
  if (!trained_ && !buffer_.empty()) Drain(/*causal=*/false, out);
  return Status::OK();
}

void ReferenceStatsOnline::Drain(bool causal, std::vector<ScoredPoint>* out) {
  if (causal) {
    mu_ = Mean(buffer_);
    sigma_ = StdDev(buffer_);
  } else {
    mu_ = Median(Series(buffer_));
    sigma_ = 1.4826 * Mad(buffer_);
  }
  if (sigma_ < 1e-9) sigma_ = 1e-9;
  trained_ = true;
  const std::size_t base = observed_ - buffer_.size();
  for (std::size_t i = 0; i < buffer_.size(); ++i) {
    out->push_back({base + i, Step(buffer_[i])});
  }
  buffer_.clear();
  buffer_.shrink_to_fit();
}

Result<std::string> ReferenceStatsOnline::Snapshot() const {
  ByteWriter writer;
  writer.PutString(name_);
  writer.PutU64(observed_);
  writer.PutU64(train_length_);
  writer.PutU64(trained_ ? 1 : 0);
  writer.PutDouble(mu_);
  writer.PutDouble(sigma_);
  writer.PutDoubles(buffer_);
  PutState(&writer);
  return writer.Take();
}

Status ReferenceStatsOnline::Restore(std::string_view blob) {
  ByteReader reader(blob);
  TSAD_RETURN_IF_ERROR(CheckBlobName(&reader, name_));
  std::uint64_t observed, train_length, trained;
  TSAD_RETURN_IF_ERROR(reader.GetU64(&observed));
  TSAD_RETURN_IF_ERROR(reader.GetU64(&train_length));
  if (train_length != train_length_) {
    return Status::InvalidArgument(
        "snapshot train_length " + std::to_string(train_length) +
        " does not match detector train_length " +
        std::to_string(train_length_));
  }
  TSAD_RETURN_IF_ERROR(reader.GetU64(&trained));
  TSAD_RETURN_IF_ERROR(reader.GetDouble(&mu_));
  TSAD_RETURN_IF_ERROR(reader.GetDouble(&sigma_));
  TSAD_RETURN_IF_ERROR(reader.GetDoubles(&buffer_));
  TSAD_RETURN_IF_ERROR(GetState(&reader));
  TSAD_RETURN_IF_ERROR(reader.ExpectDone());
  observed_ = observed;
  trained_ = trained != 0;
  return Status::OK();
}

// ---------------------------------------------------------------------------
// OnlineCusum

OnlineCusum::OnlineCusum(std::string name, double drift,
                         double reset_threshold, std::size_t train_length)
    : ReferenceStatsOnline(std::move(name), train_length),
      drift_(drift),
      reset_threshold_(reset_threshold) {}

double OnlineCusum::Step(double value) {
  const double z = (value - mu_) / sigma_;
  s_pos_ = std::max(0.0, s_pos_ + z - drift_);
  s_neg_ = std::max(0.0, s_neg_ - z - drift_);
  const double score = std::max(s_pos_, s_neg_);
  if (reset_threshold_ > 0.0 && score > reset_threshold_) {
    s_pos_ = 0.0;
    s_neg_ = 0.0;
  }
  return score;
}

void OnlineCusum::PutState(ByteWriter* writer) const {
  writer->PutDouble(s_pos_);
  writer->PutDouble(s_neg_);
}

Status OnlineCusum::GetState(ByteReader* reader) {
  TSAD_RETURN_IF_ERROR(reader->GetDouble(&s_pos_));
  return reader->GetDouble(&s_neg_);
}

// ---------------------------------------------------------------------------
// OnlineEwmaChart

OnlineEwmaChart::OnlineEwmaChart(std::string name, double lambda,
                                 std::size_t train_length)
    : ReferenceStatsOnline(std::move(name), train_length), lambda_(lambda) {}

double OnlineEwmaChart::Step(double value) {
  if (!started_) {
    ewma_ = mu_;  // the batch loop initializes ewma = mu
    started_ = true;
  }
  ewma_ = lambda_ * value + (1.0 - lambda_) * ewma_;
  decay_ *= (1.0 - lambda_) * (1.0 - lambda_);
  const double var_factor = lambda_ / (2.0 - lambda_);
  const double se = sigma_ * std::sqrt(var_factor * (1.0 - decay_));
  return std::fabs(ewma_ - mu_) / std::max(1e-12, se);
}

void OnlineEwmaChart::PutState(ByteWriter* writer) const {
  writer->PutDouble(ewma_);
  writer->PutDouble(decay_);
  writer->PutU64(started_ ? 1 : 0);
}

Status OnlineEwmaChart::GetState(ByteReader* reader) {
  TSAD_RETURN_IF_ERROR(reader->GetDouble(&ewma_));
  TSAD_RETURN_IF_ERROR(reader->GetDouble(&decay_));
  std::uint64_t started;
  TSAD_RETURN_IF_ERROR(reader->GetU64(&started));
  started_ = started != 0;
  return Status::OK();
}

// ---------------------------------------------------------------------------
// OnlinePageHinkley

OnlinePageHinkley::OnlinePageHinkley(std::string name, double delta,
                                     std::size_t train_length)
    : ReferenceStatsOnline(std::move(name), train_length), delta_(delta) {}

double OnlinePageHinkley::Step(double value) {
  const double z = (value - mu_) / sigma_;
  cum_ += z - delta_;
  cum_min_ = std::min(cum_min_, cum_);
  cum_max_ = std::max(cum_max_, cum_);
  return std::max(cum_ - cum_min_, cum_max_ - cum_);
}

void OnlinePageHinkley::PutState(ByteWriter* writer) const {
  writer->PutDouble(cum_);
  writer->PutDouble(cum_min_);
  writer->PutDouble(cum_max_);
}

Status OnlinePageHinkley::GetState(ByteReader* reader) {
  TSAD_RETURN_IF_ERROR(reader->GetDouble(&cum_));
  TSAD_RETURN_IF_ERROR(reader->GetDouble(&cum_min_));
  return reader->GetDouble(&cum_max_);
}

// ---------------------------------------------------------------------------
// OnlineOneLiner

OnlineOneLiner::OnlineOneLiner(std::string name, const OneLinerParams& params)
    : name_(std::move(name)),
      params_(params),
      after_((std::max<std::size_t>(1, params.k) - 1) / 2),
      need_window_(params.use_movmean || params.c != 0.0),
      run_min_(std::numeric_limits<double>::infinity()) {
  sums_.push_back(0.0L);
  sq_.push_back(0.0L);
}

double OnlineOneLiner::MarginAt(std::size_t j, std::size_t nd) const {
  // Accumulate the right-hand side in the batch order: b, then the
  // moving mean, then c * moving std — each a double addition.
  double rhs = params_.b;
  if (need_window_) {
    const std::size_t keff = std::max<std::size_t>(1, params_.k);
    const std::size_t before = keff / 2;
    const std::size_t lo = j >= before ? j - before : 0;
    const std::size_t hi = std::min(nd, j + after_ + 1);
    if (params_.use_movmean) {
      rhs += static_cast<double>((sums_[hi] - sums_[lo]) /
                                 static_cast<long double>(hi - lo));
    }
    if (params_.c != 0.0) {
      const std::size_t mwin = hi - lo;
      double ms = 0.0;
      if (mwin >= 2) {
        const long double s = sums_[hi] - sums_[lo];
        const long double ss = sq_[hi] - sq_[lo];
        long double var = (ss - s * s / static_cast<long double>(mwin)) /
                          static_cast<long double>(mwin - 1);
        if (var < 0.0L) var = 0.0L;
        ms = static_cast<double>(std::sqrt(static_cast<double>(var)));
      }
      rhs += params_.c * ms;
    }
  }
  return d_[j] - rhs;
}

void OnlineOneLiner::EmitReady(std::vector<ScoredPoint>* out) {
  // The centered window for diff index j extends `after_` points into
  // the future, so the margin is final once d_ reaches j + after_ + 1
  // entries (immediately, for the pure-threshold forms).
  while (emitted_ < d_.size() &&
         (!need_window_ || d_.size() >= emitted_ + after_ + 1)) {
    const double margin = MarginAt(emitted_, d_.size());
    run_min_ = std::min(run_min_, margin);
    out->push_back({emitted_ + 1, margin});
    ++emitted_;
  }
}

Status OnlineOneLiner::Observe(double value, std::vector<ScoredPoint>* out) {
  if (observed_ >= 1) {
    double d = value - prev_;
    if (params_.use_abs) d = std::fabs(d);
    d_.push_back(d);
    sums_.push_back(sums_.back() + d);
    sq_.push_back(sq_.back() + static_cast<long double>(d) * d);
  }
  prev_ = value;
  ++observed_;
  EmitReady(out);
  return Status::OK();
}

Status OnlineOneLiner::Flush(std::vector<ScoredPoint>* out) {
  if (observed_ == 0) return Status::OK();
  if (observed_ == 1) {
    out->push_back({0, 0.0});  // batch: series shorter than 2 scores all-0
    return Status::OK();
  }
  // Tail margins: their centered windows truncate at the series end,
  // exactly like the batch MovMean/MovStd boundary handling.
  const std::size_t nd = d_.size();
  while (emitted_ < nd) {
    const double margin = MarginAt(emitted_, nd);
    run_min_ = std::min(run_min_, margin);
    out->push_back({emitted_ + 1, margin});
    ++emitted_;
  }
  // Index 0 is PadLeft's floor: the global minimum margin.
  out->push_back({0, run_min_});
  return Status::OK();
}

Result<std::string> OnlineOneLiner::Snapshot() const {
  ByteWriter writer;
  writer.PutString(name_);
  writer.PutU64(observed_);
  writer.PutU64(emitted_);
  writer.PutDouble(prev_);
  writer.PutDouble(run_min_);
  writer.PutDoubles(d_);
  return writer.Take();
}

Status OnlineOneLiner::Restore(std::string_view blob) {
  ByteReader reader(blob);
  TSAD_RETURN_IF_ERROR(CheckBlobName(&reader, name_));
  std::uint64_t observed, emitted;
  TSAD_RETURN_IF_ERROR(reader.GetU64(&observed));
  TSAD_RETURN_IF_ERROR(reader.GetU64(&emitted));
  TSAD_RETURN_IF_ERROR(reader.GetDouble(&prev_));
  TSAD_RETURN_IF_ERROR(reader.GetDouble(&run_min_));
  TSAD_RETURN_IF_ERROR(reader.GetDoubles(&d_));
  TSAD_RETURN_IF_ERROR(reader.ExpectDone());
  observed_ = observed;
  emitted_ = emitted;
  // Rebuild the prefix sums by re-accumulating d_ in append order —
  // the identical operation sequence, hence identical rounding.
  sums_.assign(1, 0.0L);
  sq_.assign(1, 0.0L);
  for (double d : d_) {
    sums_.push_back(sums_.back() + d);
    sq_.push_back(sq_.back() + static_cast<long double>(d) * d);
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// OnlineStreamingDiscord

OnlineStreamingDiscord::OnlineStreamingDiscord(std::string name, std::size_t m,
                                               std::size_t burn_in)
    : name_(std::move(name)), m_(m), burn_in_(burn_in), profile_(m) {}

Status OnlineStreamingDiscord::Observe(double value,
                                       std::vector<ScoredPoint>* out) {
  const auto entry = profile_.Push(value);
  double score = 0.0;
  if (entry && observed_ >= burn_in_ && std::isfinite(entry->distance)) {
    score = entry->distance;
  }
  out->push_back({observed_, score});
  ++observed_;
  return Status::OK();
}

Status OnlineStreamingDiscord::Flush(std::vector<ScoredPoint>* /*out*/) {
  if (observed_ < m_ + 1) {
    return Status::InvalidArgument(
        "series too short: need at least 2 subsequences of length " +
        std::to_string(m_));
  }
  return Status::OK();
}

Result<std::string> OnlineStreamingDiscord::Snapshot() const {
  ByteWriter writer;
  writer.PutString(name_);
  writer.PutU64(observed_);
  writer.PutU64(burn_in_);
  profile_.Serialize(&writer);
  return writer.Take();
}

Status OnlineStreamingDiscord::Restore(std::string_view blob) {
  ByteReader reader(blob);
  TSAD_RETURN_IF_ERROR(CheckBlobName(&reader, name_));
  std::uint64_t observed, burn_in;
  TSAD_RETURN_IF_ERROR(reader.GetU64(&observed));
  TSAD_RETURN_IF_ERROR(reader.GetU64(&burn_in));
  if (burn_in != burn_in_) {
    return Status::InvalidArgument("snapshot burn_in mismatch for " + name_);
  }
  TSAD_RETURN_IF_ERROR(profile_.Deserialize(&reader));
  TSAD_RETURN_IF_ERROR(reader.ExpectDone());
  observed_ = observed;
  return Status::OK();
}

// ---------------------------------------------------------------------------
// OnlineFloss

OnlineFloss::OnlineFloss(std::string name, const FlossParams& params)
    : name_(std::move(name)), params_(params), core_(params) {}

Status OnlineFloss::Observe(double value, std::vector<ScoredPoint>* out) {
  out->push_back({observed_, core_.Step(value)});
  ++observed_;
  return Status::OK();
}

Status OnlineFloss::Flush(std::vector<ScoredPoint>* /*out*/) {
  if (observed_ < params_.m + 1) {
    return Status::InvalidArgument(
        "series too short: need at least 2 subsequences of length " +
        std::to_string(params_.m));
  }
  return Status::OK();
}

Result<std::string> OnlineFloss::Snapshot() const {
  ByteWriter writer;
  writer.PutString(name_);
  writer.PutU64(observed_);
  core_.Serialize(&writer);
  return writer.Take();
}

Status OnlineFloss::Restore(std::string_view blob) {
  ByteReader reader(blob);
  TSAD_RETURN_IF_ERROR(CheckBlobName(&reader, name_));
  std::uint64_t observed;
  TSAD_RETURN_IF_ERROR(reader.GetU64(&observed));
  // Deserialize into a scratch core so a corrupt blob cannot leave the
  // live one half-overwritten.
  FlossCore core(params_);
  TSAD_RETURN_IF_ERROR(core.Deserialize(&reader));
  TSAD_RETURN_IF_ERROR(reader.ExpectDone());
  core_ = std::move(core);
  observed_ = observed;
  return Status::OK();
}

// ---------------------------------------------------------------------------
// OnlineMerlin

OnlineMerlin::OnlineMerlin(std::string name, std::size_t min_length,
                           std::size_t max_length)
    : name_(std::move(name)),
      min_length_(min_length),
      max_length_(max_length) {}

Status OnlineMerlin::Observe(double value, std::vector<ScoredPoint>* /*out*/) {
  buffer_.push_back(value);
  ++observed_;
  return Status::OK();
}

Status OnlineMerlin::Flush(std::vector<ScoredPoint>* out) {
  // The acausal step: run the batch detector over the buffered stream.
  // Reusing MerlinDetector::Score (not a copy of its loop) makes the
  // byte-identity contract structural — there is exactly one scoring
  // path. A stream too short for max_length surfaces the batch error.
  const MerlinDetector batch(min_length_, max_length_);
  TSAD_ASSIGN_OR_RETURN(const std::vector<double> scores,
                        batch.Score(buffer_, /*train_length=*/0));
  for (std::size_t i = 0; i < scores.size(); ++i) {
    out->push_back({i, scores[i]});
  }
  return Status::OK();
}

Result<std::string> OnlineMerlin::Snapshot() const {
  ByteWriter writer;
  writer.PutString(name_);
  writer.PutU64(observed_);
  writer.PutDoubles(buffer_);
  return writer.Take();
}

Status OnlineMerlin::Restore(std::string_view blob) {
  ByteReader reader(blob);
  TSAD_RETURN_IF_ERROR(CheckBlobName(&reader, name_));
  std::uint64_t observed;
  TSAD_RETURN_IF_ERROR(reader.GetU64(&observed));
  std::vector<double> buffer;
  TSAD_RETURN_IF_ERROR(reader.GetDoubles(&buffer));
  TSAD_RETURN_IF_ERROR(reader.ExpectDone());
  if (observed != buffer.size()) {
    return Status::InvalidArgument("snapshot buffer mismatch for " + name_);
  }
  buffer_ = std::move(buffer);
  observed_ = observed;
  return Status::OK();
}

// ---------------------------------------------------------------------------
// OnlineSanitizer

OnlineSanitizer::OnlineSanitizer(std::unique_ptr<OnlineDetector> inner,
                                 double sentinel)
    : inner_(std::move(inner)),
      name_("online-resilient(" + std::string(inner_->name()) + ")"),
      sentinel_(sentinel) {}

Status OnlineSanitizer::Observe(double value, std::vector<ScoredPoint>* out) {
  if (!std::isfinite(value) || value == sentinel_) {
    value = have_good_ ? last_good_ : 0.0;
    ++points_patched_;
  } else {
    last_good_ = value;
    have_good_ = true;
  }
  TSAD_RETURN_IF_ERROR(inner_->Observe(value, out));
  ++observed_;
  return Status::OK();
}

Status OnlineSanitizer::Flush(std::vector<ScoredPoint>* out) {
  return inner_->Flush(out);
}

Result<std::string> OnlineSanitizer::Snapshot() const {
  ByteWriter writer;
  writer.PutString(name_);
  writer.PutU64(observed_);
  writer.PutU64(points_patched_);
  writer.PutU64(have_good_ ? 1 : 0);
  writer.PutDouble(last_good_);
  TSAD_ASSIGN_OR_RETURN(std::string inner_blob, inner_->Snapshot());
  writer.PutString(inner_blob);
  return writer.Take();
}

Status OnlineSanitizer::Restore(std::string_view blob) {
  ByteReader reader(blob);
  TSAD_RETURN_IF_ERROR(CheckBlobName(&reader, name_));
  std::uint64_t observed, patched, have_good;
  TSAD_RETURN_IF_ERROR(reader.GetU64(&observed));
  TSAD_RETURN_IF_ERROR(reader.GetU64(&patched));
  TSAD_RETURN_IF_ERROR(reader.GetU64(&have_good));
  TSAD_RETURN_IF_ERROR(reader.GetDouble(&last_good_));
  std::string inner_blob;
  TSAD_RETURN_IF_ERROR(reader.GetString(&inner_blob));
  TSAD_RETURN_IF_ERROR(reader.ExpectDone());
  TSAD_RETURN_IF_ERROR(inner_->Restore(inner_blob));
  observed_ = observed;
  points_patched_ = patched;
  have_good_ = have_good != 0;
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Factory

std::vector<std::string> OnlineCapableDetectorNames() {
  return {"zscore",   "cusum",     "ewma",      "pagehinkley",
          "oneliner", "streaming", "resilient", "floss",
          "merlin"};
}

namespace {

Status TrainPrefixRequired(std::string_view name, std::size_t train_length) {
  if (train_length >= 8) return Status::OK();
  return Status::FailedPrecondition(
      "detector '" + std::string(name) +
      "' requires a training prefix of at least 8 points to run online "
      "(got " +
      std::to_string(train_length) +
      "): its batch reference statistics would otherwise come from the "
      "whole series, which is not causal");
}

}  // namespace

Result<std::unique_ptr<OnlineDetector>> MakeOnlineDetector(
    const std::string& spec, std::size_t train_length) {
  // The batch `resilient:` decorator sanitizes with the whole series in
  // hand, so it has no bit-exact online form; serve the causal
  // equivalent instead — the inner adapter behind a per-point
  // sanitizer. (Before this branch existed the prefix fell through to a
  // misleading "no online adapter for 'resilient'" error.)
  constexpr std::string_view kResilientPrefix = "resilient:";
  if (spec.rfind(kResilientPrefix, 0) == 0) {
    const std::string inner_spec = spec.substr(kResilientPrefix.size());
    if (inner_spec.empty()) {
      return Status::InvalidArgument(
          "spec 'resilient:' needs an inner detector, e.g. "
          "'resilient:zscore:w=64'");
    }
    TSAD_ASSIGN_OR_RETURN(std::unique_ptr<OnlineDetector> inner,
                          MakeOnlineDetector(inner_spec, train_length));
    return std::unique_ptr<OnlineDetector>(
        std::make_unique<OnlineSanitizer>(std::move(inner),
                                          kDefaultSentinel));
  }

  TSAD_ASSIGN_OR_RETURN(std::unique_ptr<AnomalyDetector> batch,
                        MakeDetector(spec));
  std::string online_name = "online:" + std::string(batch->name());

  if (auto* z = dynamic_cast<const MovingZScoreDetector*>(batch.get())) {
    return std::unique_ptr<OnlineDetector>(std::make_unique<OnlineMovingZScore>(
        std::move(online_name), z->window(), z->min_std()));
  }
  if (auto* c = dynamic_cast<const CusumDetector*>(batch.get())) {
    TSAD_RETURN_IF_ERROR(TrainPrefixRequired("cusum", train_length));
    return std::unique_ptr<OnlineDetector>(std::make_unique<OnlineCusum>(
        std::move(online_name), c->drift(), c->reset_threshold(),
        train_length));
  }
  if (auto* e = dynamic_cast<const EwmaChartDetector*>(batch.get())) {
    TSAD_RETURN_IF_ERROR(TrainPrefixRequired("ewma", train_length));
    return std::unique_ptr<OnlineDetector>(std::make_unique<OnlineEwmaChart>(
        std::move(online_name), e->lambda(), train_length));
  }
  if (auto* p = dynamic_cast<const PageHinkleyDetector*>(batch.get())) {
    TSAD_RETURN_IF_ERROR(TrainPrefixRequired("pagehinkley", train_length));
    return std::unique_ptr<OnlineDetector>(std::make_unique<OnlinePageHinkley>(
        std::move(online_name), p->delta(), train_length));
  }
  if (auto* o = dynamic_cast<const OneLinerDetector*>(batch.get())) {
    return std::unique_ptr<OnlineDetector>(std::make_unique<OnlineOneLiner>(
        std::move(online_name), o->params()));
  }
  if (auto* s = dynamic_cast<const StreamingDiscordDetector*>(batch.get())) {
    if (s->subsequence_length() < 3) {
      return Status::InvalidArgument(
          "streaming discord requires subsequence length m >= 3, got m=" +
          std::to_string(s->subsequence_length()) +
          " (the m/2 exclusion zone degenerates for shorter windows)");
    }
    return std::unique_ptr<OnlineDetector>(
        std::make_unique<OnlineStreamingDiscord>(std::move(online_name),
                                                 s->subsequence_length(),
                                                 s->burn_in()));
  }
  if (auto* f = dynamic_cast<const FlossDetector*>(batch.get())) {
    return std::unique_ptr<OnlineDetector>(
        std::make_unique<OnlineFloss>(std::move(online_name), f->params()));
  }
  if (auto* m = dynamic_cast<const MerlinDetector*>(batch.get())) {
    return std::unique_ptr<OnlineDetector>(std::make_unique<OnlineMerlin>(
        std::move(online_name), m->min_length(), m->max_length()));
  }

  std::string known;
  for (const std::string& n : OnlineCapableDetectorNames()) {
    if (!known.empty()) known += ' ';
    known += n;
  }
  return Status::Unimplemented("detector '" +
                               spec.substr(0, spec.find(':')) +
                               "' has no online adapter; online-capable: " +
                               known);
}

}  // namespace tsad
