#include "serving/admission.h"

#include <algorithm>
#include <vector>

#include "common/suggest.h"

namespace tsad {

std::string_view StreamPriorityName(StreamPriority priority) {
  switch (priority) {
    case StreamPriority::kCritical:
      return "critical";
    case StreamPriority::kHigh:
      return "high";
    case StreamPriority::kNormal:
      return "normal";
    case StreamPriority::kBatch:
      return "batch";
  }
  return "?";
}

Result<StreamPriority> ParseStreamPriority(std::string_view name) {
  static const std::vector<std::string> kNames = {"critical", "high", "normal",
                                                  "batch"};
  for (int p = 0; p < kNumStreamPriorities; ++p) {
    if (name == kNames[static_cast<std::size_t>(p)]) {
      return static_cast<StreamPriority>(p);
    }
  }
  std::string message = "unknown stream priority '" + std::string(name) +
                        "' (want critical, high, normal, or batch)";
  const std::string suggestion = SuggestClosest(name, kNames);
  if (!suggestion.empty()) {
    message += "; did you mean '" + suggestion + "'?";
  }
  return Status::InvalidArgument(std::move(message));
}

PriorityQuotaPolicy::PriorityQuotaPolicy(PriorityQuotaConfig config)
    : config_(std::move(config)) {
  for (double& limit : config_.fill_limit) {
    limit = std::clamp(limit, 0.0, 1.0);
  }
}

AdmissionDecision PriorityQuotaPolicy::Admit(
    const AdmissionRequest& request) const {
  const int p = std::clamp(static_cast<int>(request.priority), 0,
                           kNumStreamPriorities - 1);
  if (request.queue_capacity > 0) {
    const double ceiling =
        config_.fill_limit[static_cast<std::size_t>(p)] *
        static_cast<double>(request.queue_capacity);
    if (static_cast<double>(request.queue_depth) >= ceiling) {
      return AdmissionDecision::kDeny;
    }
  }
  std::uint64_t quota = config_.default_tenant_quota;
  const auto it = config_.tenant_quota.find(std::string(request.tenant));
  if (it != config_.tenant_quota.end()) quota = it->second;
  if (quota > 0 && request.tenant_in_flight >= quota) {
    return AdmissionDecision::kDeny;
  }
  return AdmissionDecision::kAdmit;
}

}  // namespace tsad
