#include "serving/engine.h"

#include <chrono>
#include <optional>
#include <utility>

#include "common/parallel.h"
#include "common/wire.h"
#include "robustness/deadline.h"
#include "serving/online_adapters.h"

namespace tsad {

namespace {

constexpr std::string_view kSnapshotMagic = "tsad-serving-engine-v1";

std::uint64_t Fnv1a(std::string_view s) {
  std::uint64_t h = 1469598103934665603ull;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

struct ShardedEngine::StreamState {
  std::string id;
  std::string spec;
  std::size_t train_length = 0;
  std::size_t shard = 0;
  std::unique_ptr<OnlineDetector> detector;

  // Touched only while the owning shard's pump lock is held (one
  // drainer at a time), or from FinishStream/Snapshot after the final
  // Pump joined.
  std::vector<ScoredPoint> out;

  // Guarded by the owning shard's queue_mu.
  std::size_t accepted = 0;

  // Sticky failure; guarded by mu (read by producers, written by the
  // drain thread).
  mutable std::mutex mu;
  Status status = Status::OK();

  Status GetStatus() const {
    std::lock_guard<std::mutex> lock(mu);
    return status;
  }
  void SetStatus(Status s) {
    std::lock_guard<std::mutex> lock(mu);
    status = std::move(s);
  }
};

struct ShardedEngine::Shard {
  std::mutex queue_mu;
  std::deque<std::pair<std::shared_ptr<StreamState>, double>> queue;
  // Serializes drains of this shard (Pump workers and kBlock producers
  // may race to drain).
  std::mutex pump_mu;
};

ShardedEngine::ShardedEngine(ServingConfig config) : config_(config) {
  std::size_t shards = config_.num_shards;
  if (shards == 0) shards = ParallelThreads();
  if (shards == 0) shards = 1;
  shards_.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  if (config_.queue_capacity == 0) config_.queue_capacity = 1;
}

ShardedEngine::~ShardedEngine() = default;

std::size_t ShardedEngine::ShardOf(const std::string& id) const {
  return static_cast<std::size_t>(Fnv1a(id) % shards_.size());
}

Result<std::shared_ptr<ShardedEngine::StreamState>> ShardedEngine::FindStream(
    const std::string& id) const {
  std::lock_guard<std::mutex> lock(registry_mu_);
  auto it = streams_.find(id);
  if (it == streams_.end()) {
    return Status::NotFound("no such stream '" + id + "'");
  }
  return it->second;
}

Status ShardedEngine::AddStream(const std::string& id,
                                const std::string& detector_spec,
                                std::size_t train_length) {
  if (id.empty()) return Status::InvalidArgument("empty stream id");
  TSAD_ASSIGN_OR_RETURN(std::unique_ptr<OnlineDetector> detector,
                        MakeOnlineDetector(detector_spec, train_length));
  auto state = std::make_shared<StreamState>();
  state->id = id;
  state->spec = detector_spec;
  state->train_length = train_length;
  state->shard = ShardOf(id);
  state->detector = std::move(detector);

  std::lock_guard<std::mutex> lock(registry_mu_);
  if (!streams_.emplace(id, std::move(state)).second) {
    return Status::InvalidArgument("stream '" + id + "' already exists");
  }
  return Status::OK();
}

Status ShardedEngine::Push(const std::string& id, double value) {
  TSAD_ASSIGN_OR_RETURN(std::shared_ptr<StreamState> state, FindStream(id));
  TSAD_RETURN_IF_ERROR(state->GetStatus());
  Shard& shard = *shards_[state->shard];
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(shard.queue_mu);
      if (shard.queue.size() < config_.queue_capacity) {
        shard.queue.emplace_back(state, value);
        ++state->accepted;
        points_in_.fetch_add(1, std::memory_order_relaxed);
        return Status::OK();
      }
    }
    if (config_.overflow == OverflowPolicy::kShed) {
      points_shed_.fetch_add(1, std::memory_order_relaxed);
      return Status::ResourceExhausted(
          "shard " + std::to_string(state->shard) + " queue full (" +
          std::to_string(config_.queue_capacity) +
          " items); point shed for stream '" + id + "'");
    }
    // kBlock: make room by draining on the producer's own thread.
    DrainShard(state->shard);
  }
}

void ShardedEngine::DrainShard(std::size_t shard_index) {
  Shard& shard = *shards_[shard_index];
  std::lock_guard<std::mutex> pump_lock(shard.pump_mu);

  std::deque<std::pair<std::shared_ptr<StreamState>, double>> items;
  {
    std::lock_guard<std::mutex> lock(shard.queue_mu);
    items.swap(shard.queue);
  }
  if (items.empty()) return;

  // Regroup FIFO items per stream (first-appearance order). Streams are
  // independent, so only the per-stream order matters for scores.
  std::vector<std::pair<StreamState*, std::vector<double>>> groups;
  std::map<StreamState*, std::size_t> group_of;
  for (auto& [state, value] : items) {
    auto [it, inserted] = group_of.emplace(state.get(), groups.size());
    if (inserted) groups.emplace_back(state.get(), std::vector<double>());
    groups[it->second].second.push_back(value);
  }

  for (auto& [state, values] : groups) {
    if (!state->GetStatus().ok()) {
      points_dropped_.fetch_add(values.size(), std::memory_order_relaxed);
      continue;
    }
    std::optional<DeadlineScope> deadline;
    if (config_.stream_deadline.count() > 0) {
      deadline.emplace(config_.stream_deadline);
    }
    const std::size_t before = state->out.size();
    Status status = Status::OK();
    std::size_t consumed = 0;
    for (double value : values) {
      status = CheckDeadline();
      if (status.ok()) status = state->detector->Observe(value, &state->out);
      if (!status.ok()) break;
      ++consumed;
    }
    points_scored_.fetch_add(state->out.size() - before,
                             std::memory_order_relaxed);
    if (!status.ok()) {
      points_dropped_.fetch_add(values.size() - consumed,
                                std::memory_order_relaxed);
      state->SetStatus(Status(
          status.code(), "stream '" + state->id + "': " + status.message()));
    }
  }
}

Status ShardedEngine::Pump() {
  const auto start = std::chrono::steady_clock::now();
  Status status = ParallelFor(0, shards_.size(), [&](std::size_t i) -> Status {
    DrainShard(i);
    return Status::OK();
  });
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++pumps_;
    pump_seconds_.push_back(seconds);
  }
  return status;
}

Result<std::vector<double>> ShardedEngine::FinishStream(const std::string& id) {
  TSAD_RETURN_IF_ERROR(Pump());
  std::shared_ptr<StreamState> state;
  {
    std::lock_guard<std::mutex> lock(registry_mu_);
    auto it = streams_.find(id);
    if (it == streams_.end()) {
      return Status::NotFound("no such stream '" + id + "'");
    }
    state = std::move(it->second);
    streams_.erase(it);
  }
  TSAD_RETURN_IF_ERROR(state->GetStatus());
  TSAD_RETURN_IF_ERROR(state->detector->Flush(&state->out));
  std::size_t accepted;
  {
    std::lock_guard<std::mutex> lock(shards_[state->shard]->queue_mu);
    accepted = state->accepted;
  }
  return AssembleScores(state->out, accepted, id);
}

Status ShardedEngine::StreamStatus(const std::string& id) const {
  TSAD_ASSIGN_OR_RETURN(std::shared_ptr<StreamState> state, FindStream(id));
  return state->GetStatus();
}

Result<std::string> ShardedEngine::Snapshot() {
  TSAD_RETURN_IF_ERROR(Pump());
  std::lock_guard<std::mutex> lock(registry_mu_);
  ByteWriter writer;
  writer.PutString(kSnapshotMagic);
  writer.PutU64(streams_.size());
  for (const auto& [id, state] : streams_) {  // std::map: sorted, stable
    writer.PutString(id);
    writer.PutString(state->spec);
    writer.PutU64(state->train_length);
    {
      std::lock_guard<std::mutex> queue_lock(shards_[state->shard]->queue_mu);
      writer.PutU64(state->accepted);
    }
    const Status status = state->GetStatus();
    writer.PutU64(static_cast<std::uint64_t>(status.code()));
    writer.PutString(status.message());
    writer.PutU64(state->out.size());
    for (const ScoredPoint& p : state->out) {
      writer.PutU64(p.index);
      writer.PutDouble(p.score);
    }
    if (status.ok()) {
      TSAD_ASSIGN_OR_RETURN(std::string blob, state->detector->Snapshot());
      writer.PutU64(1);
      writer.PutString(blob);
    } else {
      writer.PutU64(0);  // failed streams carry no detector state
    }
  }
  return writer.Take();
}

Status ShardedEngine::Restore(std::string_view blob) {
  {
    std::lock_guard<std::mutex> lock(registry_mu_);
    if (!streams_.empty()) {
      return Status::FailedPrecondition(
          "Restore requires an engine with no streams (have " +
          std::to_string(streams_.size()) + ")");
    }
  }
  ByteReader reader(blob);
  std::string magic;
  TSAD_RETURN_IF_ERROR(reader.GetString(&magic));
  if (magic != kSnapshotMagic) {
    return Status::InvalidArgument("not a serving-engine snapshot");
  }
  std::uint64_t count;
  TSAD_RETURN_IF_ERROR(reader.GetU64(&count));
  std::map<std::string, std::shared_ptr<StreamState>> restored;
  for (std::uint64_t s = 0; s < count; ++s) {
    auto state = std::make_shared<StreamState>();
    TSAD_RETURN_IF_ERROR(reader.GetString(&state->id));
    TSAD_RETURN_IF_ERROR(reader.GetString(&state->spec));
    std::uint64_t train_length, accepted, code, out_count, has_detector;
    TSAD_RETURN_IF_ERROR(reader.GetU64(&train_length));
    TSAD_RETURN_IF_ERROR(reader.GetU64(&accepted));
    TSAD_RETURN_IF_ERROR(reader.GetU64(&code));
    std::string message;
    TSAD_RETURN_IF_ERROR(reader.GetString(&message));
    TSAD_RETURN_IF_ERROR(reader.GetU64(&out_count));
    state->train_length = static_cast<std::size_t>(train_length);
    state->accepted = static_cast<std::size_t>(accepted);
    state->status = Status(static_cast<StatusCode>(code), std::move(message));
    state->out.reserve(static_cast<std::size_t>(out_count));
    for (std::uint64_t i = 0; i < out_count; ++i) {
      ScoredPoint p;
      std::uint64_t index;
      TSAD_RETURN_IF_ERROR(reader.GetU64(&index));
      TSAD_RETURN_IF_ERROR(reader.GetDouble(&p.score));
      p.index = static_cast<std::size_t>(index);
      state->out.push_back(p);
    }
    TSAD_RETURN_IF_ERROR(reader.GetU64(&has_detector));
    if (has_detector != 0) {
      std::string detector_blob;
      TSAD_RETURN_IF_ERROR(reader.GetString(&detector_blob));
      TSAD_ASSIGN_OR_RETURN(
          state->detector,
          MakeOnlineDetector(state->spec, state->train_length));
      TSAD_RETURN_IF_ERROR(state->detector->Restore(detector_blob));
    }
    state->shard = ShardOf(state->id);  // re-placed under the new config
    if (!restored.emplace(state->id, std::move(state)).second) {
      return Status::InvalidArgument("snapshot contains duplicate stream id");
    }
  }
  TSAD_RETURN_IF_ERROR(reader.ExpectDone());
  std::lock_guard<std::mutex> lock(registry_mu_);
  if (!streams_.empty()) {
    return Status::FailedPrecondition("streams added during Restore");
  }
  streams_ = std::move(restored);
  return Status::OK();
}

ServingStats ShardedEngine::stats() const {
  ServingStats out;
  out.points_in = points_in_.load(std::memory_order_relaxed);
  out.points_scored = points_scored_.load(std::memory_order_relaxed);
  out.points_shed = points_shed_.load(std::memory_order_relaxed);
  out.points_dropped = points_dropped_.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(stats_mu_);
  out.pumps = pumps_;
  out.pump_seconds = pump_seconds_;
  return out;
}

std::size_t ShardedEngine::num_streams() const {
  std::lock_guard<std::mutex> lock(registry_mu_);
  return streams_.size();
}

}  // namespace tsad
