#include "serving/engine.h"

#include <algorithm>
#include <chrono>
#include <optional>
#include <utility>

#include "common/parallel.h"
#include "common/wire.h"
#include "robustness/deadline.h"
#include "serving/online_adapters.h"

namespace tsad {

namespace {

// v2 added priority/tenant, stream health, quarantine checkpoints and
// cold detector state. v1 blobs are rejected (the codec is for live
// failover between peers of the same build, not archival).
constexpr std::string_view kSnapshotMagic = "tsad-serving-engine-v2";

std::uint64_t Fnv1a(std::string_view s) {
  std::uint64_t h = 1469598103934665603ull;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

struct ShardedEngine::StreamState {
  // Where a stream sits on the degradation ladder. Transitions happen
  // only under the owning shard's pump lock; the value itself is
  // guarded by mu so producers and stats() can read it.
  enum class Health : std::uint8_t {
    kHealthy = 0,     // detector live
    kCold = 1,        // detector snapshotted to cold_blob, memory freed
    kQuarantined = 2, // detector down, points buffering, recovery pending
    kFailed = 3,      // sticky error, the terminal rung
  };

  std::string id;
  std::string spec;
  std::size_t train_length = 0;
  std::size_t shard = 0;
  StreamPriority priority = StreamPriority::kNormal;
  std::string tenant;
  std::shared_ptr<std::atomic<std::uint64_t>> tenant_in_flight;

  // Null while cold, quarantined or failed.
  std::unique_ptr<OnlineDetector> detector;

  // Touched only while the owning shard's pump lock is held (one
  // drainer at a time), or from FinishStream/Snapshot after the final
  // Pump joined.
  std::vector<ScoredPoint> out;

  // Last-known-good recovery point (pump-lock domain). The checkpoint
  // pair is refreshed after every successful drain, so on a detector
  // error `out` rolls back to checkpoint_out and the failing batch goes
  // to `pending` — nothing scored past the checkpoint survives, which
  // is what keeps recovered streams byte-identical to batch.
  std::string checkpoint_blob;
  std::size_t checkpoint_out = 0;
  std::vector<double> pending;       // accepted, not yet scored
  // Failed recovery attempts so far. Written in the pump-lock domain;
  // atomic because StreamStatus() reports it from any thread.
  std::atomic<int> retries{0};
  std::uint64_t next_retry_pump = 0; // pump epoch gating the next attempt

  // Cold store (pump-lock domain): the detector snapshot while evicted.
  std::string cold_blob;

  // Approximate live detector bytes; 0 while cold/failed. Written in
  // the pump-lock domain, read lock-free by the budget enforcer.
  std::atomic<std::size_t> footprint{0};
  // Pump epoch of the last drained point (eviction recency order).
  std::atomic<std::uint64_t> last_active_pump{0};
  // Points currently queued (guarded by the shard's queue_mu; atomic so
  // the budget enforcer can read it lock-free).
  std::atomic<std::size_t> queued{0};

  // Guarded by the owning shard's queue_mu.
  std::size_t accepted = 0;

  // Health + sticky failure + quarantine cause; guarded by mu (read by
  // producers and stats(), written in the pump-lock domain).
  mutable std::mutex mu;
  Health health = Health::kHealthy;
  Status status = Status::OK();  // non-OK only when kFailed
  Status cause = Status::OK();   // the error that caused quarantine

  Status GetStatus() const {
    std::lock_guard<std::mutex> lock(mu);
    return status;
  }
  Health GetHealth() const {
    std::lock_guard<std::mutex> lock(mu);
    return health;
  }
  void Set(Health h, Status s, Status c) {
    std::lock_guard<std::mutex> lock(mu);
    health = h;
    status = std::move(s);
    cause = std::move(c);
  }
};

struct ShardedEngine::Shard {
  std::mutex queue_mu;
  std::deque<std::pair<std::shared_ptr<StreamState>, double>> queue;
  // Serializes drains of this shard (Pump workers, kBlock producers and
  // the budget enforcer may race).
  std::mutex pump_mu;
};

ShardedEngine::ShardedEngine(ServingConfig config)
    : config_(std::move(config)) {
  std::size_t shards = config_.num_shards;
  if (shards == 0) shards = ParallelThreads();
  if (shards == 0) shards = 1;
  shards_.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  if (config_.queue_capacity == 0) config_.queue_capacity = 1;
  if (config_.recovery.backoff_pumps == 0) config_.recovery.backoff_pumps = 1;
}

ShardedEngine::~ShardedEngine() = default;

std::size_t ShardedEngine::ShardOf(const std::string& id) const {
  return static_cast<std::size_t>(Fnv1a(id) % shards_.size());
}

Result<std::shared_ptr<ShardedEngine::StreamState>> ShardedEngine::FindStream(
    const std::string& id) const {
  std::lock_guard<std::mutex> lock(registry_mu_);
  auto it = streams_.find(id);
  if (it == streams_.end()) {
    return Status::NotFound("no such stream '" + id + "'");
  }
  return it->second;
}

Result<std::unique_ptr<OnlineDetector>> ShardedEngine::BuildDetector(
    const std::string& spec, std::size_t train_length,
    const std::string& id) const {
  TSAD_ASSIGN_OR_RETURN(std::unique_ptr<OnlineDetector> detector,
                        MakeOnlineDetector(spec, train_length));
  if (config_.detector_decorator) {
    return config_.detector_decorator(std::move(detector), id);
  }
  return detector;
}

std::shared_ptr<std::atomic<std::uint64_t>> ShardedEngine::TenantCounter(
    const std::string& tenant) {
  // Caller holds registry_mu_.
  auto it = tenants_.find(tenant);
  if (it == tenants_.end()) {
    it = tenants_.emplace(tenant, std::make_shared<std::atomic<std::uint64_t>>(0))
             .first;
  }
  return it->second;
}

Status ShardedEngine::AddStream(const std::string& id,
                                const std::string& detector_spec,
                                StreamOptions options) {
  if (id.empty()) return Status::InvalidArgument("empty stream id");
  TSAD_ASSIGN_OR_RETURN(std::unique_ptr<OnlineDetector> detector,
                        BuildDetector(detector_spec, options.train_length, id));
  auto state = std::make_shared<StreamState>();
  state->id = id;
  state->spec = detector_spec;
  state->train_length = options.train_length;
  state->shard = ShardOf(id);
  state->priority = options.priority;
  state->tenant = std::move(options.tenant);
  state->footprint.store(detector->MemoryFootprint(),
                         std::memory_order_relaxed);
  state->detector = std::move(detector);

  std::lock_guard<std::mutex> lock(registry_mu_);
  state->tenant_in_flight = TenantCounter(state->tenant);
  if (!streams_.emplace(id, std::move(state)).second) {
    return Status::InvalidArgument("stream '" + id + "' already exists");
  }
  return Status::OK();
}

Status ShardedEngine::Push(const std::string& id, double value) {
  TSAD_ASSIGN_OR_RETURN(std::shared_ptr<StreamState> state, FindStream(id));
  TSAD_RETURN_IF_ERROR(state->GetStatus());
  Shard& shard = *shards_[state->shard];

  if (config_.admission != nullptr) {
    AdmissionRequest request;
    request.stream_id = state->id;
    request.tenant = state->tenant;
    request.priority = state->priority;
    request.queue_capacity = config_.queue_capacity;
    {
      std::lock_guard<std::mutex> lock(shard.queue_mu);
      request.queue_depth = shard.queue.size();
    }
    request.tenant_in_flight =
        state->tenant_in_flight->load(std::memory_order_relaxed);
    if (config_.admission->Admit(request) == AdmissionDecision::kDeny) {
      points_denied_.fetch_add(1, std::memory_order_relaxed);
      return Status::ResourceExhausted(
          "admission denied for stream '" + id + "' (" +
          std::string(StreamPriorityName(state->priority)) + ", depth " +
          std::to_string(request.queue_depth) + "/" +
          std::to_string(request.queue_capacity) + ", tenant backlog " +
          std::to_string(request.tenant_in_flight) + ")");
    }
  }

  for (;;) {
    {
      std::lock_guard<std::mutex> lock(shard.queue_mu);
      if (shard.queue.size() < config_.queue_capacity) {
        shard.queue.emplace_back(state, value);
        ++state->accepted;
        state->queued.fetch_add(1, std::memory_order_relaxed);
        state->tenant_in_flight->fetch_add(1, std::memory_order_relaxed);
        points_in_.fetch_add(1, std::memory_order_relaxed);
        return Status::OK();
      }
    }
    if (config_.overflow == OverflowPolicy::kShed) {
      points_shed_.fetch_add(1, std::memory_order_relaxed);
      return Status::ResourceExhausted(
          "shard " + std::to_string(state->shard) + " queue full (" +
          std::to_string(config_.queue_capacity) +
          " items); point shed for stream '" + id + "'");
    }
    // kBlock: make room by draining on the producer's own thread.
    DrainShard(state->shard);
  }
}

Status ShardedEngine::ThawStream(StreamState* state) {
  // Pump lock held; health is kCold. On error the cold blob is left in
  // place — the caller decides whether to quarantine or fail.
  TSAD_ASSIGN_OR_RETURN(
      std::unique_ptr<OnlineDetector> detector,
      BuildDetector(state->spec, state->train_length, state->id));
  TSAD_RETURN_IF_ERROR(detector->Restore(state->cold_blob));
  state->detector = std::move(detector);
  cold_bytes_.fetch_sub(state->cold_blob.size(), std::memory_order_relaxed);
  state->checkpoint_blob = std::move(state->cold_blob);
  state->checkpoint_out = state->out.size();
  state->cold_blob.clear();
  state->footprint.store(state->detector->MemoryFootprint(),
                         std::memory_order_relaxed);
  state->Set(StreamState::Health::kHealthy, Status::OK(), Status::OK());
  thaws_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

void ShardedEngine::FailStream(StreamState* state, const Status& cause) {
  // Pump lock held. The terminal rung: sticky status, buffered points
  // dropped, detector and recovery state released.
  points_dropped_.fetch_add(state->pending.size(), std::memory_order_relaxed);
  state->pending.clear();
  state->pending.shrink_to_fit();
  state->checkpoint_blob.clear();
  cold_bytes_.fetch_sub(state->cold_blob.size(), std::memory_order_relaxed);
  state->cold_blob.clear();
  state->detector.reset();
  state->footprint.store(0, std::memory_order_relaxed);
  const Status sticky(cause.code(),
                      "stream '" + state->id + "': " + cause.message());
  state->Set(StreamState::Health::kFailed, sticky, sticky);
}

void ShardedEngine::EnterQuarantine(StreamState* state, const Status& cause,
                                    const std::vector<double>& values) {
  // Pump lock held. Roll `out` back to the checkpoint (partial scores
  // from the failing batch must not survive — the recovery replay will
  // re-emit them) and buffer the whole batch for that replay.
  points_scored_.fetch_sub(state->out.size() - state->checkpoint_out,
                           std::memory_order_relaxed);
  state->out.resize(state->checkpoint_out);
  state->pending.insert(state->pending.end(), values.begin(), values.end());
  state->detector.reset();
  state->footprint.store(0, std::memory_order_relaxed);
  state->retries.store(0, std::memory_order_relaxed);
  state->next_retry_pump = pump_epoch_.load(std::memory_order_relaxed) +
                           config_.recovery.backoff_pumps;
  Status annotated(cause.code(),
                   "stream '" + state->id + "': " + cause.message());
  state->Set(StreamState::Health::kQuarantined, Status::OK(),
             std::move(annotated));
  quarantines_.fetch_add(1, std::memory_order_relaxed);
}

void ShardedEngine::AttemptRecovery(StreamState* state, bool force) {
  // Pump lock held; health is kQuarantined.
  if (!force && pump_epoch_.load(std::memory_order_relaxed) <
                    state->next_retry_pump) {
    return;
  }

  Status status = Status::OK();
  std::unique_ptr<OnlineDetector> detector;
  std::vector<ScoredPoint> replayed;
  {
    Result<std::unique_ptr<OnlineDetector>> built =
        BuildDetector(state->spec, state->train_length, state->id);
    status = built.status();
    if (status.ok()) detector = std::move(built).value();
  }
  if (status.ok() && !state->checkpoint_blob.empty()) {
    status = detector->Restore(state->checkpoint_blob);
  }
  if (status.ok()) {
    std::optional<DeadlineScope> deadline;
    if (config_.stream_deadline.count() > 0) {
      deadline.emplace(config_.stream_deadline);
    }
    for (double value : state->pending) {
      status = CheckDeadline();
      if (status.ok()) status = detector->Observe(value, &replayed);
      if (!status.ok()) break;
    }
  }

  if (!status.ok()) {
    recovery_failures_.fetch_add(1, std::memory_order_relaxed);
    const int attempts =
        state->retries.fetch_add(1, std::memory_order_relaxed) + 1;
    if (force || attempts >= config_.recovery.max_retries) {
      FailStream(state,
                 Status(status.code(), status.message() + " (after " +
                                           std::to_string(attempts) +
                                           " recovery attempts)"));
    } else {
      // Exponential backoff, measured in pumps: 1, 2, 4, ... * base.
      state->next_retry_pump =
          pump_epoch_.load(std::memory_order_relaxed) +
          (config_.recovery.backoff_pumps << attempts);
    }
    return;
  }

  // Recovered: splice the replayed scores in after the checkpoint and
  // refresh the checkpoint so the next failure rolls back to here.
  state->out.insert(state->out.end(), replayed.begin(), replayed.end());
  points_scored_.fetch_add(replayed.size(), std::memory_order_relaxed);
  state->pending.clear();
  state->pending.shrink_to_fit();
  state->detector = std::move(detector);
  Result<std::string> checkpoint = state->detector->Snapshot();
  if (!checkpoint.ok()) {
    FailStream(state, checkpoint.status());
    return;
  }
  state->checkpoint_blob = std::move(checkpoint).value();
  state->checkpoint_out = state->out.size();
  state->retries.store(0, std::memory_order_relaxed);
  state->footprint.store(state->detector->MemoryFootprint(),
                         std::memory_order_relaxed);
  state->Set(StreamState::Health::kHealthy, Status::OK(), Status::OK());
  recoveries_.fetch_add(1, std::memory_order_relaxed);
}

void ShardedEngine::ProcessGroup(StreamState* state,
                                 const std::vector<double>& values) {
  // Pump lock held; health is kHealthy and the detector is live.
  const bool recoverable = config_.recovery.max_retries > 0;
  std::optional<DeadlineScope> deadline;
  if (config_.stream_deadline.count() > 0) {
    deadline.emplace(config_.stream_deadline);
  }
  const std::size_t before = state->out.size();
  Status status = Status::OK();
  std::size_t consumed = 0;
  for (double value : values) {
    status = CheckDeadline();
    if (status.ok()) status = state->detector->Observe(value, &state->out);
    if (!status.ok()) break;
    ++consumed;
  }
  points_scored_.fetch_add(state->out.size() - before,
                           std::memory_order_relaxed);
  state->last_active_pump.store(pump_epoch_.load(std::memory_order_relaxed),
                                std::memory_order_relaxed);

  if (!status.ok()) {
    if (recoverable) {
      EnterQuarantine(state, status, values);
    } else {
      points_dropped_.fetch_add(values.size() - consumed,
                                std::memory_order_relaxed);
      FailStream(state, status);
    }
    return;
  }

  state->footprint.store(state->detector->MemoryFootprint(),
                         std::memory_order_relaxed);
  if (recoverable) {
    Result<std::string> checkpoint = state->detector->Snapshot();
    if (!checkpoint.ok()) {
      // Can't roll forward the recovery point; the detector's state is
      // unserializable, so treat it like a detector failure.
      FailStream(state, checkpoint.status());
      return;
    }
    state->checkpoint_blob = std::move(checkpoint).value();
    state->checkpoint_out = state->out.size();
  }
}

void ShardedEngine::DrainShard(std::size_t shard_index) {
  Shard& shard = *shards_[shard_index];
  std::lock_guard<std::mutex> pump_lock(shard.pump_mu);

  std::deque<std::pair<std::shared_ptr<StreamState>, double>> items;
  {
    std::lock_guard<std::mutex> lock(shard.queue_mu);
    items.swap(shard.queue);
  }
  if (items.empty()) return;

  // Regroup FIFO items per stream (first-appearance order). Streams are
  // independent, so only the per-stream order matters for scores.
  std::vector<std::pair<StreamState*, std::vector<double>>> groups;
  std::map<StreamState*, std::size_t> group_of;
  for (auto& [state, value] : items) {
    state->queued.fetch_sub(1, std::memory_order_relaxed);
    state->tenant_in_flight->fetch_sub(1, std::memory_order_relaxed);
    auto [it, inserted] = group_of.emplace(state.get(), groups.size());
    if (inserted) groups.emplace_back(state.get(), std::vector<double>());
    groups[it->second].second.push_back(value);
  }

  for (auto& [state, values] : groups) {
    switch (state->GetHealth()) {
      case StreamState::Health::kFailed:
        points_dropped_.fetch_add(values.size(), std::memory_order_relaxed);
        continue;
      case StreamState::Health::kQuarantined:
        // Buffer behind the recovery point; Pump's recovery sweep (or
        // FinishStream) replays these once the detector is back.
        state->pending.insert(state->pending.end(), values.begin(),
                              values.end());
        continue;
      case StreamState::Health::kCold: {
        Status thawed = ThawStream(state);
        if (!thawed.ok()) {
          // A bad cold snapshot is a detector failure. Promote the cold
          // blob to the recovery checkpoint first so the quarantined
          // state stays self-consistent (recovery retries the restore;
          // if the blob really is corrupt, retries exhaust and the
          // stream fails sticky).
          cold_bytes_.fetch_sub(state->cold_blob.size(),
                                std::memory_order_relaxed);
          state->checkpoint_blob = std::move(state->cold_blob);
          state->cold_blob.clear();
          state->checkpoint_out = state->out.size();
          if (config_.recovery.max_retries > 0) {
            EnterQuarantine(state, thawed, values);
          } else {
            points_dropped_.fetch_add(values.size(),
                                      std::memory_order_relaxed);
            FailStream(state, thawed);
          }
          continue;
        }
        break;
      }
      case StreamState::Health::kHealthy:
        break;
    }
    ProcessGroup(state, values);
  }
}

Status ShardedEngine::Pump() {
  const auto start = std::chrono::steady_clock::now();
  pump_epoch_.fetch_add(1, std::memory_order_relaxed);
  Status status = ParallelFor(0, shards_.size(), [&](std::size_t i) -> Status {
    DrainShard(i);
    return Status::OK();
  });

  // Recovery sweep: quarantined streams whose backoff has elapsed get a
  // rebuild-and-replay attempt. Runs after the drains so points that
  // arrived this pump are already buffered.
  if (config_.recovery.max_retries > 0) {
    std::vector<std::shared_ptr<StreamState>> quarantined;
    {
      std::lock_guard<std::mutex> lock(registry_mu_);
      for (const auto& [id, state] : streams_) {
        if (state->GetHealth() == StreamState::Health::kQuarantined) {
          quarantined.push_back(state);
        }
      }
    }
    for (const auto& state : quarantined) {
      std::lock_guard<std::mutex> pump_lock(shards_[state->shard]->pump_mu);
      if (state->GetHealth() == StreamState::Health::kQuarantined) {
        AttemptRecovery(state.get(), /*force=*/false);
      }
    }
  }

  EnforceMemoryBudget();

  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++pumps_;
    pump_total_seconds_ += seconds;
    pump_max_seconds_ = std::max(pump_max_seconds_, seconds);
    if (pump_ring_.size() < PumpLatencyStats::kWindow) {
      pump_ring_.push_back(seconds);
      pump_ring_pos_ = pump_ring_.size() % PumpLatencyStats::kWindow;
    } else {
      pump_ring_[pump_ring_pos_] = seconds;
      pump_ring_pos_ = (pump_ring_pos_ + 1) % PumpLatencyStats::kWindow;
    }
  }
  return status;
}

void ShardedEngine::EnforceMemoryBudget() {
  std::vector<std::shared_ptr<StreamState>> live;
  {
    std::lock_guard<std::mutex> lock(registry_mu_);
    live.reserve(streams_.size());
    for (const auto& [id, state] : streams_) live.push_back(state);
  }
  std::size_t total = 0;
  for (const auto& state : live) {
    total += state->footprint.load(std::memory_order_relaxed);
  }
  if (config_.memory_budget_bytes == 0 ||
      total <= config_.memory_budget_bytes) {
    memory_bytes_.store(total, std::memory_order_relaxed);
    return;
  }

  // Over budget: cold-evict, lowest priority class first, then least
  // recently active. kCritical streams, streams with queued points and
  // streams that are not plain-healthy are never candidates.
  std::vector<StreamState*> candidates;
  for (const auto& state : live) {
    if (state->priority == StreamPriority::kCritical) continue;
    if (state->queued.load(std::memory_order_relaxed) != 0) continue;
    if (state->GetHealth() != StreamState::Health::kHealthy) continue;
    candidates.push_back(state.get());
  }
  std::stable_sort(candidates.begin(), candidates.end(),
                   [](const StreamState* a, const StreamState* b) {
                     if (a->priority != b->priority) {
                       return static_cast<int>(a->priority) >
                              static_cast<int>(b->priority);
                     }
                     return a->last_active_pump.load(
                                std::memory_order_relaxed) <
                            b->last_active_pump.load(
                                std::memory_order_relaxed);
                   });

  for (StreamState* state : candidates) {
    if (total <= config_.memory_budget_bytes) break;
    std::lock_guard<std::mutex> pump_lock(shards_[state->shard]->pump_mu);
    // Re-check under the pump lock: a racing drain (kBlock producer)
    // may have failed or quarantined the stream meanwhile.
    if (state->GetHealth() != StreamState::Health::kHealthy) continue;
    if (state->queued.load(std::memory_order_relaxed) != 0) continue;
    Result<std::string> blob = state->detector->Snapshot();
    if (!blob.ok()) continue;  // unserializable: skip, evict the next one
    const std::size_t freed =
        state->footprint.load(std::memory_order_relaxed);
    state->cold_blob = std::move(blob).value();
    cold_bytes_.fetch_add(state->cold_blob.size(),
                          std::memory_order_relaxed);
    state->detector.reset();
    state->checkpoint_blob.clear();
    state->footprint.store(0, std::memory_order_relaxed);
    state->Set(StreamState::Health::kCold, Status::OK(), Status::OK());
    cold_evictions_.fetch_add(1, std::memory_order_relaxed);
    total -= std::min(total, freed);
  }
  memory_bytes_.store(total, std::memory_order_relaxed);
}

Result<std::vector<double>> ShardedEngine::FinishStream(const std::string& id) {
  TSAD_RETURN_IF_ERROR(Pump());
  std::shared_ptr<StreamState> state;
  {
    std::lock_guard<std::mutex> lock(registry_mu_);
    auto it = streams_.find(id);
    if (it == streams_.end()) {
      return Status::NotFound("no such stream '" + id + "'");
    }
    state = std::move(it->second);
    streams_.erase(it);
  }

  std::lock_guard<std::mutex> pump_lock(shards_[state->shard]->pump_mu);
  switch (state->GetHealth()) {
    case StreamState::Health::kQuarantined:
      // The stream is ending: recover now, backoff notwithstanding. A
      // failed forced attempt fails the stream.
      AttemptRecovery(state.get(), /*force=*/true);
      break;
    case StreamState::Health::kCold: {
      Status thawed = ThawStream(state.get());
      if (!thawed.ok()) FailStream(state.get(), thawed);
      break;
    }
    default:
      break;
  }
  TSAD_RETURN_IF_ERROR(state->GetStatus());
  const std::size_t before = state->out.size();
  TSAD_RETURN_IF_ERROR(state->detector->Flush(&state->out));
  points_scored_.fetch_add(state->out.size() - before,
                           std::memory_order_relaxed);
  std::size_t accepted;
  {
    std::lock_guard<std::mutex> lock(shards_[state->shard]->queue_mu);
    accepted = state->accepted;
  }
  return AssembleScores(state->out, accepted, id);
}

Status ShardedEngine::StreamStatus(const std::string& id) const {
  TSAD_ASSIGN_OR_RETURN(std::shared_ptr<StreamState> state, FindStream(id));
  std::lock_guard<std::mutex> lock(state->mu);
  if (state->health == StreamState::Health::kQuarantined) {
    return Status(state->cause.code(),
                  "quarantined (" +
                      std::to_string(
                          state->retries.load(std::memory_order_relaxed)) +
                      "/" +
                      std::to_string(config_.recovery.max_retries) +
                      " recovery attempts): " + state->cause.message());
  }
  return state->status;
}

Result<std::string> ShardedEngine::Snapshot() {
  TSAD_RETURN_IF_ERROR(Pump());
  std::lock_guard<std::mutex> lock(registry_mu_);
  ByteWriter writer;
  writer.PutString(kSnapshotMagic);
  writer.PutU64(streams_.size());
  const std::uint64_t epoch = pump_epoch_.load(std::memory_order_relaxed);
  for (const auto& [id, state] : streams_) {  // std::map: sorted, stable
    std::lock_guard<std::mutex> pump_lock(shards_[state->shard]->pump_mu);
    writer.PutString(id);
    writer.PutString(state->spec);
    writer.PutU64(state->train_length);
    writer.PutU64(static_cast<std::uint64_t>(state->priority));
    writer.PutString(state->tenant);
    {
      std::lock_guard<std::mutex> queue_lock(shards_[state->shard]->queue_mu);
      writer.PutU64(state->accepted);
    }
    StreamState::Health health;
    Status status, cause;
    {
      std::lock_guard<std::mutex> state_lock(state->mu);
      health = state->health;
      status = state->status;
      cause = state->cause;
    }
    writer.PutU64(static_cast<std::uint64_t>(health));
    writer.PutU64(static_cast<std::uint64_t>(status.code()));
    writer.PutString(status.message());
    writer.PutU64(state->out.size());
    for (const ScoredPoint& p : state->out) {
      writer.PutU64(p.index);
      writer.PutDouble(p.score);
    }
    switch (health) {
      case StreamState::Health::kHealthy: {
        TSAD_ASSIGN_OR_RETURN(std::string blob, state->detector->Snapshot());
        writer.PutString(blob);
        break;
      }
      case StreamState::Health::kCold:
        // Serialized without thawing: the cold blob IS the state.
        writer.PutString(state->cold_blob);
        break;
      case StreamState::Health::kQuarantined: {
        writer.PutString(state->checkpoint_blob);
        writer.PutU64(state->checkpoint_out);
        writer.PutU64(state->pending.size());
        for (double v : state->pending) writer.PutDouble(v);
        writer.PutU64(static_cast<std::uint64_t>(
            state->retries.load(std::memory_order_relaxed)));
        // Backoff survives as "pumps still to wait", since the restored
        // engine's pump epoch restarts from zero.
        const std::uint64_t remaining =
            state->next_retry_pump > epoch ? state->next_retry_pump - epoch
                                           : 0;
        writer.PutU64(remaining);
        writer.PutU64(static_cast<std::uint64_t>(cause.code()));
        writer.PutString(cause.message());
        break;
      }
      case StreamState::Health::kFailed:
        break;  // sticky status above is the whole state
    }
  }
  return writer.Take();
}

Status ShardedEngine::Restore(std::string_view blob) {
  {
    std::lock_guard<std::mutex> lock(registry_mu_);
    if (!streams_.empty()) {
      return Status::FailedPrecondition(
          "Restore requires an engine with no streams (have " +
          std::to_string(streams_.size()) + ")");
    }
  }
  ByteReader reader(blob);
  std::string magic;
  TSAD_RETURN_IF_ERROR(reader.GetString(&magic));
  if (magic != kSnapshotMagic) {
    return Status::InvalidArgument("not a serving-engine snapshot");
  }
  std::uint64_t count;
  TSAD_RETURN_IF_ERROR(reader.GetU64(&count));
  const std::uint64_t epoch = pump_epoch_.load(std::memory_order_relaxed);
  std::map<std::string, std::shared_ptr<StreamState>> restored;
  std::uint64_t restored_cold_bytes = 0;
  for (std::uint64_t s = 0; s < count; ++s) {
    auto state = std::make_shared<StreamState>();
    TSAD_RETURN_IF_ERROR(reader.GetString(&state->id));
    TSAD_RETURN_IF_ERROR(reader.GetString(&state->spec));
    std::uint64_t train_length, priority, accepted, health_raw, code,
        out_count;
    TSAD_RETURN_IF_ERROR(reader.GetU64(&train_length));
    TSAD_RETURN_IF_ERROR(reader.GetU64(&priority));
    TSAD_RETURN_IF_ERROR(reader.GetString(&state->tenant));
    TSAD_RETURN_IF_ERROR(reader.GetU64(&accepted));
    TSAD_RETURN_IF_ERROR(reader.GetU64(&health_raw));
    TSAD_RETURN_IF_ERROR(reader.GetU64(&code));
    std::string message;
    TSAD_RETURN_IF_ERROR(reader.GetString(&message));
    TSAD_RETURN_IF_ERROR(reader.GetU64(&out_count));
    if (priority >= static_cast<std::uint64_t>(kNumStreamPriorities)) {
      return Status::InvalidArgument("snapshot has invalid priority class");
    }
    if (health_raw > static_cast<std::uint64_t>(
                         StreamState::Health::kFailed)) {
      return Status::InvalidArgument("snapshot has invalid stream health");
    }
    state->train_length = static_cast<std::size_t>(train_length);
    state->priority = static_cast<StreamPriority>(priority);
    state->accepted = static_cast<std::size_t>(accepted);
    const auto health = static_cast<StreamState::Health>(health_raw);
    state->health = health;
    state->status = Status(static_cast<StatusCode>(code), std::move(message));
    state->out.reserve(static_cast<std::size_t>(out_count));
    for (std::uint64_t i = 0; i < out_count; ++i) {
      ScoredPoint p;
      std::uint64_t index;
      TSAD_RETURN_IF_ERROR(reader.GetU64(&index));
      TSAD_RETURN_IF_ERROR(reader.GetDouble(&p.score));
      p.index = static_cast<std::size_t>(index);
      state->out.push_back(p);
    }
    switch (health) {
      case StreamState::Health::kHealthy: {
        std::string detector_blob;
        TSAD_RETURN_IF_ERROR(reader.GetString(&detector_blob));
        TSAD_ASSIGN_OR_RETURN(
            state->detector,
            BuildDetector(state->spec, state->train_length, state->id));
        TSAD_RETURN_IF_ERROR(state->detector->Restore(detector_blob));
        state->checkpoint_blob = std::move(detector_blob);
        state->checkpoint_out = state->out.size();
        state->footprint.store(state->detector->MemoryFootprint(),
                               std::memory_order_relaxed);
        break;
      }
      case StreamState::Health::kCold:
        TSAD_RETURN_IF_ERROR(reader.GetString(&state->cold_blob));
        restored_cold_bytes += state->cold_blob.size();
        break;
      case StreamState::Health::kQuarantined: {
        TSAD_RETURN_IF_ERROR(reader.GetString(&state->checkpoint_blob));
        std::uint64_t checkpoint_out, pending_count, retries, remaining,
            cause_code;
        TSAD_RETURN_IF_ERROR(reader.GetU64(&checkpoint_out));
        TSAD_RETURN_IF_ERROR(reader.GetU64(&pending_count));
        state->checkpoint_out = static_cast<std::size_t>(checkpoint_out);
        state->pending.reserve(static_cast<std::size_t>(pending_count));
        for (std::uint64_t i = 0; i < pending_count; ++i) {
          double v;
          TSAD_RETURN_IF_ERROR(reader.GetDouble(&v));
          state->pending.push_back(v);
        }
        TSAD_RETURN_IF_ERROR(reader.GetU64(&retries));
        TSAD_RETURN_IF_ERROR(reader.GetU64(&remaining));
        TSAD_RETURN_IF_ERROR(reader.GetU64(&cause_code));
        std::string cause_message;
        TSAD_RETURN_IF_ERROR(reader.GetString(&cause_message));
        state->retries.store(static_cast<int>(retries),
                             std::memory_order_relaxed);
        state->next_retry_pump = epoch + remaining;
        state->cause = Status(static_cast<StatusCode>(cause_code),
                              std::move(cause_message));
        break;
      }
      case StreamState::Health::kFailed:
        break;
    }
    state->shard = ShardOf(state->id);  // re-placed under the new config
    if (!restored.emplace(state->id, std::move(state)).second) {
      return Status::InvalidArgument("snapshot contains duplicate stream id");
    }
  }
  TSAD_RETURN_IF_ERROR(reader.ExpectDone());
  std::lock_guard<std::mutex> lock(registry_mu_);
  if (!streams_.empty()) {
    return Status::FailedPrecondition("streams added during Restore");
  }
  for (auto& [id, state] : restored) {
    state->tenant_in_flight = TenantCounter(state->tenant);
  }
  streams_ = std::move(restored);
  cold_bytes_.fetch_add(restored_cold_bytes, std::memory_order_relaxed);
  return Status::OK();
}

std::string DetectorTypeKey(const std::string& spec) {
  const std::size_t colon = spec.find(':');
  std::string key = spec.substr(0, colon);
  if (key == "resilient" && colon != std::string::npos) {
    const std::size_t inner_end = spec.find(':', colon + 1);
    key += ':' + spec.substr(colon + 1, inner_end - colon - 1);
  }
  return key;
}

ServingStats ShardedEngine::stats() const {
  ServingStats out;
  out.points_in = points_in_.load(std::memory_order_relaxed);
  out.points_scored = points_scored_.load(std::memory_order_relaxed);
  out.points_shed = points_shed_.load(std::memory_order_relaxed);
  out.points_denied = points_denied_.load(std::memory_order_relaxed);
  out.points_dropped = points_dropped_.load(std::memory_order_relaxed);
  out.quarantines = quarantines_.load(std::memory_order_relaxed);
  out.recoveries = recoveries_.load(std::memory_order_relaxed);
  out.recovery_failures = recovery_failures_.load(std::memory_order_relaxed);
  out.cold_evictions = cold_evictions_.load(std::memory_order_relaxed);
  out.thaws = thaws_.load(std::memory_order_relaxed);
  out.memory_bytes = memory_bytes_.load(std::memory_order_relaxed);
  out.cold_bytes = cold_bytes_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(registry_mu_);
    for (const auto& [id, state] : streams_) {
      switch (state->GetHealth()) {
        case StreamState::Health::kCold:
          ++out.streams_cold;
          break;
        case StreamState::Health::kQuarantined:
          ++out.streams_quarantined;
          break;
        default:
          break;
      }
      DetectorTypeStats& type = out.detector_memory[DetectorTypeKey(state->spec)];
      ++type.streams;
      type.bytes += state->footprint.load(std::memory_order_relaxed);
    }
  }
  std::lock_guard<std::mutex> lock(stats_mu_);
  out.pumps = pumps_;
  out.pump.count = pumps_;
  out.pump.mean_seconds = pumps_ > 0 ? pump_total_seconds_ /
                                           static_cast<double>(pumps_)
                                     : 0.0;
  out.pump.max_seconds = pump_max_seconds_;
  // Unroll the ring oldest-first: [pos, end) then [0, pos) once full.
  out.pump.recent.reserve(pump_ring_.size());
  if (pump_ring_.size() < PumpLatencyStats::kWindow) {
    out.pump.recent = pump_ring_;
  } else {
    out.pump.recent.insert(out.pump.recent.end(),
                           pump_ring_.begin() +
                               static_cast<std::ptrdiff_t>(pump_ring_pos_),
                           pump_ring_.end());
    out.pump.recent.insert(out.pump.recent.end(), pump_ring_.begin(),
                           pump_ring_.begin() +
                               static_cast<std::ptrdiff_t>(pump_ring_pos_));
  }
  if (!out.pump.recent.empty()) {
    std::vector<double> sorted = out.pump.recent;
    std::sort(sorted.begin(), sorted.end());
    const std::size_t rank = static_cast<std::size_t>(
        0.99 * static_cast<double>(sorted.size() - 1));
    out.pump.p99_seconds = sorted[rank];
  }
  return out;
}

std::size_t ShardedEngine::num_streams() const {
  std::lock_guard<std::mutex> lock(registry_mu_);
  return streams_.size();
}

}  // namespace tsad
