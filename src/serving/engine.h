// Multi-stream serving engine: hash-sharded online scoring on top of
// the common/parallel.h pool.
//
// Topology. Every stream id is FNV-1a-hashed onto one of N shards; a
// shard owns a bounded FIFO queue of (stream, value) items and a drain
// lock. Producers enqueue under the queue lock only (cheap); Pump()
// runs one drain per shard across the thread pool. Because a stream
// lives on exactly one shard and a shard is drained by at most one
// thread at a time, detector state needs no locking of its own, and
// per-stream score order is FIFO regardless of thread count — which is
// what makes engine replay bit-identical at --threads 1 and 8.
//
// Survival: the degradation ladder. Overload and faults walk the
// engine down a policy-driven ladder instead of a binary shed/fail
// (full rationale and invariants in DESIGN.md §8):
//
//   1. ADMIT  — an AdmissionPolicy (serving/admission.h) may deny a
//      Push before it queues: per-stream priority classes keep queue
//      headroom for important streams, per-tenant quotas contain noisy
//      tenants. Denial is kResourceExhausted; the stream stays healthy.
//   2. SHED   — a full queue either sheds the point (kShed) or drains
//      the shard inline on the producer (kBlock), exactly as before.
//   3. EVICT  — when the rolled-up OnlineDetector::MemoryFootprint()
//      exceeds memory_budget_bytes, the least-recently-active streams
//      of the lowest priority class are cold-evicted: detector state is
//      snapshotted into an in-memory cold store and freed, and the
//      stream is thawed transparently (byte-exact restore) when its
//      next point is drained. kCritical streams are never evicted.
//   4. QUARANTINE — with recovery enabled, a stream whose detector
//      errors is quarantined instead of failed: its scores roll back
//      to the last good checkpoint and arriving points buffer.
//   5. RECOVER — after a backoff (measured in pumps, so tests are
//      deterministic) the stream is rebuilt from its checkpoint and
//      the buffered points are replayed. A transient fault therefore
//      loses NOTHING: the recovered stream's final scores are still
//      byte-identical to the batch detector. Retries are bounded;
//      exhausting them fails the stream with the classic sticky error.
//
// Failure containment (recovery disabled, the default). A stream whose
// detector errors — including a per-stream deadline expiring mid-drain
// (kDeadlineExceeded) — gets a STICKY error status: its remaining
// queued items are dropped, later Push()es are rejected with the same
// status, and FinishStream() surfaces it. Other streams, including
// those on the same shard, are untouched.

#ifndef TSAD_SERVING_ENGINE_H_
#define TSAD_SERVING_ENGINE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "serving/admission.h"
#include "serving/online_detector.h"

namespace tsad {

/// What Push() does when the target shard's queue is full.
enum class OverflowPolicy {
  kShed,   // reject the point with kResourceExhausted
  kBlock,  // drain the shard on the calling thread, then enqueue
};

/// Quarantine-and-recover tuning. Disabled by default: max_retries == 0
/// preserves the original sticky-error semantics.
struct RecoveryConfig {
  /// Recovery attempts before a quarantined stream fails for good.
  int max_retries = 0;
  /// Pumps to wait before the first recovery attempt; doubles after
  /// each failed attempt (1, 2, 4, ...). Pump-counted, not wall-clock,
  /// so recovery schedules are deterministic under test.
  std::uint64_t backoff_pumps = 1;
};

struct ServingConfig {
  /// Number of shards; 0 means "use ParallelThreads()".
  std::size_t num_shards = 0;
  /// Per-shard queue capacity (items).
  std::size_t queue_capacity = 1024;
  OverflowPolicy overflow = OverflowPolicy::kShed;
  /// Per-stream time budget for one drain pass; 0 disables. Installed
  /// as a DeadlineScope around each stream's batch of queued points, so
  /// detectors that poll CheckDeadline() are also covered. Recovery
  /// replays run under the same budget.
  std::chrono::nanoseconds stream_deadline{0};

  /// Admission policy consulted before each Push enqueues; null admits
  /// everything. Shared because ServingConfig is copied; the policy is
  /// called concurrently and must be thread-safe.
  std::shared_ptr<AdmissionPolicy> admission;

  /// Engine-wide budget for live detector memory (rolled up from
  /// OnlineDetector::MemoryFootprint()); 0 = unlimited. Enforced at the
  /// end of every Pump by cold-evicting streams, lowest priority and
  /// longest-idle first (never kCritical, never quarantined/failed
  /// streams, never streams with queued points).
  std::size_t memory_budget_bytes = 0;

  /// Quarantine-and-recover behavior for detector errors.
  RecoveryConfig recovery;

  /// Test seam: wraps every detector the engine builds (at AddStream,
  /// Restore, thaw, and recovery rebuild) — the chaos harness injects
  /// faulting decorators here. Must be thread-safe; null disables.
  std::function<Result<std::unique_ptr<OnlineDetector>>(
      std::unique_ptr<OnlineDetector>, const std::string& stream_id)>
      detector_decorator;
};

/// Per-stream registration options.
struct StreamOptions {
  StreamPriority priority = StreamPriority::kNormal;
  /// Tenant for quota accounting; "" is the shared default tenant.
  std::string tenant;
  /// Anomaly-free training prefix length (same as the batch detectors).
  std::size_t train_length = 0;
};

/// Bounded pump-latency summary. Mean/max are exact over the engine's
/// lifetime; p99 and `recent` cover the last kWindow pumps — a
/// long-lived engine holds O(1) stats memory, not one double per Pump.
struct PumpLatencyStats {
  static constexpr std::size_t kWindow = 256;

  std::uint64_t count = 0;
  double mean_seconds = 0.0;   // running mean, all pumps
  double max_seconds = 0.0;    // running max, all pumps
  double p99_seconds = 0.0;    // 99th percentile of the retained window
  std::vector<double> recent;  // last <= kWindow pump durations, oldest
                               // first
};

/// Per-detector-type rollup of live stream state, keyed by
/// DetectorTypeKey(spec). `bytes` sums MemoryFootprint() over the
/// type's LIVE detectors (cold/quarantined/failed streams hold no live
/// detector and contribute 0), so bytes / streams understates the
/// per-stream cost when streams are cold — read it next to
/// streams_cold.
struct DetectorTypeStats {
  std::uint64_t streams = 0;  // registered streams of this type
  std::uint64_t bytes = 0;    // live detector footprint, summed
};

/// The memory-accounting key of a detector spec: the registry name up
/// to the first ':' — except `resilient:`, which keeps its inner
/// detector name too ("resilient:zscore:w=32" -> "resilient:zscore"),
/// because the wrapper's footprint is dominated by what it wraps.
std::string DetectorTypeKey(const std::string& spec);

/// Engine-wide counters; obtained via stats() (a consistent copy).
struct ServingStats {
  std::uint64_t points_in = 0;      // accepted into a queue
  std::uint64_t points_scored = 0;  // ScoredPoints emitted by detectors
  std::uint64_t points_shed = 0;    // rejected by kShed backpressure
  std::uint64_t points_denied = 0;  // rejected by the admission policy
  std::uint64_t points_dropped = 0; // discarded after a sticky error
  std::uint64_t pumps = 0;
  PumpLatencyStats pump;

  // Degradation-ladder telemetry.
  std::uint64_t quarantines = 0;         // streams entering quarantine
  std::uint64_t recoveries = 0;          // successful recoveries
  std::uint64_t recovery_failures = 0;   // failed recovery attempts
  std::uint64_t cold_evictions = 0;      // streams moved to cold store
  std::uint64_t thaws = 0;               // cold streams restored
  std::uint64_t streams_cold = 0;        // currently cold
  std::uint64_t streams_quarantined = 0; // currently quarantined
  std::uint64_t memory_bytes = 0;  // live detector footprint after the
                                   // last budget enforcement
  std::uint64_t cold_bytes = 0;    // bytes held by cold snapshots

  /// Live detector footprint broken down by detector type (the
  /// `tsad serve` memory line and the serving bench JSON read this).
  std::map<std::string, DetectorTypeStats> detector_memory;
};

class ShardedEngine {
 public:
  explicit ShardedEngine(ServingConfig config = {});
  ~ShardedEngine();

  ShardedEngine(const ShardedEngine&) = delete;
  ShardedEngine& operator=(const ShardedEngine&) = delete;

  /// Registers a stream. The detector is built immediately (errors —
  /// unknown spec, no online adapter, missing training prefix — surface
  /// here, not at Push time). AlreadyExists is reported as
  /// InvalidArgument.
  Status AddStream(const std::string& id, const std::string& detector_spec,
                   StreamOptions options);
  Status AddStream(const std::string& id, const std::string& detector_spec,
                   std::size_t train_length = 0) {
    StreamOptions options;
    options.train_length = train_length;
    return AddStream(id, detector_spec, std::move(options));
  }

  /// Enqueues one point. Thread-safe; concurrent producers are fine.
  /// Quarantined and cold streams accept points transparently; only a
  /// permanently failed stream rejects with its sticky status.
  Status Push(const std::string& id, double value);

  /// Drains every shard queue once, in parallel across the pool, then
  /// enforces the memory budget. Stream-level failures do not fail the
  /// pump; they quarantine or stick to their stream.
  Status Pump();

  /// Pumps, forces any pending recovery (ignoring backoff — the stream
  /// is ending), thaws if cold, flushes the stream's detector, removes
  /// the stream and returns its dense score vector (one score per
  /// accepted point) — byte-identical to the batch detector run over
  /// the same values. Returns the sticky error if the stream failed.
  Result<std::vector<double>> FinishStream(const std::string& id);

  /// The stream's sticky status (OK while healthy or cold; a
  /// quarantined stream reports its pending failure, annotated).
  Status StreamStatus(const std::string& id) const;

  /// Serializes every stream (after a Pump) for engine-wide failover.
  /// Cold streams serialize their cold snapshot without thawing;
  /// quarantined streams carry their checkpoint and buffered points so
  /// the restored engine continues the recovery.
  Result<std::string> Snapshot();

  /// Rebuilds streams from a Snapshot() blob. The engine must have no
  /// streams; the restored engine continues every stream with
  /// bit-identical scores (shard count may differ — placement is
  /// recomputed from the id hash).
  Status Restore(std::string_view blob);

  ServingStats stats() const;
  std::size_t num_shards() const { return shards_.size(); }
  std::size_t num_streams() const;

 private:
  struct StreamState;
  struct Shard;

  std::size_t ShardOf(const std::string& id) const;
  void DrainShard(std::size_t shard_index);
  Result<std::shared_ptr<StreamState>> FindStream(const std::string& id) const;
  Result<std::unique_ptr<OnlineDetector>> BuildDetector(
      const std::string& spec, std::size_t train_length,
      const std::string& id) const;

  // All four run with the owning shard's pump lock held.
  void ProcessGroup(StreamState* state, const std::vector<double>& values);
  void EnterQuarantine(StreamState* state, const Status& cause,
                       const std::vector<double>& values);
  void AttemptRecovery(StreamState* state, bool force);
  Status ThawStream(StreamState* state);

  void FailStream(StreamState* state, const Status& cause);
  void EnforceMemoryBudget();
  std::shared_ptr<std::atomic<std::uint64_t>> TenantCounter(
      const std::string& tenant);

  ServingConfig config_;
  std::vector<std::unique_ptr<Shard>> shards_;

  mutable std::mutex registry_mu_;
  std::map<std::string, std::shared_ptr<StreamState>> streams_;
  std::map<std::string, std::shared_ptr<std::atomic<std::uint64_t>>>
      tenants_;  // in-flight points per tenant

  std::atomic<std::uint64_t> pump_epoch_{0};  // completed Pump() calls

  std::atomic<std::uint64_t> points_in_{0};
  std::atomic<std::uint64_t> points_scored_{0};
  std::atomic<std::uint64_t> points_shed_{0};
  std::atomic<std::uint64_t> points_denied_{0};
  std::atomic<std::uint64_t> points_dropped_{0};
  std::atomic<std::uint64_t> quarantines_{0};
  std::atomic<std::uint64_t> recoveries_{0};
  std::atomic<std::uint64_t> recovery_failures_{0};
  std::atomic<std::uint64_t> cold_evictions_{0};
  std::atomic<std::uint64_t> thaws_{0};
  std::atomic<std::uint64_t> memory_bytes_{0};
  std::atomic<std::uint64_t> cold_bytes_{0};

  mutable std::mutex stats_mu_;
  std::uint64_t pumps_ = 0;
  double pump_total_seconds_ = 0.0;
  double pump_max_seconds_ = 0.0;
  std::vector<double> pump_ring_;  // last <= PumpLatencyStats::kWindow
  std::size_t pump_ring_pos_ = 0;  // next slot to overwrite
};

}  // namespace tsad

#endif  // TSAD_SERVING_ENGINE_H_
