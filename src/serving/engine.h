// Multi-stream serving engine: hash-sharded online scoring on top of
// the common/parallel.h pool.
//
// Topology. Every stream id is FNV-1a-hashed onto one of N shards; a
// shard owns a bounded FIFO queue of (stream, value) items and a drain
// lock. Producers enqueue under the queue lock only (cheap); Pump()
// runs one drain per shard across the thread pool. Because a stream
// lives on exactly one shard and a shard is drained by at most one
// thread at a time, detector state needs no locking of its own, and
// per-stream score order is FIFO regardless of thread count — which is
// what makes engine replay bit-identical at --threads 1 and 8.
//
// Backpressure. A full queue either sheds the point (kShed: Push
// returns kResourceExhausted, the stream stays healthy, the point is
// counted in stats().points_shed) or drains the shard inline on the
// producer (kBlock: Push never fails, producers pay the latency).
//
// Failure containment. A stream whose detector errors — including a
// per-stream deadline expiring mid-drain (kDeadlineExceeded) — gets a
// STICKY error status: its remaining queued items are dropped, later
// Push()es are rejected with the same status, and FinishStream()
// surfaces it. Other streams, including those on the same shard, are
// untouched.

#ifndef TSAD_SERVING_ENGINE_H_
#define TSAD_SERVING_ENGINE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "serving/online_detector.h"

namespace tsad {

/// What Push() does when the target shard's queue is full.
enum class OverflowPolicy {
  kShed,   // reject the point with kResourceExhausted
  kBlock,  // drain the shard on the calling thread, then enqueue
};

struct ServingConfig {
  /// Number of shards; 0 means "use ParallelThreads()".
  std::size_t num_shards = 0;
  /// Per-shard queue capacity (items).
  std::size_t queue_capacity = 1024;
  OverflowPolicy overflow = OverflowPolicy::kShed;
  /// Per-stream time budget for one drain pass; 0 disables. Installed
  /// as a DeadlineScope around each stream's batch of queued points, so
  /// detectors that poll CheckDeadline() are also covered.
  std::chrono::nanoseconds stream_deadline{0};
};

/// Engine-wide counters; obtained via stats() (a consistent copy).
struct ServingStats {
  std::uint64_t points_in = 0;      // accepted into a queue
  std::uint64_t points_scored = 0;  // ScoredPoints emitted by detectors
  std::uint64_t points_shed = 0;    // rejected by kShed backpressure
  std::uint64_t points_dropped = 0; // discarded after a sticky error
  std::uint64_t pumps = 0;
  std::vector<double> pump_seconds; // wall time of each Pump()
};

class ShardedEngine {
 public:
  explicit ShardedEngine(ServingConfig config = {});
  ~ShardedEngine();

  ShardedEngine(const ShardedEngine&) = delete;
  ShardedEngine& operator=(const ShardedEngine&) = delete;

  /// Registers a stream. The detector is built immediately (errors —
  /// unknown spec, no online adapter, missing training prefix — surface
  /// here, not at Push time). AlreadyExists is reported as
  /// InvalidArgument.
  Status AddStream(const std::string& id, const std::string& detector_spec,
                   std::size_t train_length = 0);

  /// Enqueues one point. Thread-safe; concurrent producers are fine.
  Status Push(const std::string& id, double value);

  /// Drains every shard queue once, in parallel across the pool.
  /// Stream-level failures do not fail the pump; they stick to their
  /// stream.
  Status Pump();

  /// Pumps, flushes the stream's detector, removes the stream and
  /// returns its dense score vector (one score per accepted point) —
  /// byte-identical to the batch detector run over the same values.
  /// Returns the sticky error if the stream failed earlier.
  Result<std::vector<double>> FinishStream(const std::string& id);

  /// The stream's sticky status (OK while healthy).
  Status StreamStatus(const std::string& id) const;

  /// Serializes every stream (after a Pump) for engine-wide failover.
  Result<std::string> Snapshot();

  /// Rebuilds streams from a Snapshot() blob. The engine must have no
  /// streams; the restored engine continues every stream with
  /// bit-identical scores (shard count may differ — placement is
  /// recomputed from the id hash).
  Status Restore(std::string_view blob);

  ServingStats stats() const;
  std::size_t num_shards() const { return shards_.size(); }
  std::size_t num_streams() const;

 private:
  struct StreamState;
  struct Shard;

  std::size_t ShardOf(const std::string& id) const;
  void DrainShard(std::size_t shard_index);
  Result<std::shared_ptr<StreamState>> FindStream(const std::string& id) const;

  ServingConfig config_;
  std::vector<std::unique_ptr<Shard>> shards_;

  mutable std::mutex registry_mu_;
  std::map<std::string, std::shared_ptr<StreamState>> streams_;

  std::atomic<std::uint64_t> points_in_{0};
  std::atomic<std::uint64_t> points_scored_{0};
  std::atomic<std::uint64_t> points_shed_{0};
  std::atomic<std::uint64_t> points_dropped_{0};
  mutable std::mutex stats_mu_;
  std::uint64_t pumps_ = 0;
  std::vector<double> pump_seconds_;
};

}  // namespace tsad

#endif  // TSAD_SERVING_ENGINE_H_
