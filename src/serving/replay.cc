#include "serving/replay.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <memory>
#include <vector>

#include "detectors/registry.h"

namespace tsad {

namespace {

std::string StreamId(std::size_t i) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "stream-%04zu", i);
  return buf;
}

// Bitwise equality — NaN == NaN, +0 != -0. The serving contract is
// "the same bytes", not "numerically close".
bool BitIdentical(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.size() != b.size()) return false;
  return a.empty() ||
         std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

}  // namespace

Result<ReplayReport> ReplayThroughEngine(const Series& series,
                                         const ReplayOptions& options) {
  if (series.empty()) return Status::InvalidArgument("empty replay series");
  if (options.num_streams == 0) {
    return Status::InvalidArgument("need at least one stream");
  }
  const std::size_t batch = std::max<std::size_t>(1, options.batch);

  ServingConfig config = options.engine;
  // One micro-batch from every stream must fit, or replay would shed
  // its own input.
  config.queue_capacity =
      std::max(config.queue_capacity, options.num_streams * batch);
  ShardedEngine engine(config);
  for (std::size_t s = 0; s < options.num_streams; ++s) {
    StreamOptions stream;
    stream.priority = options.priority;
    stream.train_length = options.train_length;
    TSAD_RETURN_IF_ERROR(
        engine.AddStream(StreamId(s), options.detector_spec, stream));
  }

  const auto start = std::chrono::steady_clock::now();
  for (std::size_t t0 = 0; t0 < series.size(); t0 += batch) {
    const std::size_t t1 = std::min(series.size(), t0 + batch);
    for (std::size_t s = 0; s < options.num_streams; ++s) {
      const std::string id = StreamId(s);
      for (std::size_t t = t0; t < t1; ++t) {
        TSAD_RETURN_IF_ERROR(engine.Push(id, series[t]));
      }
    }
    TSAD_RETURN_IF_ERROR(engine.Pump());
  }

  // Per-type footprints must be sampled while the detectors are still
  // alive; FinishStream tears them down.
  std::map<std::string, DetectorTypeStats> detector_memory =
      engine.stats().detector_memory;

  std::vector<std::vector<double>> results;
  results.reserve(options.num_streams);
  for (std::size_t s = 0; s < options.num_streams; ++s) {
    TSAD_ASSIGN_OR_RETURN(std::vector<double> scores,
                          engine.FinishStream(StreamId(s)));
    results.push_back(std::move(scores));
  }
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  ReplayReport report;
  report.streams = options.num_streams;
  report.points = options.num_streams * series.size();
  report.seconds = seconds;
  report.points_per_sec =
      seconds > 0.0 ? static_cast<double>(report.points) / seconds : 0.0;

  ServingStats stats = engine.stats();
  report.shed = stats.points_shed;
  report.denied = stats.points_denied;
  report.cold_evictions = stats.cold_evictions;
  report.thaws = stats.thaws;
  report.quarantines = stats.quarantines;
  report.recoveries = stats.recoveries;
  report.p99_pump_seconds = stats.pump.p99_seconds;
  report.detector_memory = std::move(detector_memory);

  if (options.verify_against_batch) {
    TSAD_ASSIGN_OR_RETURN(std::unique_ptr<AnomalyDetector> batch_detector,
                          MakeDetector(options.detector_spec));
    TSAD_ASSIGN_OR_RETURN(
        std::vector<double> expected,
        batch_detector->Score(series, options.train_length));
    report.verified = true;
    for (const std::vector<double>& scores : results) {
      if (!BitIdentical(scores, expected)) {
        report.verified = false;
        break;
      }
    }
  }
  return report;
}

}  // namespace tsad
