#include "serving/online_detector.h"

namespace tsad {

Result<std::vector<double>> AssembleScores(
    const std::vector<ScoredPoint>& points, std::size_t n,
    std::string_view stream) {
  std::vector<double> scores(n, 0.0);
  std::vector<bool> seen(n, false);
  for (const ScoredPoint& p : points) {
    if (p.index >= n) {
      return Status::Internal("stream '" + std::string(stream) +
                              "': emitted index " + std::to_string(p.index) +
                              " out of range [0, " + std::to_string(n) + ")");
    }
    if (seen[p.index]) {
      return Status::Internal("stream '" + std::string(stream) +
                              "': index " + std::to_string(p.index) +
                              " emitted twice");
    }
    seen[p.index] = true;
    scores[p.index] = p.score;
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (!seen[i]) {
      return Status::Internal("stream '" + std::string(stream) +
                              "': index " + std::to_string(i) +
                              " never emitted");
    }
  }
  return scores;
}

Result<std::vector<double>> ReplayScore(OnlineDetector& detector,
                                        const Series& series) {
  std::vector<ScoredPoint> points;
  points.reserve(series.size());
  for (double value : series) {
    TSAD_RETURN_IF_ERROR(detector.Observe(value, &points));
  }
  TSAD_RETURN_IF_ERROR(detector.Flush(&points));
  return AssembleScores(points, series.size(), detector.name());
}

}  // namespace tsad
