// The incremental detector interface behind the serving engine.
//
// An OnlineDetector consumes a stream one value at a time and emits
// scores under a strict replay contract: feeding it the points of a
// series in order and concatenating everything it emits reproduces the
// batch AnomalyDetector::Score() output for that series BYTE FOR BYTE —
// same doubles, same bits, including after a Snapshot()/Restore() pair
// anywhere mid-stream. tests/serving/online_adapters_test.cc enforces
// this for every adapter.
//
// Scores are emitted as (index, score) pairs rather than a plain value
// per Observe() because batch semantics are not always one-in-one-out:
//
//  * reference-statistics detectors (CUSUM, EWMA, Page-Hinkley) cannot
//    score anything until the training prefix completes, then emit the
//    whole buffered prefix at once;
//  * the one-liner family uses centered moving windows (margin at t
//    needs a few future points) and pads index 0 with the GLOBAL
//    minimum margin, so index 0 is only known at Flush();
//  * streaming discord emits nothing while the first subsequence fills.
//
// The protocol: across all Observe() calls plus the final Flush(),
// every index in [0, observed()) is emitted exactly once. Emission is
// in increasing index order with the single documented exception of the
// one-liner's index 0 at Flush(). ReplayScore() assembles and checks
// the dense vector.

#ifndef TSAD_SERVING_ONLINE_DETECTOR_H_
#define TSAD_SERVING_ONLINE_DETECTOR_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "common/series.h"
#include "common/status.h"

namespace tsad {

/// One emitted score: `index` is the 0-based position in the stream.
struct ScoredPoint {
  std::size_t index = 0;
  double score = 0.0;

  friend bool operator==(const ScoredPoint& a, const ScoredPoint& b) {
    return a.index == b.index && a.score == b.score;
  }
};

/// Incremental anomaly detector. Not thread-safe; the serving engine
/// serializes all access to an instance.
class OnlineDetector {
 public:
  virtual ~OnlineDetector() = default;

  /// Stable name, "online:" + the batch detector's name.
  virtual std::string_view name() const = 0;

  /// Consumes the next point, APPENDING any scores that became final to
  /// `out` (which is not cleared). Once an error is returned the
  /// detector is in an unspecified state and must be discarded or
  /// Restore()d.
  virtual Status Observe(double value, std::vector<ScoredPoint>* out) = 0;

  /// Declares end-of-stream, appending every not-yet-emitted score.
  /// Returns the batch path's error when the stream is too short for
  /// the detector (e.g. streaming discord with fewer than m+1 points).
  virtual Status Flush(std::vector<ScoredPoint>* out) = 0;

  /// Serializes the full detector state. Restoring the blob into a
  /// fresh instance built from the same spec continues the stream with
  /// bit-identical emissions.
  virtual Result<std::string> Snapshot() const = 0;
  virtual Status Restore(std::string_view blob) = 0;

  /// Approximate bytes of memory this detector holds (object plus heap
  /// buffers, counted at capacity). The serving engine rolls these up
  /// against its engine-wide memory budget and cold-evicts streams when
  /// the total exceeds it; an adapter that under-reports starves the
  /// budget silently, so adapters account for every growable buffer.
  virtual std::size_t MemoryFootprint() const { return sizeof(*this); }

  /// Points consumed so far.
  std::size_t observed() const { return observed_; }

 protected:
  std::size_t observed_ = 0;
};

/// Replays `series` through `detector` (Observe each point, then
/// Flush) and assembles the dense score vector, enforcing the
/// exactly-once emission protocol: any missing, duplicate or
/// out-of-range index is an Internal error.
Result<std::vector<double>> ReplayScore(OnlineDetector& detector,
                                        const Series& series);

/// The assembly step of ReplayScore, shared with the serving engine:
/// scatters `points` into a dense vector of length `n`, enforcing the
/// exactly-once protocol. `stream` labels error messages.
Result<std::vector<double>> AssembleScores(
    const std::vector<ScoredPoint>& points, std::size_t n,
    std::string_view stream);

}  // namespace tsad

#endif  // TSAD_SERVING_ONLINE_DETECTOR_H_
