// Replay harness: fans one recorded series out to N engine streams,
// pushes it through the ShardedEngine in micro-batches, and verifies
// the engine's output against the batch detector byte for byte. This is
// both the correctness gate (`tsad serve --replay`) and the serving
// benchmark driver (bench/perf_serving.cc).

#ifndef TSAD_SERVING_REPLAY_H_
#define TSAD_SERVING_REPLAY_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>

#include "common/series.h"
#include "common/status.h"
#include "serving/engine.h"

namespace tsad {

struct ReplayOptions {
  /// Identical streams to fan the series out to (ids "stream-0000"...).
  std::size_t num_streams = 4;
  std::string detector_spec = "zscore:w=64";
  std::size_t train_length = 0;
  /// Priority class every replay stream registers with (exercises the
  /// admission and eviction ladder when the engine config enables them).
  StreamPriority priority = StreamPriority::kNormal;
  /// Points pushed per stream between Pump() calls.
  std::size_t batch = 256;
  /// Bitwise-compare every stream's scores against the batch detector.
  bool verify_against_batch = true;
  /// Engine tuning (admission policy, memory budget and recovery ride
  /// in here). The queue capacity is raised automatically to hold one
  /// micro-batch from every stream, so a default-constructed config
  /// never sheds during replay.
  ServingConfig engine;
};

struct ReplayReport {
  std::size_t streams = 0;
  std::size_t points = 0;        // total points pushed (all streams)
  double seconds = 0.0;          // push + pump + finish wall time
  double points_per_sec = 0.0;
  double p99_pump_seconds = 0.0;
  bool verified = false;         // true when every stream matched batch
  std::uint64_t shed = 0;
  std::uint64_t denied = 0;          // admission rejections
  std::uint64_t cold_evictions = 0;  // memory-budget evictions
  std::uint64_t thaws = 0;
  std::uint64_t quarantines = 0;
  std::uint64_t recoveries = 0;
  /// Per-detector-type live footprint, captured just before the
  /// streams were finished (FinishStream frees detector state, so the
  /// post-run stats would report 0 bytes).
  std::map<std::string, DetectorTypeStats> detector_memory;
};

/// Replays `series` through a fresh engine. Returns an error on engine
/// failures; a verification MISMATCH is reported via `verified = false`
/// (callers decide how loud to be). When `verify_against_batch` is
/// false, `verified` stays false and only throughput is measured.
Result<ReplayReport> ReplayThroughEngine(const Series& series,
                                         const ReplayOptions& options);

}  // namespace tsad

#endif  // TSAD_SERVING_REPLAY_H_
