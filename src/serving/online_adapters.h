// Online adapters: one OnlineDetector per batch detector whose math is
// causal enough to stream. Each adapter replicates its batch Score()
// loop operation for operation — same accumulator widths (long double
// rolling sums), same cast points, same clamps, in the same order — so
// replay is bit-identical, not merely close. See each class comment for
// the specific trick.
//
// Build adapters through MakeOnlineDetector(), which parses the same
// spec grammar as the batch registry and rejects configurations whose
// batch path is NOT causal (e.g. the reference-statistics detectors
// without a training prefix fall back to whole-series median/MAD).

#ifndef TSAD_SERVING_ONLINE_ADAPTERS_H_
#define TSAD_SERVING_ONLINE_ADAPTERS_H_

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "common/wire.h"
#include "detectors/floss.h"
#include "detectors/oneliner.h"
#include "serving/online_detector.h"
#include "substrates/streaming_profile.h"

namespace tsad {

/// Builds the online counterpart of `spec` (batch registry grammar,
/// e.g. "zscore:w=64" or "streaming:m=96"). `train_length` is the
/// anomaly-free prefix length the stream's batch equivalent would be
/// scored with.
///
/// A "resilient:<inner>" spec builds the inner adapter wrapped in
/// OnlineSanitizer — per-point input hardening (see its class comment),
/// the serving-path counterpart of the batch ResilientDetector.
///
///  * NotFound / InvalidArgument: bad spec (same errors as the batch
///    registry, including the "did you mean" hint).
///  * FailedPrecondition: cusum/ewma/pagehinkley with train_length < 8
///    — their batch fallback (whole-series median/MAD) is not causal.
///  * Unimplemented: a valid batch detector with no online adapter.
Result<std::unique_ptr<OnlineDetector>> MakeOnlineDetector(
    const std::string& spec, std::size_t train_length);

/// Spec names MakeOnlineDetector accepts.
std::vector<std::string> OnlineCapableDetectorNames();

/// Trailing moving z-score over a ring buffer of the last `window`
/// points; the rolling long-double sum/square-sum updates mirror the
/// batch slide (`sum += x_new - x_old` with the subtraction in double)
/// exactly. Emits one score per point, 0 for the first `window`.
class OnlineMovingZScore : public OnlineDetector {
 public:
  OnlineMovingZScore(std::string name, std::size_t window, double min_std);

  std::string_view name() const override { return name_; }
  Status Observe(double value, std::vector<ScoredPoint>* out) override;
  Status Flush(std::vector<ScoredPoint>* out) override;
  Result<std::string> Snapshot() const override;
  Status Restore(std::string_view blob) override;
  std::size_t MemoryFootprint() const override {
    return sizeof(*this) + name_.capacity() +
           ring_.capacity() * sizeof(double);
  }

 private:
  std::size_t window_;
  double min_std_;
  std::string name_;
  std::vector<double> ring_;
  long double sum_ = 0.0L;
  long double sq_ = 0.0L;
};

/// Base for the reference-statistics family (CUSUM / EWMA chart /
/// Page-Hinkley): buffers the training prefix, then computes mu/sigma
/// exactly as the batch path does and drains the buffer through the
/// recursion, emitting the whole prefix at once. If the stream ends
/// before the prefix completes, Flush() reproduces the batch fallback
/// (median / scaled MAD over what was seen) — the batch path does the
/// same when train_length > n, so equivalence holds there too.
class ReferenceStatsOnline : public OnlineDetector {
 public:
  std::string_view name() const override { return name_; }
  Status Observe(double value, std::vector<ScoredPoint>* out) override;
  Status Flush(std::vector<ScoredPoint>* out) override;
  Result<std::string> Snapshot() const override;
  Status Restore(std::string_view blob) override;
  std::size_t MemoryFootprint() const override {
    return sizeof(*this) + name_.capacity() +
           buffer_.capacity() * sizeof(double);
  }

 protected:
  ReferenceStatsOnline(std::string name, std::size_t train_length);

  /// Advances the recursion by one point and returns its score.
  virtual double Step(double value) = 0;
  /// Recursion-state codec (reference stats and buffer are handled by
  /// the base).
  virtual void PutState(ByteWriter* writer) const = 0;
  virtual Status GetState(ByteReader* reader) = 0;

  double mu_ = 0.0;
  double sigma_ = 1e-9;

 private:
  void Drain(bool causal, std::vector<ScoredPoint>* out);

  std::string name_;
  std::size_t train_length_;
  bool trained_ = false;
  std::vector<double> buffer_;  // the not-yet-scored prefix
};

/// Two-sided CUSUM (batch recursion: S+/S- with drift and optional
/// reset), reference stats from the training prefix.
class OnlineCusum : public ReferenceStatsOnline {
 public:
  OnlineCusum(std::string name, double drift, double reset_threshold,
              std::size_t train_length);

 protected:
  double Step(double value) override;
  void PutState(ByteWriter* writer) const override;
  Status GetState(ByteReader* reader) override;

 private:
  double drift_;
  double reset_threshold_;
  double s_pos_ = 0.0;
  double s_neg_ = 0.0;
};

/// EWMA control chart with the exact time-dependent standard error
/// (the (1-lambda)^(2i) decay is carried as a running product, exactly
/// like the batch loop).
class OnlineEwmaChart : public ReferenceStatsOnline {
 public:
  OnlineEwmaChart(std::string name, double lambda, std::size_t train_length);

 protected:
  double Step(double value) override;
  void PutState(ByteWriter* writer) const override;
  Status GetState(ByteReader* reader) override;

 private:
  double lambda_;
  double ewma_ = 0.0;
  double decay_ = 1.0;
  bool started_ = false;  // ewma_/decay_ seeded from mu_ on first Step
};

/// Page-Hinkley drift statistic (running cum/min/max).
class OnlinePageHinkley : public ReferenceStatsOnline {
 public:
  OnlinePageHinkley(std::string name, double delta, std::size_t train_length);

 protected:
  double Step(double value) override;
  void PutState(ByteWriter* writer) const override;
  Status GetState(ByteReader* reader) override;

 private:
  double delta_;
  double cum_ = 0.0;
  double cum_min_ = 0.0;
  double cum_max_ = 0.0;
};

/// One-liner margin scores. Margins live in the diff domain with
/// MATLAB-centered moving windows, so the margin at diff index j is
/// final once `(k-1)/2` future points have arrived (emitted with lag),
/// and index 0 of the original series — padded with the GLOBAL minimum
/// margin by the batch path — is emitted at Flush(). The long-double
/// prefix sums over the diff series grow in append order, matching
/// MovMean/MovStd bit for bit.
class OnlineOneLiner : public OnlineDetector {
 public:
  OnlineOneLiner(std::string name, const OneLinerParams& params);

  std::string_view name() const override { return name_; }
  Status Observe(double value, std::vector<ScoredPoint>* out) override;
  Status Flush(std::vector<ScoredPoint>* out) override;
  Result<std::string> Snapshot() const override;
  Status Restore(std::string_view blob) override;
  std::size_t MemoryFootprint() const override {
    return sizeof(*this) + name_.capacity() +
           d_.capacity() * sizeof(double) +
           (sums_.capacity() + sq_.capacity()) * sizeof(long double);
  }

 private:
  double MarginAt(std::size_t j, std::size_t nd) const;
  void EmitReady(std::vector<ScoredPoint>* out);

  std::string name_;
  OneLinerParams params_;
  std::size_t after_;      // future points a centered window needs
  bool need_window_;       // movmean/movstd actually used?
  double prev_ = 0.0;      // last raw value (diff source)
  std::vector<double> d_;  // diff series (after abs, when enabled)
  std::vector<long double> sums_;  // prefix sums over d_, size |d_|+1
  std::vector<long double> sq_;
  std::size_t emitted_ = 0;  // margins emitted so far (diff indices)
  double run_min_ = 0.0;     // running global minimum margin
};

/// Streaming discord: wraps the OnlineLeftProfile kernel (which the
/// batch StreamingDiscordDetector::Score also replays through — the
/// equivalence is by construction, see substrates/streaming_profile.h).
/// Emits one score per point; burn-in and non-finite entries score 0.
class OnlineStreamingDiscord : public OnlineDetector {
 public:
  OnlineStreamingDiscord(std::string name, std::size_t m,
                         std::size_t burn_in);

  std::string_view name() const override { return name_; }
  Status Observe(double value, std::vector<ScoredPoint>* out) override;
  Status Flush(std::vector<ScoredPoint>* out) override;
  Result<std::string> Snapshot() const override;
  Status Restore(std::string_view blob) override;
  std::size_t MemoryFootprint() const override {
    return sizeof(*this) + name_.capacity() + profile_.MemoryBytes();
  }

 private:
  std::string name_;
  std::size_t m_;
  std::size_t burn_in_;
  OnlineLeftProfile profile_;
};

/// FLOSS regime-change scoring: wraps the shared FlossCore (which the
/// batch FlossDetector::Score also replays through — byte-identical by
/// construction). Emits exactly one score per point. Unlike the
/// left-profile adapters, MemoryFootprint() is CONSTANT over the
/// stream's lifetime — the streaming-MPX ring buffer is reserved to
/// its maximum at construction — so a floss stream's serving cost
/// never grows, which is what makes profile-based detectors feasible
/// under the engine's memory budget at fleet scale.
class OnlineFloss : public OnlineDetector {
 public:
  OnlineFloss(std::string name, const FlossParams& params);

  std::string_view name() const override { return name_; }
  Status Observe(double value, std::vector<ScoredPoint>* out) override;
  Status Flush(std::vector<ScoredPoint>* out) override;
  Result<std::string> Snapshot() const override;
  Status Restore(std::string_view blob) override;
  std::size_t MemoryFootprint() const override {
    return sizeof(*this) + name_.capacity() + core_.kernel().MemoryBytes();
  }

 private:
  std::string name_;
  FlossParams params_;
  FlossCore core_;
};

/// MERLIN multi-length discord scoring as a servable stream. MERLIN is
/// acausal — every length's top discord needs the whole series — so
/// this adapter buffers the stream and emits EVERYTHING at Flush():
/// one pan-profile sweep (the same pan-backed MerlinSweep the batch
/// detector runs) over the buffered points, byte-identical to batch by
/// construction. The cost model is explicit: MemoryFootprint() grows
/// linearly with the stream (the buffer is the state), so merlin
/// streams are first in line for the engine's memory-budget eviction —
/// which is fine, because a cold-evicted buffer thaws byte-exactly.
class OnlineMerlin : public OnlineDetector {
 public:
  OnlineMerlin(std::string name, std::size_t min_length,
               std::size_t max_length);

  std::string_view name() const override { return name_; }
  Status Observe(double value, std::vector<ScoredPoint>* out) override;
  Status Flush(std::vector<ScoredPoint>* out) override;
  Result<std::string> Snapshot() const override;
  Status Restore(std::string_view blob) override;
  std::size_t MemoryFootprint() const override {
    return sizeof(*this) + name_.capacity() +
           buffer_.capacity() * sizeof(double);
  }

 private:
  std::string name_;
  std::size_t min_length_;
  std::size_t max_length_;
  std::vector<double> buffer_;  // the whole stream so far
};

/// The serving-path counterpart of the batch `resilient:` decorator:
/// per-point input sanitization in front of any online adapter. Each
/// arriving value that is non-finite or equals the missing-data
/// sentinel is imputed causally (last observation carried forward; 0
/// before the first good point) before the inner adapter sees it.
///
/// Contract: feeding this wrapper a dirty stream is byte-identical to
/// feeding the inner adapter the sanitized stream — true by
/// construction, and what keeps the replay guarantee meaningful for
/// hardened streams. It is NOT byte-identical to the batch
/// ResilientDetector (whose sanitizer sees the whole series and may
/// interpolate through a gap using future points — not causal), which
/// is exactly why the batch decorator cannot be served directly.
class OnlineSanitizer : public OnlineDetector {
 public:
  OnlineSanitizer(std::unique_ptr<OnlineDetector> inner, double sentinel);

  std::string_view name() const override { return name_; }
  Status Observe(double value, std::vector<ScoredPoint>* out) override;
  Status Flush(std::vector<ScoredPoint>* out) override;
  Result<std::string> Snapshot() const override;
  Status Restore(std::string_view blob) override;
  std::size_t MemoryFootprint() const override {
    return sizeof(*this) + name_.capacity() + inner_->MemoryFootprint();
  }

  /// Points imputed so far (telemetry).
  std::size_t points_patched() const { return points_patched_; }

 private:
  std::unique_ptr<OnlineDetector> inner_;
  std::string name_;
  double sentinel_;
  double last_good_ = 0.0;
  bool have_good_ = false;
  std::size_t points_patched_ = 0;
};

}  // namespace tsad

#endif  // TSAD_SERVING_ONLINE_ADAPTERS_H_
