// Bounded-memory streaming MPX: an online matrix-profile kernel over a
// ring buffer with prune-style eviction.
//
// The causal STAMPI left profile (streaming_profile.h) is exact but
// O(n) memory and O(t) per point — it cannot survive the
// million-stream serving envelope. This kernel trades unbounded
// history for a hard O(buffer) memory bound:
//
//  * a ring buffer of the most recent `buffer_cap` points; when it
//    fills, the oldest buffer_cap/4 points (and their subsequences)
//    are pruned in one chunk, so appends stay amortized O(1);
//  * MPX's diagonal formulation run incrementally: per arriving point,
//    every retained diagonal (lag) advances its running covariance by
//    the O(1) rank-2 ddf/ddg update, one new diagonal is seeded with
//    an O(m) locally-centered dot product, and rolling muinvn window
//    statistics come from running long-double prefix totals — the same
//    accumulation order as the batch ComputeWindowStats;
//  * the same error containment as mpx_kernel.cc: each diagonal
//    re-seeds its covariance every kStreamingMpxReseed steps with the
//    locally-centered dot, so recurrence drift is flushed on a fixed,
//    restore-stable schedule;
//  * an optional time-constraint band: pairs farther apart than `band`
//    subsequences are never joined, which caps the diagonal count
//    independently of the buffer (the FLOSS temporal constraint).
//
// The kernel maintains BOTH sides of the profile, with different
// contracts under eviction:
//
//  * Right profile (nearest neighbor among LATER subsequences): arcs
//    only point forward, and eviction drops the oldest data first, so
//    if subsequence i is retained every candidate neighbor j > i is
//    retained too. The streaming right profile over the retained
//    suffix therefore matches a batch right self-join of that suffix
//    (within the recurrence tolerance; flat entries exactly) — this is
//    what tests/substrates/profile_equivalence.cc certifies, and what
//    FLOSS's one-directional arc curve consumes.
//  * Left profile (nearest EARLIER neighbor, as of arrival): finalized
//    when the subsequence arrives, STAMPI-style. Its neighbor may
//    later be evicted; the distance remains the historical truth but
//    the index can point below first_subsequence(). Merged() combines
//    both sides and equals the batch MPX self-join exactly when no
//    eviction has occurred.
//
// Every buffer is reserved to its lifetime maximum at construction and
// never reallocates (chunked pruning uses vector::erase, which keeps
// capacity), so MemoryBytes() is CONSTANT from the first push to the
// hundred-thousandth — the property the serving engine's per-stream
// memory budget depends on. MemoryBytesBound() states the bound
// without constructing a kernel.

#ifndef TSAD_SUBSTRATES_STREAMING_MPX_H_
#define TSAD_SUBSTRATES_STREAMING_MPX_H_

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

#include "common/status.h"
#include "common/wire.h"
#include "substrates/matrix_profile.h"

namespace tsad {

/// Re-seed period of the incremental diagonal recurrence, in steps.
/// Mirrors mpx_kernel.cc's kMpxRowBlock error containment; 512 keeps
/// the O(m) seed cost under ~13% of the recurrence work at m = 64.
constexpr std::size_t kStreamingMpxReseed = 512;

struct StreamingMpxConfig {
  /// Subsequence length; >= 2.
  std::size_t m = 64;
  /// Maximum retained points; >= 4 * m so the post-prune window always
  /// keeps several subsequence lengths of context.
  std::size_t buffer_cap = 4096;
  /// Self-join exclusion zone; SIZE_MAX resolves to the batch
  /// convention DefaultSelfJoinExclusion(m) = m / 2.
  std::size_t exclusion = std::numeric_limits<std::size_t>::max();
  /// Optional time-constraint band: subsequences more than `band`
  /// apart are never joined. 0 = unconstrained; otherwise must exceed
  /// the exclusion zone.
  std::size_t band = 0;
};

class StreamingMpx {
 public:
  /// One profile entry. `neighbor` is a GLOBAL subsequence index (may
  /// be below first_subsequence() for Merged() after eviction), or
  /// kNoNeighbor with an infinite distance when no candidate exists.
  struct Entry {
    double distance = std::numeric_limits<double>::infinity();
    std::size_t neighbor = kNoNeighbor;
  };

  /// Rejects invalid configurations (m < 2, buffer_cap < 4m, an
  /// exclusion zone that leaves no joinable pair, band <= exclusion).
  static Status Validate(const StreamingMpxConfig& config);

  /// Asserts Validate(config).ok().
  explicit StreamingMpx(const StreamingMpxConfig& config);

  /// Appends the next point, pruning the oldest buffer_cap/4 points
  /// first when the buffer is full.
  void Push(double value);

  // --- Shape. Subsequence/point indices are GLOBAL (0 = first point
  // ever pushed); local array positions are global - first_*().
  std::size_t points_seen() const { return seen_; }
  std::size_t retained_points() const { return x_.size(); }
  std::size_t first_point() const { return base_; }
  std::size_t num_subsequences() const { return means_.size(); }
  std::size_t first_subsequence() const { return base_; }
  std::uint64_t evictions() const { return evictions_; }
  const StreamingMpxConfig& config() const { return config_; }

  /// Right-profile entry for the local-th retained subsequence, with
  /// the SCAMP flat conventions patched in (flat-vs-flat pairs at
  /// distance 0 with the lowest eligible flat neighbor, flat-vs-dynamic
  /// at sqrt(2m)).
  Entry Right(std::size_t local) const;

  /// Merged (both sides) entry; equals the batch MPX self-join when no
  /// eviction has occurred. After eviction the left component is the
  /// as-of-arrival value and its neighbor may be evicted.
  Entry Merged(std::size_t local) const;

  bool IsFlatAt(std::size_t local) const { return inv_[local] == 0.0; }

  /// Rolling moments of the local-th retained subsequence, exactly as
  /// the kernel classified and normalized it (the equivalence harness
  /// builds its naive reference from these so flat classification and
  /// z-normalization cannot diverge from the kernel under test).
  double MeanAt(std::size_t local) const { return means_[local]; }
  double StdAt(std::size_t local) const { return stds_[local]; }

  /// Bytes held by the kernel (object + every buffer at capacity).
  /// CONSTANT over the kernel's lifetime: all buffers are reserved to
  /// their maximum at construction and pruning never releases capacity.
  std::size_t MemoryBytes() const;

  /// The value MemoryBytes() reports for any kernel built from
  /// `config`, computable without constructing one.
  static std::size_t MemoryBytesBound(const StreamingMpxConfig& config);

  /// Bit-exact state serialization (for serving snapshots). Restore
  /// requires a kernel constructed with the same config and returns
  /// InvalidArgument on mismatch; on success the kernel continues the
  /// stream with bit-identical profile state.
  void Serialize(ByteWriter* writer) const;
  Status Deserialize(ByteReader* reader);

 private:
  void Prune();
  // Locally-centered O(m) covariance of subsequence pair (i, j),
  // global indices — the same seed mpx_kernel.cc uses per row block.
  double CenteredDot(std::size_t i, std::size_t j) const;
  // Number of tracked diagonals when `newest` is the newest
  // subsequence: lags exclusion+1 .. min(newest - base_, band).
  std::size_t LagCount(std::size_t newest) const;
  void ReserveAll();

  StreamingMpxConfig config_;  // exclusion resolved at construction
  std::size_t chunk_ = 0;      // points pruned per eviction
  std::size_t seen_ = 0;       // points pushed over the whole stream
  std::size_t base_ = 0;       // global index of x_[0] (== evicted points)
  std::uint64_t evictions_ = 0;

  std::vector<double> x_;  // retained points [base_, seen_)

  // Rolling window statistics: running prefix totals over the WHOLE
  // stream (long double, same accumulation order as the batch
  // ComputeWindowStats) plus a ring of the last m+1 prefix values so
  // the newest window's sums come from one subtraction.
  long double tot_sum_ = 0.0L;
  long double tot_sq_ = 0.0L;
  std::vector<long double> psum_ring_;  // m + 1 slots, indexed seen % (m+1)
  std::vector<long double> psq_ring_;

  // Per retained subsequence (local index aligned with x_).
  std::vector<double> means_;
  std::vector<double> stds_;
  std::vector<double> inv_;  // muinvn; exactly 0 for flat subsequences
  std::vector<double> ddf_;  // difference tracks (as of arrival)
  std::vector<double> ddg_;
  std::vector<double> right_corr_;  // best correlation with a LATER sub
  std::vector<double> left_corr_;   // best with an EARLIER sub, at arrival
  std::vector<std::size_t> right_idx_;  // global indices
  std::vector<std::size_t> left_idx_;
  std::vector<std::size_t> flat_;  // ascending global flat indices

  // Running covariance frontier per diagonal: diag_cov_[k] is the
  // covariance of the pair (newest - (exclusion+1+k), newest).
  std::vector<double> diag_cov_;
};

}  // namespace tsad

#endif  // TSAD_SUBSTRATES_STREAMING_MPX_H_
