// MPX diagonal-traversal matrix-profile kernels (self-join, AB-join,
// left profile).
//
// Where STOMP walks the distance matrix row by row — each row seeded by
// an FFT sliding-dot pass, then advanced by an O(1) dot-product
// recurrence and converted to distances with a div/sqrt per entry — MPX
// walks it diagonal by diagonal and never touches an FFT at all:
//
//  * muinvn precompute: rolling means (shared with STOMP via
//    ComputeWindowStats, so both kernels classify the same subsequences
//    as flat) and per-subsequence INVERSE centered norms
//    1 / (sigma * sqrt(m)), turning the per-pair normalization into two
//    multiplies instead of a divide.
//  * ddf/ddg difference tracks: ddf[i] = 0.5*(x[i+m-1] - x[i-1]),
//    ddg[i] = (x[i+m-1] - mu[i]) + (x[i-1] - mu[i-1]). Along a
//    diagonal, the centered covariance obeys
//      c(i, j) = c(i-1, j-1) + ddf[i]*ddg[j] + ddf[j]*ddg[i],
//    so each pair costs two fused multiply-adds — no divide, no sqrt,
//    no FFT — and the Pearson correlation is c * inv[i] * inv[j].
//    Distances are recovered once per ENTRY (not per pair) at the end:
//    d = sqrt(2m * (1 - corr)).
//  * Cache-blocked diagonal tiling: diagonals are processed in fixed
//    tiles, and within a tile the offset range is walked in fixed row
//    blocks, so the ddf/ddg/inv/profile segments a tile touches stay
//    L1/L2-resident across all its diagonals instead of streaming the
//    full arrays once per diagonal. Each diagonal re-seeds its
//    covariance at every block boundary with a locally-centered O(m)
//    dot, so recurrence rounding drift is contained to one block
//    instead of compounding along the whole diagonal.
//  * Parallelism: tiles are independent ParallelFor work items, each
//    accumulating into a task-local profile; locals merge into the
//    shared profile under a mutex with the order-independent operator
//    "higher correlation wins, ties to the LOWER neighbor index".
//    Because every diagonal lives in exactly one tile (its running
//    covariance never crosses a tile boundary) and the merge is a
//    lexicographic max, the result is IDENTICAL at any thread count.
//
// Numerics contract: MPX accumulates the covariance in a different
// order than FFT+STOMP, so it is NOT bit-identical to
// ComputeMatrixProfile*'s STOMP kernels. The equivalence harness
// (tests/substrates/profile_equivalence.h) pins the actual contract:
// squared distances within a documented absolute tolerance, flat-entry
// special cases (0 / sqrt(2m)) exactly, and TopDiscords
// indices/ordering exactly. Feed sanitized inputs: NaNs propagate
// through the covariance chain and poison whole diagonals (STOMP
// poisons rows instead — neither kernel defines NaN results).
//
// The AB-join and the left (causal) profile run the same diagonal
// machinery over the CROSS covariance: diagonal d pairs offset o of
// side A with offset o + d of side B under the rank-2 cross recurrence
// (mp_kernels.h, MpxCrossBlockArgs), with one-sided profile updates.
// The AB-join covers its full nq x nr rectangle as two sweeps over a
// unified diagonal space — sweep 1 (reference index >= query index)
// updates the A = query side, sweep 2 (the transposed half, A =
// reference, B = query) updates the B = query side — and the left
// profile is the single b-side sweep over d > exclusion of a series
// joined with itself. Both inherit the tile partition, fixed row
// blocks, per-worker local profiles, lexicographic merge, and
// bit-identical-across-tiers/threads guarantees of the self-join.

#ifndef TSAD_SUBSTRATES_MPX_KERNEL_H_
#define TSAD_SUBSTRATES_MPX_KERNEL_H_

#include <cstddef>
#include <limits>
#include <vector>

#include "common/status.h"
#include "substrates/matrix_profile.h"

namespace tsad {

/// MPX self-join: same arguments, validation, exclusion-zone and
/// flat-subsequence semantics as ComputeMatrixProfile (SIZE_MAX
/// exclusion resolves to DefaultSelfJoinExclusion(m)). Usually invoked
/// through ComputeMatrixProfile with MatrixProfileOptions{kernel=kMpx}
/// or the kAuto size rule; exported directly for the equivalence tests
/// and benches.
///
/// `precision` selects the diagonal recurrence's arithmetic tier and
/// must be RESOLVED (kAuto here means kExact — the override/env
/// resolution lives in ComputeMatrixProfile). kFloat32 runs the
/// recurrence in float over float ddf/ddg/inv tracks with double seeds
/// re-taken every kMpxFloatRowBlock rows (a quarter of the exact
/// tier's block, bounding float drift); see the precision-tier block
/// in matrix_profile.h for the certification contract. Both tiers run
/// through the runtime ISA dispatch (common/cpu_features.h +
/// substrates/mp_kernels.h) and are bit-identical across ISA tiers and
/// thread counts within a tier.
Result<MatrixProfile> ComputeMatrixProfileMpx(
    const std::vector<double>& series, std::size_t m,
    std::size_t exclusion = std::numeric_limits<std::size_t>::max(),
    MpPrecision precision = MpPrecision::kExact);

/// MPX AB-join: same arguments, validation and flat-subsequence
/// semantics as ComputeAbJoin (per query subsequence, the nearest
/// neighbor among ALL reference subsequences; no exclusion zone).
/// Usually reached through the ComputeAbJoin options overload; exported
/// for the equivalence tests and benches. `precision` must be RESOLVED
/// (kAuto here means kExact); the float32 tier runs the shared scalar
/// cross ranges at every ISA tier (see MpxCrossBlockF32Args).
Result<MatrixProfile> ComputeAbJoinMpx(
    const std::vector<double>& query_series,
    const std::vector<double>& reference_series, std::size_t m,
    MpPrecision precision = MpPrecision::kExact);

/// MPX left (causal) matrix profile: same arguments, validation,
/// exclusion and flat semantics as ComputeLeftMatrixProfile — for every
/// subsequence the nearest neighbor strictly in the past (j <= i -
/// exclusion - 1), entries without an eligible past neighbor staying
/// +inf / kNoNeighbor. `precision` must be RESOLVED.
Result<MatrixProfile> ComputeLeftMatrixProfileMpx(
    const std::vector<double>& series, std::size_t m,
    std::size_t exclusion = std::numeric_limits<std::size_t>::max(),
    MpPrecision precision = MpPrecision::kExact);

/// Row-block (= re-seed) period of the float32 tier, deliberately a
/// quarter of the exact tier's 1024: float eps is ~2^29 times double's,
/// so drift must be flushed more often for the tolerance contract to
/// hold with headroom (the seed overhead at m=64 is ~25% of the
/// recurrence work, still far ahead of the 2x lane win).
inline constexpr std::size_t kMpxFloatRowBlock = 256;

}  // namespace tsad

#endif  // TSAD_SUBSTRATES_MPX_KERNEL_H_
