// Matrix profile substrate: MASS distance profiles and a STOMP-style
// O(n^2) self-join, the machinery behind the time series discord
// detector the paper uses in Figs 8 and 13 (Yeh et al. ICDM'16,
// Yankov/Keogh ICDM'07).
//
// All distances are z-normalized Euclidean distances between length-m
// subsequences. Near-constant subsequences are handled with the SCAMP
// convention: two flat subsequences are at distance 0; a flat vs. a
// non-flat subsequence is maximally distant (2*sqrt(m) bound... we use
// sqrt(2m), the maximum attainable z-normalized distance).
//
// The STOMP drivers run row-blocked over the common/parallel.h pool:
// rows are processed in fixed-size blocks (each seeded by its own FFT
// pass, then advanced by the O(1)-per-entry recurrence), so blocks are
// independent and distribute across threads. Because the block size is
// a constant — never derived from the thread count — and every row's
// neighbor scan breaks ties serially (lowest index wins), profiles are
// bit-identical at any --threads setting, including the serial
// fallback. Cooperative DeadlineScope polling happens per worker; the
// submitting thread's deadline is propagated to the pool.

#ifndef TSAD_SUBSTRATES_MATRIX_PROFILE_H_
#define TSAD_SUBSTRATES_MATRIX_PROFILE_H_

#include <cstddef>
#include <limits>
#include <vector>

#include "common/status.h"
#include "substrates/sliding_window.h"

namespace tsad {

/// The matrix profile of a series for subsequence length m: for every
/// subsequence, the z-normalized distance to (and the index of) its
/// nearest non-trivial-match neighbor.
struct MatrixProfile {
  std::vector<double> distances;       // length n - m + 1
  std::vector<std::size_t> indices;    // nearest-neighbor index per entry
  std::size_t subsequence_length = 0;  // m

  std::size_t size() const { return distances.size(); }
};

/// Sentinel for "no valid neighbor" (exclusion covered everything).
inline constexpr std::size_t kNoNeighbor =
    std::numeric_limits<std::size_t>::max();

// ---------------------------------------------------------------------------
// Exclusion-zone conventions — THE single home of the two defaults.
//
// Two different zones exist in this module and they are intentionally
// different sizes:
//  * Profile computation suppresses trivial matches with a zone of
//    m/2 around each subsequence (neighbor j counts only when
//    |i - j| > m/2).
//  * Discord extraction (TopDiscords) suppresses overlapping discords
//    with a zone of m, so reported discords never share a single point.
//
// Rounding: both use C++ integer division, i.e. floor. For even m the
// self-join zone is exactly m/2 (m=64 -> 32: j = i+32 is ineligible,
// j = i+33 is the first candidate); for odd m it floors (m=65 -> 32).
// Every kernel (STOMP, MPX, the naive reference) and TopDiscords must
// derive its default from these two functions — never from a literal —
// so the semantics can only ever change in one place.
// ---------------------------------------------------------------------------

/// Default trivial-match exclusion zone of the profile kernels: m/2
/// (floor division; see the convention block above).
inline std::size_t DefaultSelfJoinExclusion(std::size_t m) { return m / 2; }

/// Default overlap-suppression zone of TopDiscords: m.
inline std::size_t DefaultDiscordExclusion(std::size_t m) { return m; }

// ---------------------------------------------------------------------------
// Kernel selection. Two self-join kernels compute the same profile:
//
//  * kStomp — the FFT-seeded row recurrence (PR 4's planned-FFT,
//    hoisted-scan kernel). Bit-identical to the frozen
//    ComputeMatrixProfileReference, for self-joins, AB-joins and the
//    left (causal) profile alike.
//  * kMpx — the diagonal-traversal MPX kernels (substrates/mpx_kernel.h):
//    no FFT anywhere, O(1) running-covariance updates along each
//    diagonal, for all three join shapes (the AB-join and left profile
//    run the cross-diagonal formulation). Several-fold faster on CPU,
//    but it accumulates in a different order than FFT+STOMP, so values
//    agree only to a tolerance (distances within kMpxCorrTolerance in
//    squared-distance space; discord indices exactly — see
//    tests/substrates/profile_equivalence.h for the contract).
//
// kAuto resolves per call: an explicit process-wide override (the
// --mp-kernel CLI flag) wins, else size decides — MPX when the join has
// at least kMpxAutoMinSubsequences subsequences (for AB-joins, on the
// SMALLER side: the diagonal win needs both sides long), STOMP below
// (small profiles stay bit-stable with the historical kernel and gain
// nothing from diagonal traversal).
// ---------------------------------------------------------------------------

enum class MpKernel {
  kAuto = 0,
  kStomp = 1,
  kMpx = 2,
};

/// Self-joins with at least this many subsequences auto-dispatch to
/// MPX; smaller ones stay on STOMP (documented threshold — the dispatch
/// tests pin it).
inline constexpr std::size_t kMpxAutoMinSubsequences = 2048;

// ---------------------------------------------------------------------------
// Precision tier. The MPX diagonals can run their covariance
// recurrence in float32 (the false.alarm.io observation: the whole UCR
// kernel is viable in float on a microcontroller), roughly doubling
// SIMD lane throughput:
//
//  * kExact — double recurrence; bit-identical across ISA tiers and
//    thread counts, and the STOMP side stays bit-identical to the
//    frozen reference.
//  * kFloat32 — MPX-only float recurrence with double seeds re-taken
//    every (shorter) row block, so rounding drift is contained per
//    block. Certified by a TOLERANCE contract plus exact TopDiscords
//    on the simulator families (tests/substrates/profile_equivalence.h)
//    — NOT for adversarial inputs with extreme level shifts, where
//    float's ~1e-7 relative error on a huge covariance dwarfs O(1)
//    structure. Bit-identical across ISA tiers and thread counts
//    WITHIN the tier.
//
// kAuto resolves to the process-wide override (the --mp-precision flag
// / TSAD_MP_PRECISION env), else kExact. A float32 request with an
// explicitly-requested STOMP kernel is InvalidArgument (STOMP has no
// float tier); with kernel kAuto it forces MPX regardless of the size
// rule or kernel override.
// ---------------------------------------------------------------------------

enum class MpPrecision {
  kAuto = 0,
  kExact = 1,
  kFloat32 = 2,
};

/// Options for ComputeMatrixProfile. `exclusion` keeps the historical
/// SIZE_MAX = "use DefaultSelfJoinExclusion(m)" convention.
struct MatrixProfileOptions {
  MpKernel kernel = MpKernel::kAuto;
  MpPrecision precision = MpPrecision::kAuto;
  std::size_t exclusion = std::numeric_limits<std::size_t>::max();
};

/// Process-wide kernel override for kAuto callers (the --mp-kernel
/// flag lands here). kAuto clears the override and returns to the
/// size-based rule. Explicit per-call options always beat the override.
void SetMpKernelOverride(MpKernel kernel);
MpKernel GetMpKernelOverride();

/// The kernel a self-join with `num_subsequences` subsequences actually
/// runs: `requested` if explicit, else the process override if set,
/// else MPX at >= kMpxAutoMinSubsequences and STOMP below. Pure given
/// the override state — the dispatch tests drive it directly.
MpKernel ResolveMpKernel(MpKernel requested, std::size_t num_subsequences);

/// Parses "auto" / "stomp" / "mpx" (the --mp-kernel values). Unknown
/// names are InvalidArgument with the registry-style "did you mean"
/// suggestion.
Result<MpKernel> ParseMpKernel(const std::string& name);

/// The canonical name of a kernel ("auto", "stomp", "mpx").
const char* MpKernelName(MpKernel kernel);

/// Process-wide precision override for kAuto callers (the
/// --mp-precision flag lands here). kAuto clears the override.
/// Explicit per-call options always beat the override. Setting any
/// value (including kAuto) marks TSAD_MP_PRECISION as consumed, so an
/// explicit flag beats the environment.
void SetMpPrecisionOverride(MpPrecision precision);
MpPrecision GetMpPrecisionOverride();

/// The precision a profile actually runs: `requested` if explicit,
/// else the process override (or TSAD_MP_PRECISION, applied lazily on
/// first use; an invalid value aborts loudly — the CLI and benches
/// call ApplyMpPrecisionEnv first for a clean error), else kExact.
MpPrecision ResolveMpPrecision(MpPrecision requested);

/// Eager TSAD_MP_PRECISION validation, mirroring ApplySimdTierEnv: OK
/// and a no-op when unset or already consumed.
Status ApplyMpPrecisionEnv();

/// Parses "auto" / "exact" / "float32" (the --mp-precision values),
/// with the registry-style "did you mean" rejection.
Result<MpPrecision> ParseMpPrecision(const std::string& name);

/// The canonical name of a precision tier ("auto", "exact", "float32").
const char* MpPrecisionName(MpPrecision precision);

/// Pairwise z-normalized distance between two length-m subsequences
/// from their dot product `qt` and rolling means/stds (SCAMP flat-
/// subsequence convention: flat-vs-flat is 0, flat-vs-dynamic is the
/// maximum attainable distance sqrt(2m)). This is the exact per-pair
/// formula every profile in this module uses; it is exported so the
/// streaming (online) left-profile kernel produces bit-identical
/// distances to the batch drivers.
double ZNormPairDistance(double qt, double mean_a, double std_a, double mean_b,
                         double std_b, std::size_t m);

/// MASS: z-normalized distance profile of `query` against every
/// subsequence of `series` in O(n log n). `stats` must be
/// ComputeWindowStats(series, query.size()).
std::vector<double> MassDistanceProfile(const std::vector<double>& series,
                                        const std::vector<double>& query,
                                        const WindowStats& stats);

/// Convenience overload computing the window stats internally.
std::vector<double> MassDistanceProfile(const std::vector<double>& series,
                                        const std::vector<double>& query);

/// Self-join in O(n^2) time / O(n) memory per row, auto-dispatched
/// between the STOMP and MPX kernels (see the kernel selection block
/// above). The exclusion zone suppresses trivial matches: neighbor j of
/// subsequence i is only considered when |i - j| > exclusion. The
/// conventional zone DefaultSelfJoinExclusion(m) = m/2 is used when
/// `exclusion` is SIZE_MAX.
///
/// Returns InvalidArgument if m < 2 or there are fewer than 2
/// subsequences or the exclusion zone leaves some subsequence with no
/// candidate neighbor at all.
Result<MatrixProfile> ComputeMatrixProfile(
    const std::vector<double>& series, std::size_t m,
    std::size_t exclusion = std::numeric_limits<std::size_t>::max());

/// Kernel-selecting overload: dispatches to STOMP or MPX per
/// options.kernel (kAuto = override, then size rule — see the kernel
/// selection block above). The exclusion-less overload above is
/// equivalent to passing default MatrixProfileOptions, so every
/// existing self-join call site participates in auto-dispatch.
Result<MatrixProfile> ComputeMatrixProfile(const std::vector<double>& series,
                                           std::size_t m,
                                           const MatrixProfileOptions& options);

/// Naive O(n^2 m) reference implementation, for tests.
Result<MatrixProfile> ComputeMatrixProfileNaive(
    const std::vector<double>& series, std::size_t m,
    std::size_t exclusion = std::numeric_limits<std::size_t>::max());

/// The pre-caching STOMP self-join, frozen verbatim: per-block
/// SlidingDotProduct seeds (full series FFT every block) and the fused
/// per-entry ZNormPairDistance scan. Kept so tests can assert the
/// optimized ComputeMatrixProfile is BIT-IDENTICAL to it and so the
/// perf bench can report the kernel speedup against the real baseline
/// rather than the O(n^2 m) naive one.
Result<MatrixProfile> ComputeMatrixProfileReference(
    const std::vector<double>& series, std::size_t m,
    std::size_t exclusion = std::numeric_limits<std::size_t>::max());

/// LEFT matrix profile: for every subsequence, the distance to its
/// nearest neighbor strictly in the PAST (j <= i - exclusion - 1).
/// This is the causal/streaming variant (STAMPI-style): a subsequence
/// unlike anything seen before scores high the moment it completes,
/// which is the setting the Numenta benchmark targets. Entries with no
/// eligible left neighbor (the first `exclusion + 1` subsequences) get
/// +inf distance and kNoNeighbor.
Result<MatrixProfile> ComputeLeftMatrixProfile(
    const std::vector<double>& series, std::size_t m,
    std::size_t exclusion = std::numeric_limits<std::size_t>::max());

/// Kernel-selecting overload of the left profile: dispatches to the
/// STOMP or MPX left kernel per options.kernel, exactly like the
/// self-join dispatcher (kAuto = override, then the size rule on the
/// subsequence count; float32 forces MPX, and float32 with an EXPLICIT
/// kStomp is InvalidArgument). The exclusion-arg overload above
/// forwards here, so every left-profile call site participates in
/// --mp-kernel / --mp-isa / --mp-precision dispatch.
Result<MatrixProfile> ComputeLeftMatrixProfile(
    const std::vector<double>& series, std::size_t m,
    const MatrixProfileOptions& options);

/// AB-join: for every length-m subsequence of `query_series`, the
/// z-normalized distance to (and index of) its nearest neighbor among
/// the subsequences of `reference_series`. No exclusion zone applies —
/// the two series are distinct by contract. This is the substrate for
/// semi-supervised detection ("how far is each test subsequence from
/// everything seen in training?").
///
/// Runs in O(|query| * |reference| log |reference| / m) via one MASS
/// pass per query subsequence... implemented as a STOMP-style row
/// recurrence in O(|query| * |reference|).
Result<MatrixProfile> ComputeAbJoin(const std::vector<double>& query_series,
                                    const std::vector<double>& reference_series,
                                    std::size_t m);

/// Kernel-selecting overload of the AB-join: dispatches to the STOMP
/// or MPX join kernel per options.kernel (kAuto = override, then the
/// size rule on min(nq, nr); float32 forces MPX, and float32 with an
/// EXPLICIT kStomp is InvalidArgument — STOMP has no float tier).
/// options.exclusion is ignored: no exclusion zone exists for a join
/// of two distinct series. The 3-argument overload above forwards
/// here, so every join call site (semisup_discord, telemanom-style
/// train/test joins, serving replay) participates in --mp-kernel /
/// --mp-isa / --mp-precision dispatch.
Result<MatrixProfile> ComputeAbJoin(const std::vector<double>& query_series,
                                    const std::vector<double>& reference_series,
                                    std::size_t m,
                                    const MatrixProfileOptions& options);

/// A discord: the subsequence whose nearest-neighbor distance is
/// largest (i.e., the argmax of the matrix profile).
struct Discord {
  std::size_t position = 0;          // start index of the subsequence
  double distance = 0.0;             // its nearest-neighbor distance
  std::size_t nearest_neighbor = 0;  // index of that neighbor
};

/// Extracts the top-k discords from a matrix profile, suppressing
/// overlaps: after taking a discord at p, positions within `exclusion`
/// of p are ineligible (default: DefaultDiscordExclusion(m) = m — see
/// the exclusion-zone convention block above).
std::vector<Discord> TopDiscords(const MatrixProfile& profile, std::size_t k,
                                 std::size_t exclusion =
                                     std::numeric_limits<std::size_t>::max());

}  // namespace tsad

#endif  // TSAD_SUBSTRATES_MATRIX_PROFILE_H_
