#include "substrates/motifs.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace tsad {

Result<std::vector<Motif>> TopMotifs(const Series& series,
                                     const MatrixProfile& profile,
                                     std::size_t k, const MotifConfig& config) {
  if (profile.size() == 0 || profile.subsequence_length == 0) {
    return Status::InvalidArgument("empty matrix profile");
  }
  const std::size_t m = profile.subsequence_length;
  const std::size_t exclusion =
      config.exclusion == 0 ? m : config.exclusion;
  const WindowStats stats = ComputeWindowStats(series, m);

  std::vector<bool> eligible(profile.size(), true);
  auto exclude_around = [&](std::size_t center) {
    const std::size_t lo = center > exclusion ? center - exclusion : 0;
    const std::size_t hi = std::min(profile.size(), center + exclusion + 1);
    for (std::size_t i = lo; i < hi; ++i) eligible[i] = false;
  };

  std::vector<Motif> motifs;
  for (std::size_t round = 0; round < k; ++round) {
    // The motif pair = the eligible profile entry with the SMALLEST
    // nearest-neighbor distance whose neighbor is also eligible.
    double best = std::numeric_limits<double>::infinity();
    std::size_t best_i = kNoNeighbor;
    for (std::size_t i = 0; i < profile.size(); ++i) {
      if (!eligible[i]) continue;
      const std::size_t j = profile.indices[i];
      if (j == kNoNeighbor || !eligible[j]) continue;
      if (profile.distances[i] < best) {
        best = profile.distances[i];
        best_i = i;
      }
    }
    if (best_i == kNoNeighbor || !std::isfinite(best)) break;

    Motif motif;
    motif.first = best_i;
    motif.second = profile.indices[best_i];
    motif.distance = best;

    // Additional occurrences: a MASS pass within the motif radius. The
    // floor absorbs FFT round-off when the pair is exactly identical
    // (best ~ 0 but other exact copies measure ~1e-6).
    const double radius = std::max(1e-3 * std::sqrt(2.0 * m),
                                   config.radius_factor * best);
    const std::vector<double> dist = MassDistanceProfile(
        series, Subsequence(series, motif.first, m), stats);
    for (std::size_t j = 0; j < dist.size(); ++j) {
      if (!eligible[j]) continue;
      const std::size_t gap_first =
          j > motif.first ? j - motif.first : motif.first - j;
      const std::size_t gap_second =
          j > motif.second ? j - motif.second : motif.second - j;
      if (gap_first <= exclusion || gap_second <= exclusion) continue;
      if (dist[j] <= radius) motif.neighbors.push_back(j);
    }
    // Keep neighbors non-overlapping among themselves.
    std::vector<std::size_t> pruned;
    for (std::size_t j : motif.neighbors) {
      if (pruned.empty() || j - pruned.back() > exclusion) pruned.push_back(j);
    }
    motif.neighbors = std::move(pruned);

    exclude_around(motif.first);
    exclude_around(motif.second);
    for (std::size_t j : motif.neighbors) exclude_around(j);
    motifs.push_back(std::move(motif));
  }
  return motifs;
}

Result<std::vector<Motif>> FindMotifs(const Series& series, std::size_t m,
                                      std::size_t k,
                                      const MotifConfig& config) {
  TSAD_ASSIGN_OR_RETURN(const MatrixProfile profile,
                        ComputeMatrixProfile(series, m));
  return TopMotifs(series, profile, k, config);
}

}  // namespace tsad
