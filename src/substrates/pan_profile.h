// Pan-matrix-profile substrate: ALL window lengths in one engine.
//
// MERLIN-style detectors (Nakamura et al.; the paper's answer to "what
// window length?") need the top discord at EVERY length of a range
// [min_length, max_length]. Computing a full self-join per length
// repeats almost all of the work: the expensive object per pair (i, j)
// is the sliding dot product qt_m(i, j) = sum_k x[i+k] * x[j+k], and it
// obeys a one-term recurrence in the LENGTH dimension,
//
//   qt_{m+1}(i, j) = qt_m(i, j) + x[i+m] * x[j+m],
//
// so one diagonal traversal can serve every length at once. This engine
// walks each diagonal d once per cache block:
//
//  * muinvn stats per length, shared with the per-length kernels via
//    ComputeWindowStats — the SAME flat classification and inverse
//    centered norms 1/(sigma * sqrt(m)), so flat semantics (SCAMP
//    0 / sqrt(2m) cases) agree with ComputeMatrixProfile exactly.
//  * per (diagonal, offset block): one O(min_length) seed of the
//    uncentered dot at the block's first offset, an O(1) slide across
//    offsets, then per extra length an O(step) advance — the length
//    recurrence above — with the centered correlation recovered per
//    (pair, length) as (qt - m * mu_i * mu_j) * inv_i * inv_j.
//  * cache blocking: lengths are processed in small chunks so the
//    per-length mean/inv/profile slices a block touches stay resident
//    while the chunk's diagonals stream through them; each chunk
//    re-seeds its own dot (O(m) per block, amortized over the block's
//    offsets), which also contains rounding drift the way the MPX row
//    block does.
//  * determinism: fixed tile partition over diagonals, per-worker local
//    profiles, lexicographic merge (higher correlation wins, ties to
//    the lower neighbor index) — identical output at any thread count.
//
// Conditioning note: recovering the correlation from the UNCENTERED
// dot cancels m * mu_i * mu_j, so (like the float32 MPX tier, and
// unlike the centered MPX recurrence) the engine loses accuracy on
// adversarial inputs whose level dwarfs their local structure (a 1e6
// offset with O(1) variation costs ~1e-4 of correlation). The certified
// inputs are the simulator families and O(1)-scale walks; the discord
// path is immune by construction — sampled bounds only steer pruning
// (with a margin budgeted for exactly this error), and every reported
// discord is re-measured exactly with locally-centered covariance rows
// (mp_kernels.h pan_cov_row), which cancel the level before the dot.

#ifndef TSAD_SUBSTRATES_PAN_PROFILE_H_
#define TSAD_SUBSTRATES_PAN_PROFILE_H_

#include <cstddef>
#include <vector>

#include "common/status.h"
#include "substrates/matrix_profile.h"

namespace tsad {

/// Length grid of a pan profile: min_length, min_length + step, ...,
/// up to and including max_length when the grid lands on it.
struct PanProfileConfig {
  std::size_t min_length = 0;
  std::size_t max_length = 0;
  std::size_t step = 1;
};

/// The pan matrix profile: one self-join profile per grid length, each
/// with the same per-length semantics as ComputeMatrixProfile(series,
/// m) — default m/2 exclusion zone, SCAMP flat conventions.
struct PanProfile {
  std::vector<std::size_t> lengths;
  std::vector<std::vector<double>> distances;     // [length][entry]
  std::vector<std::vector<std::size_t>> indices;  // [length][entry]

  std::size_t num_lengths() const { return lengths.size(); }

  /// The layer for `lengths[i]` as a MatrixProfile (copies), so pan
  /// layers feed TopDiscords and the equivalence harness directly.
  MatrixProfile Layer(std::size_t i) const;
};

/// Computes the full pan profile over the config's length grid in one
/// shared-dot sweep. Validates like the per-length self-join at
/// max_length (every smaller length is then valid too): m >= 2, at
/// least 2 subsequences, default exclusion leaves candidates. Rejects
/// step == 0 and min_length > max_length.
Result<PanProfile> ComputePanProfile(const std::vector<double>& series,
                                     const PanProfileConfig& config);

/// Top-1 discord per length, as MERLIN consumes it.
struct PanLengthDiscord {
  std::size_t length = 0;
  std::size_t position = 0;
  double distance = 0.0;    // exact z-normalized NN distance
  double normalized = 0.0;  // distance / sqrt(length)
};

/// The pruned pan discord sweep behind MerlinSweep: EXACTLY the top
/// discord of every length in [min_length, max_length] (ties to the
/// lowest position, m/2 trivial-match exclusion — the contract of
/// TopDiscords(ComputeMatrixProfile(series, m), 1) per length, with
/// rounding-level ties resolved by kPanTieCorrEps below), at a
/// fraction of the per-length cost:
///
///  1. one strided-diagonal pan sweep (every kPanDiscordStride-th
///     diagonal) gives each entry an UPPER bound on its true NN
///     distance at every length — the minimum over a SUBSET of
///     candidates can only overestimate;
///  2. per length, entries are refined in upper-bound order (ties to
///     the lower index) with exact centered-covariance rows (dispatched
///     via pan_cov_row), keeping a best-so-far
///     (distances within kPanTieCorrEps tie — mutual nearest neighbors
///     share one pair distance, which ties EXACTLY in real arithmetic
///     but picks up directional rounding — and the lower position
///     wins);
///     once an entry's bound falls below best-so-far minus a small
///     margin (the bound's conditioning budget — see the header note),
///     no later entry can win or tie, and the scan stops. The previous
///     length's discord position is refined FIRST: discords drift
///     slowly across adjacent lengths, so the best-so-far starts high
///     and the scan typically touches a handful of rows.
///
/// Returns Internal("no discord found at length <m>") if a length has
/// no refinable entry — the same failure surface MerlinSweep always
/// had.
Result<std::vector<PanLengthDiscord>> PanLengthDiscords(
    const std::vector<double>& series, std::size_t min_length,
    std::size_t max_length);

/// Correlation-units epsilon under which two discord candidates count
/// as exactly tied (squared distances within 2*m*eps), resolving to the
/// LOWER position. Mutual nearest neighbors share ONE pair distance —
/// an exact tie in real arithmetic — but every backend rounds the two
/// directions slightly differently (the kernel recurrence by the path
/// it took along each diagonal, the refinement row by its own dot
/// order), so a strict argmax
/// would make the reported position an artifact of which backend
/// computed the profile. Both the pan discord sweep and
/// MerlinSweepPerLength resolve such ties with this epsilon: far above
/// ~1e-13 directional rounding, far below any genuine gap between
/// distinct discords.
inline constexpr double kPanTieCorrEps = 1e-8;

/// Diagonal sampling stride of the discord sweep's bound phase. Larger
/// strides cut the bound phase's work proportionally but loosen the
/// bounds (more exact rows in phase 2); 8 keeps the bound phase ~8x
/// cheaper than a full sweep while bounds stay tight enough that
/// refinement touches only a few rows per length on the certified
/// families.
inline constexpr std::size_t kPanDiscordStride = 8;

}  // namespace tsad

#endif  // TSAD_SUBSTRATES_PAN_PROFILE_H_
