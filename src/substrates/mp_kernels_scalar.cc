// Scalar kernel variant: thin wrappers over the shared baseline
// helpers in mp_kernels.cc. This tier is portable C++ with no hand
// vectorization and is the one CI always exercises (forced via
// --mp-isa scalar / TSAD_MP_ISA=scalar), so the dispatch seam has
// coverage even on hosts without AVX.

#include "substrates/mp_kernels.h"

namespace tsad {
namespace {

void StompFill(const StompFillArgs& args) {
  FillRowDistancesTail(args, args.begin);
}

void MpxBlock(const MpxBlockArgs& args) {
  MpxBlockScalarRange(args, args.d_begin, args.d_end);
}

void MpxBlockF32(const MpxBlockF32Args& args) {
  MpxBlockF32ScalarRange(args, args.d_begin, args.d_end);
}

void MpxCrossBlockA(const MpxCrossBlockArgs& args) {
  MpxCrossBlockScalarRangeA(args, args.d_begin, args.d_end);
}

void MpxCrossBlockB(const MpxCrossBlockArgs& args) {
  MpxCrossBlockScalarRangeB(args, args.d_begin, args.d_end);
}

void MpxAdvanceLags(MpxAdvanceLagsArgs& args) {
  MpxAdvanceLagsScalarRange(args, 0, args.nlags);
}

void PanBlock(const PanBlockArgs& args) { PanBlockScalar(args); }

void PanCovRow(const PanCovRowArgs& args) {
  PanCovRowScalarRange(args, 0, args.count);
}

}  // namespace

namespace mp_kernels_internal {

MpKernelVariant ScalarVariant() {
  MpKernelVariant v;
  v.tier = SimdTier::kScalar;
  v.stomp_fill = StompFill;
  v.mpx_block = MpxBlock;
  v.mpx_block_f32 = MpxBlockF32;
  v.mpx_cross_a = MpxCrossBlockA;
  v.mpx_cross_b = MpxCrossBlockB;
  v.mpx_advance_lags = MpxAdvanceLags;
  v.pan_block = PanBlock;
  v.pan_cov_row = PanCovRow;
  return v;
}

}  // namespace mp_kernels_internal
}  // namespace tsad
