// Subsequence utilities shared by the matrix-profile substrate and the
// discord detectors: O(n) rolling mean/std of all length-m subsequences
// and subsequence extraction.

#ifndef TSAD_SUBSTRATES_SLIDING_WINDOW_H_
#define TSAD_SUBSTRATES_SLIDING_WINDOW_H_

#include <cstddef>
#include <vector>

namespace tsad {

/// Rolling mean and population standard deviation of every length-m
/// subsequence of a series: means[i] / stds[i] describe x[i, i+m).
/// Vectors have length n - m + 1 (empty if m == 0 or m > n).
struct WindowStats {
  std::vector<double> means;
  std::vector<double> stds;

  std::size_t size() const { return means.size(); }
};

/// Computes rolling window statistics in O(n) with long-double
/// accumulation.
WindowStats ComputeWindowStats(const std::vector<double>& x, std::size_t m);

/// Copies the subsequence x[start, start+m). Precondition:
/// start + m <= x.size() (asserts).
std::vector<double> Subsequence(const std::vector<double>& x,
                                std::size_t start, std::size_t m);

/// Number of length-m subsequences of a length-n series (0 if m == 0 or
/// m > n).
inline std::size_t NumSubsequences(std::size_t n, std::size_t m) {
  return (m == 0 || m > n) ? 0 : n - m + 1;
}

/// Finds maximal runs of (near-)constant values: consecutive points
/// differing by at most `tolerance`, of length at least `min_length`.
/// Returned as half-open [begin, end) index pairs. This is the primitive
/// behind the NASA "dynamic series suddenly becomes constant" analysis
/// (paper §2.2, Fig 9) and the diff(diff(TS)) == 0 one-liner.
std::vector<std::pair<std::size_t, std::size_t>> FindConstantRuns(
    const std::vector<double>& x, std::size_t min_length, double tolerance);

}  // namespace tsad

#endif  // TSAD_SUBSTRATES_SLIDING_WINDOW_H_
