#include "substrates/mpx_kernel.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <mutex>
#include <vector>

#include "common/parallel.h"
#include "robustness/deadline.h"
#include "substrates/mp_kernels.h"
#include "substrates/profile_internal.h"
#include "substrates/sliding_window.h"

namespace tsad {

namespace {

// Diagonals per ParallelFor work item. Also the determinism grain: a
// diagonal's running covariance lives entirely inside one tile, so the
// per-pair correlations are identical no matter how tiles land on
// threads. 128 diagonals keep ~100+ tasks alive at bench sizes and
// still give several tiles at test sizes (count ~600), so the merge
// path is exercised even in small suites.
constexpr std::size_t kMpxDiagTile = 128;

// Offsets per cache block inside a tile. A tile touches the row segment
// [r0, r1) and the column segment [r0 + d_begin, r1 + d_end) of the
// ddf/ddg/inv/best arrays — with 1024 offsets that is about
// 2 * (1024 + 128) * 5 arrays * 8 bytes ~= 90 KiB, sized to stay
// L2-resident across all 128 diagonals of the tile instead of
// streaming full n-length arrays once per diagonal.
//
// The block boundary doubles as the error-containment boundary: each
// diagonal RE-SEEDS its covariance at the first offset of every block
// with a locally-centered O(m) dot product. The ddf/ddg recurrence is
// exact in exact arithmetic but mixes magnitudes — a diagonal crossing
// an extreme level shift (say a 1e6-level flat run in an O(1) series)
// briefly holds a ~1e12 covariance and keeps that magnitude's ABSOLUTE
// rounding error after returning to O(1) values. Re-seeding flushes
// the drift every kMpxRowBlock steps (the centered dot is well-
// conditioned at any level), so error accumulates over at most one
// block instead of a whole diagonal. Seeding costs m/kMpxRowBlock
// (~6% at m=64) of the recurrence work. Boundaries are fixed
// constants, so determinism is unaffected.
constexpr std::size_t kMpxRowBlock = 1024;

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

// Lowest flat subsequence index outside i's exclusion zone, or
// kNoNeighbor. `flat` is ascending, so the overall-lowest index wins if
// it clears the left side of the zone; otherwise the first index past
// the right side (if any) is the lowest eligible one.
std::size_t LowestFlatOutsideExclusion(const std::vector<std::size_t>& flat,
                                       std::size_t i, std::size_t exclusion) {
  if (flat.empty()) return kNoNeighbor;
  if (i > exclusion && flat.front() < i - exclusion) return flat.front();
  const auto it = std::upper_bound(flat.begin(), flat.end(), i + exclusion);
  return it == flat.end() ? kNoNeighbor : *it;
}

}  // namespace

Result<MatrixProfile> ComputeMatrixProfileMpx(const std::vector<double>& series,
                                              std::size_t m,
                                              std::size_t exclusion,
                                              MpPrecision precision) {
  std::size_t count = 0;
  TSAD_RETURN_IF_ERROR(
      profile_internal::ValidateSelfJoin(series.size(), m, &exclusion, &count));
  const bool float32 = precision == MpPrecision::kFloat32;

  const WindowStats stats = ComputeWindowStats(series, m);
  const double dm = static_cast<double>(m);
  const double two_m = 2.0 * dm;
  const double sqrt_two_m = std::sqrt(two_m);
  const double sqrt_m = std::sqrt(dm);

  // muinvn: inverse centered norms. Flat subsequences get inv = 0, so
  // every correlation they participate in is exactly +/-0 — they drop
  // out of the neighbor race numerically and are patched to the SCAMP
  // special cases after the traversal.
  std::vector<double> inv(count);
  std::vector<std::size_t> flat_indices;
  for (std::size_t i = 0; i < count; ++i) {
    if (profile_internal::IsFlat(stats.means[i], stats.stds[i])) {
      inv[i] = 0.0;
      flat_indices.push_back(i);
    } else {
      inv[i] = 1.0 / (stats.stds[i] * sqrt_m);
    }
  }

  // Difference tracks driving the diagonal covariance recurrence.
  // Entry 0 is never read (every block's first offset is an explicitly
  // accumulated seed, and offset 0 is always a block start) but is
  // kept zero so the arrays index directly by offset.
  std::vector<double> ddf(count, 0.0);
  std::vector<double> ddg(count, 0.0);
  for (std::size_t j = 1; j < count; ++j) {
    ddf[j] = 0.5 * (series[j + m - 1] - series[j - 1]);
    ddg[j] = (series[j + m - 1] - stats.means[j]) +
             (series[j - 1] - stats.means[j - 1]);
  }

  // Float32 tier: the recurrence tracks narrowed once, up front (the
  // narrowing is the tier's announced precision loss; every seed stays
  // a double dot). The shorter float row block re-seeds 4x as often —
  // see kMpxFloatRowBlock.
  const bool use_f32 = float32;
  std::vector<float> fddf, fddg, finv;
  if (use_f32) {
    fddf.resize(count);
    fddg.resize(count);
    finv.resize(count);
    for (std::size_t j = 0; j < count; ++j) {
      fddf[j] = static_cast<float>(ddf[j]);
      fddg[j] = static_cast<float>(ddg[j]);
      finv[j] = static_cast<float>(inv[j]);
    }
  }
  const std::size_t row_block = use_f32 ? kMpxFloatRowBlock : kMpxRowBlock;

  // Shared best-so-far profile in correlation space, merged under
  // `merge_mutex` with a lexicographic max (higher correlation wins,
  // ties to the lower neighbor index — the same winner STOMP's serial
  // lowest-index argmin picks, stated order-independently).
  std::vector<double> best_corr(count, kNegInf);
  std::vector<std::size_t> best_index(count, kNoNeighbor);
  std::mutex merge_mutex;

  const std::size_t min_diag = exclusion + 1;  // validation: < count
  const std::size_t num_diags = count - min_diag;
  const std::size_t num_tiles = (num_diags + kMpxDiagTile - 1) / kMpxDiagTile;

  // The ISA tier is resolved once per profile; every tile of this call
  // runs the same variant (mp_kernels.h), so a concurrent override
  // change cannot mix tiers within one profile.
  const MpKernelVariant& variant = ActiveKernelVariant();

  // Tiles are interleaved across a small fixed set of workers, each
  // owning ONE task-local profile for its whole tile share. Per-tile
  // locals would cost two count-length allocations + fills + a
  // count-length merge per 128 diagonals — with the dispatched SIMD
  // kernels that bookkeeping, not the recurrence, dominates. The
  // result is unchanged by the partition (or the thread count): every
  // diagonal's chain still lives in exactly one worker, and both the
  // local accumulation and the final merge are the order-independent
  // lexicographic max. 4 shares per thread keeps the tail balanced.
  const std::size_t workers = std::min(
      num_tiles, std::max<std::size_t>(ParallelThreads(), 1) * 4);

  const Status status = ParallelFor(0, workers, [&](std::size_t w) -> Status {
    std::vector<double> local_corr(count, kNegInf);
    std::vector<std::size_t> local_index(count, kNoNeighbor);

    for (std::size_t tile = w; tile < num_tiles; tile += workers) {
      const std::size_t d_begin = min_diag + tile * kMpxDiagTile;
      const std::size_t d_end = std::min(count, d_begin + kMpxDiagTile);

      // Cache-blocked traversal: offsets advance in row blocks; each
      // diagonal is freshly seeded at the block's first offset (see
      // the kMpxRowBlock comment) and advanced by the rank-2
      // recurrence within the block — by the runtime-dispatched ISA
      // variant, which carries a group of adjacent diagonals per
      // vector set.
      const std::size_t max_len = count - d_begin;  // longest diagonal
      for (std::size_t r0 = 0; r0 < max_len; r0 += row_block) {
        TSAD_RETURN_IF_ERROR(CheckDeadline());
        const std::size_t r1 = std::min(max_len, r0 + row_block);
        if (use_f32) {
          MpxBlockF32Args args;
          args.series = series.data();
          args.means = stats.means.data();
          args.ddf = fddf.data();
          args.ddg = fddg.data();
          args.inv = finv.data();
          args.m = m;
          args.count = count;
          args.r0 = r0;
          args.r1 = r1;
          args.d_begin = d_begin;
          args.d_end = d_end;
          args.local_corr = local_corr.data();
          args.local_index = local_index.data();
          variant.mpx_block_f32(args);
        } else {
          MpxBlockArgs args;
          args.series = series.data();
          args.means = stats.means.data();
          args.ddf = ddf.data();
          args.ddg = ddg.data();
          args.inv = inv.data();
          args.m = m;
          args.count = count;
          args.r0 = r0;
          args.r1 = r1;
          args.d_begin = d_begin;
          args.d_end = d_end;
          args.local_corr = local_corr.data();
          args.local_index = local_index.data();
          variant.mpx_block(args);
        }
      }
    }

    std::lock_guard<std::mutex> lock(merge_mutex);
    for (std::size_t i = 0; i < count; ++i) {
      if (local_corr[i] > best_corr[i] ||
          (local_corr[i] == best_corr[i] && local_index[i] < best_index[i])) {
        best_corr[i] = local_corr[i];
        best_index[i] = local_index[i];
      }
    }
    return Status::OK();
  });
  TSAD_RETURN_IF_ERROR(status);

  // Correlation -> distance, with the SCAMP flat special cases patched
  // in: a flat subsequence is at distance 0 from the lowest eligible
  // flat neighbor, else at the max attainable distance sqrt(2m) from
  // whatever dynamic neighbor won the (all-zero-correlation) race.
  MatrixProfile profile;
  profile.subsequence_length = m;
  profile.distances.assign(count,
                           std::numeric_limits<double>::infinity());
  profile.indices.assign(count, kNoNeighbor);
  for (std::size_t i = 0; i < count; ++i) {
    if (inv[i] == 0.0) {
      const std::size_t j = LowestFlatOutsideExclusion(flat_indices, i,
                                                       exclusion);
      if (j != kNoNeighbor) {
        profile.distances[i] = 0.0;
        profile.indices[i] = j;
      } else if (best_index[i] != kNoNeighbor) {
        profile.distances[i] = sqrt_two_m;
        profile.indices[i] = best_index[i];
      }
      continue;
    }
    if (best_index[i] == kNoNeighbor) continue;  // NaN-poisoned input
    const double corr = std::clamp(best_corr[i], -1.0, 1.0);
    const double v = two_m * (1.0 - corr);
    profile.distances[i] = std::sqrt(v > 0.0 ? v : 0.0);
    profile.indices[i] = best_index[i];
  }
  return profile;
}

}  // namespace tsad
