#include "substrates/mpx_kernel.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <mutex>
#include <vector>

#include "common/parallel.h"
#include "robustness/deadline.h"
#include "substrates/mp_kernels.h"
#include "substrates/profile_internal.h"
#include "substrates/sliding_window.h"

namespace tsad {

namespace {

// Diagonals per ParallelFor work item. Also the determinism grain: a
// diagonal's running covariance lives entirely inside one tile, so the
// per-pair correlations are identical no matter how tiles land on
// threads. 128 diagonals keep ~100+ tasks alive at bench sizes and
// still give several tiles at test sizes (count ~600), so the merge
// path is exercised even in small suites.
constexpr std::size_t kMpxDiagTile = 128;

// Offsets per cache block inside a tile. A tile touches the row segment
// [r0, r1) and the column segment [r0 + d_begin, r1 + d_end) of the
// ddf/ddg/inv/best arrays — with 1024 offsets that is about
// 2 * (1024 + 128) * 5 arrays * 8 bytes ~= 90 KiB, sized to stay
// L2-resident across all 128 diagonals of the tile instead of
// streaming full n-length arrays once per diagonal.
//
// The block boundary doubles as the error-containment boundary: each
// diagonal RE-SEEDS its covariance at the first offset of every block
// with a locally-centered O(m) dot product. The ddf/ddg recurrence is
// exact in exact arithmetic but mixes magnitudes — a diagonal crossing
// an extreme level shift (say a 1e6-level flat run in an O(1) series)
// briefly holds a ~1e12 covariance and keeps that magnitude's ABSOLUTE
// rounding error after returning to O(1) values. Re-seeding flushes
// the drift every kMpxRowBlock steps (the centered dot is well-
// conditioned at any level), so error accumulates over at most one
// block instead of a whole diagonal. Seeding costs m/kMpxRowBlock
// (~6% at m=64) of the recurrence work. Boundaries are fixed
// constants, so determinism is unaffected.
constexpr std::size_t kMpxRowBlock = 1024;

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

// Lowest flat subsequence index outside i's exclusion zone, or
// kNoNeighbor. `flat` is ascending, so the overall-lowest index wins if
// it clears the left side of the zone; otherwise the first index past
// the right side (if any) is the lowest eligible one.
std::size_t LowestFlatOutsideExclusion(const std::vector<std::size_t>& flat,
                                       std::size_t i, std::size_t exclusion) {
  if (flat.empty()) return kNoNeighbor;
  if (i > exclusion && flat.front() < i - exclusion) return flat.front();
  const auto it = std::upper_bound(flat.begin(), flat.end(), i + exclusion);
  return it == flat.end() ? kNoNeighbor : *it;
}

// Per-side precompute of the cross-join drivers: rolling stats, muinvn
// inverse norms (0 for flats, which drop the SCAMP cases out of the
// correlation race), the ddf/ddg difference tracks, and — float32 tier
// only — their narrowed copies. The arithmetic matches the self-join
// driver expression for expression, so a side built from the same
// series carries bit-identical tracks.
struct MpxSide {
  WindowStats stats;
  std::vector<double> inv;
  std::vector<std::size_t> flat_indices;
  std::vector<double> ddf, ddg;
  std::vector<float> finv, fddf, fddg;
};

MpxSide BuildMpxSide(const std::vector<double>& series, std::size_t m,
                     std::size_t count, bool float32) {
  MpxSide s;
  s.stats = ComputeWindowStats(series, m);
  const double sqrt_m = std::sqrt(static_cast<double>(m));
  s.inv.resize(count);
  for (std::size_t i = 0; i < count; ++i) {
    if (profile_internal::IsFlat(s.stats.means[i], s.stats.stds[i])) {
      s.inv[i] = 0.0;
      s.flat_indices.push_back(i);
    } else {
      s.inv[i] = 1.0 / (s.stats.stds[i] * sqrt_m);
    }
  }
  s.ddf.assign(count, 0.0);
  s.ddg.assign(count, 0.0);
  for (std::size_t j = 1; j < count; ++j) {
    s.ddf[j] = 0.5 * (series[j + m - 1] - series[j - 1]);
    s.ddg[j] = (series[j + m - 1] - s.stats.means[j]) +
               (series[j - 1] - s.stats.means[j - 1]);
  }
  if (float32) {
    s.fddf.resize(count);
    s.fddg.resize(count);
    s.finv.resize(count);
    for (std::size_t j = 0; j < count; ++j) {
      s.fddf[j] = static_cast<float>(s.ddf[j]);
      s.fddg[j] = static_cast<float>(s.ddg[j]);
      s.finv[j] = static_cast<float>(s.inv[j]);
    }
  }
  return s;
}

// One diagonal half-space of a cross join: side A offsets o pair with
// side B offsets o + d over d in [d_begin, d_end), updating the A side
// (entry o) or the B side (entry o + d). The AB-join runs two sweeps
// (the rectangle's two halves), the left profile one.
struct CrossSweep {
  const MpxSide* a = nullptr;
  const std::vector<double>* series_a = nullptr;
  std::size_t count_a = 0;
  const MpxSide* b = nullptr;
  const std::vector<double>* series_b = nullptr;
  std::size_t count_b = 0;
  std::size_t d_begin = 0;
  std::size_t d_end = 0;
  bool update_a = false;
};

// Shared driver loop of the cross-join kernels: the self-join's tile
// partition (kMpxDiagTile diagonals per tile, tiles never straddling a
// sweep), fixed row blocks with per-block covariance re-seeds, a small
// fixed worker set striding the tile list with one task-local profile
// each, and the order-independent lexicographic merge — so results are
// identical at any thread count. The exact tier runs the dispatched
// per-ISA variants; the float32 tier always runs the shared scalar
// cross ranges (trivially identical across tiers; MpxCrossBlockF32Args
// documents the trade).
Status RunCrossSweeps(const std::vector<CrossSweep>& sweeps, std::size_t m,
                      bool float32, std::size_t entries,
                      std::vector<double>* best_corr,
                      std::vector<std::size_t>* best_index) {
  best_corr->assign(entries, kNegInf);
  best_index->assign(entries, kNoNeighbor);

  struct Tile {
    std::size_t sweep = 0;
    std::size_t d_begin = 0;
    std::size_t d_end = 0;
  };
  std::vector<Tile> tiles;
  for (std::size_t s = 0; s < sweeps.size(); ++s) {
    for (std::size_t d = sweeps[s].d_begin; d < sweeps[s].d_end;
         d += kMpxDiagTile) {
      tiles.push_back({s, d, std::min(sweeps[s].d_end, d + kMpxDiagTile)});
    }
  }
  if (tiles.empty()) return Status::OK();

  std::mutex merge_mutex;
  const MpKernelVariant& variant = ActiveKernelVariant();
  const std::size_t row_block = float32 ? kMpxFloatRowBlock : kMpxRowBlock;
  const std::size_t workers = std::min<std::size_t>(
      tiles.size(), std::max<std::size_t>(ParallelThreads(), 1) * 4);

  return ParallelFor(0, workers, [&](std::size_t w) -> Status {
    std::vector<double> local_corr(entries, kNegInf);
    std::vector<std::size_t> local_index(entries, kNoNeighbor);

    for (std::size_t t = w; t < tiles.size(); t += workers) {
      const Tile& tile = tiles[t];
      const CrossSweep& sweep = sweeps[tile.sweep];
      // Longest diagonal of the tile (d ascending shortens them).
      const std::size_t max_len =
          std::min(sweep.count_a, sweep.count_b - tile.d_begin);
      for (std::size_t r0 = 0; r0 < max_len; r0 += row_block) {
        TSAD_RETURN_IF_ERROR(CheckDeadline());
        const std::size_t r1 = std::min(max_len, r0 + row_block);
        if (float32) {
          MpxCrossBlockF32Args args;
          args.series_a = sweep.series_a->data();
          args.means_a = sweep.a->stats.means.data();
          args.ddf_a = sweep.a->fddf.data();
          args.ddg_a = sweep.a->fddg.data();
          args.inv_a = sweep.a->finv.data();
          args.count_a = sweep.count_a;
          args.series_b = sweep.series_b->data();
          args.means_b = sweep.b->stats.means.data();
          args.ddf_b = sweep.b->fddf.data();
          args.ddg_b = sweep.b->fddg.data();
          args.inv_b = sweep.b->finv.data();
          args.count_b = sweep.count_b;
          args.m = m;
          args.r0 = r0;
          args.r1 = r1;
          args.d_begin = tile.d_begin;
          args.d_end = tile.d_end;
          args.local_corr = local_corr.data();
          args.local_index = local_index.data();
          if (sweep.update_a) {
            MpxCrossBlockF32ScalarRangeA(args, args.d_begin, args.d_end);
          } else {
            MpxCrossBlockF32ScalarRangeB(args, args.d_begin, args.d_end);
          }
        } else {
          MpxCrossBlockArgs args;
          args.series_a = sweep.series_a->data();
          args.means_a = sweep.a->stats.means.data();
          args.ddf_a = sweep.a->ddf.data();
          args.ddg_a = sweep.a->ddg.data();
          args.inv_a = sweep.a->inv.data();
          args.count_a = sweep.count_a;
          args.series_b = sweep.series_b->data();
          args.means_b = sweep.b->stats.means.data();
          args.ddf_b = sweep.b->ddf.data();
          args.ddg_b = sweep.b->ddg.data();
          args.inv_b = sweep.b->inv.data();
          args.count_b = sweep.count_b;
          args.m = m;
          args.r0 = r0;
          args.r1 = r1;
          args.d_begin = tile.d_begin;
          args.d_end = tile.d_end;
          args.local_corr = local_corr.data();
          args.local_index = local_index.data();
          (sweep.update_a ? variant.mpx_cross_a : variant.mpx_cross_b)(args);
        }
      }
    }

    std::lock_guard<std::mutex> lock(merge_mutex);
    for (std::size_t i = 0; i < entries; ++i) {
      if (local_corr[i] > (*best_corr)[i] ||
          (local_corr[i] == (*best_corr)[i] &&
           local_index[i] < (*best_index)[i])) {
        (*best_corr)[i] = local_corr[i];
        (*best_index)[i] = local_index[i];
      }
    }
    return Status::OK();
  });
}

}  // namespace

Result<MatrixProfile> ComputeMatrixProfileMpx(const std::vector<double>& series,
                                              std::size_t m,
                                              std::size_t exclusion,
                                              MpPrecision precision) {
  std::size_t count = 0;
  TSAD_RETURN_IF_ERROR(
      profile_internal::ValidateSelfJoin(series.size(), m, &exclusion, &count));
  const bool float32 = precision == MpPrecision::kFloat32;

  const WindowStats stats = ComputeWindowStats(series, m);
  const double dm = static_cast<double>(m);
  const double two_m = 2.0 * dm;
  const double sqrt_two_m = std::sqrt(two_m);
  const double sqrt_m = std::sqrt(dm);

  // muinvn: inverse centered norms. Flat subsequences get inv = 0, so
  // every correlation they participate in is exactly +/-0 — they drop
  // out of the neighbor race numerically and are patched to the SCAMP
  // special cases after the traversal.
  std::vector<double> inv(count);
  std::vector<std::size_t> flat_indices;
  for (std::size_t i = 0; i < count; ++i) {
    if (profile_internal::IsFlat(stats.means[i], stats.stds[i])) {
      inv[i] = 0.0;
      flat_indices.push_back(i);
    } else {
      inv[i] = 1.0 / (stats.stds[i] * sqrt_m);
    }
  }

  // Difference tracks driving the diagonal covariance recurrence.
  // Entry 0 is never read (every block's first offset is an explicitly
  // accumulated seed, and offset 0 is always a block start) but is
  // kept zero so the arrays index directly by offset.
  std::vector<double> ddf(count, 0.0);
  std::vector<double> ddg(count, 0.0);
  for (std::size_t j = 1; j < count; ++j) {
    ddf[j] = 0.5 * (series[j + m - 1] - series[j - 1]);
    ddg[j] = (series[j + m - 1] - stats.means[j]) +
             (series[j - 1] - stats.means[j - 1]);
  }

  // Float32 tier: the recurrence tracks narrowed once, up front (the
  // narrowing is the tier's announced precision loss; every seed stays
  // a double dot). The shorter float row block re-seeds 4x as often —
  // see kMpxFloatRowBlock.
  const bool use_f32 = float32;
  std::vector<float> fddf, fddg, finv;
  if (use_f32) {
    fddf.resize(count);
    fddg.resize(count);
    finv.resize(count);
    for (std::size_t j = 0; j < count; ++j) {
      fddf[j] = static_cast<float>(ddf[j]);
      fddg[j] = static_cast<float>(ddg[j]);
      finv[j] = static_cast<float>(inv[j]);
    }
  }
  const std::size_t row_block = use_f32 ? kMpxFloatRowBlock : kMpxRowBlock;

  // Shared best-so-far profile in correlation space, merged under
  // `merge_mutex` with a lexicographic max (higher correlation wins,
  // ties to the lower neighbor index — the same winner STOMP's serial
  // lowest-index argmin picks, stated order-independently).
  std::vector<double> best_corr(count, kNegInf);
  std::vector<std::size_t> best_index(count, kNoNeighbor);
  std::mutex merge_mutex;

  const std::size_t min_diag = exclusion + 1;  // validation: < count
  const std::size_t num_diags = count - min_diag;
  const std::size_t num_tiles = (num_diags + kMpxDiagTile - 1) / kMpxDiagTile;

  // The ISA tier is resolved once per profile; every tile of this call
  // runs the same variant (mp_kernels.h), so a concurrent override
  // change cannot mix tiers within one profile.
  const MpKernelVariant& variant = ActiveKernelVariant();

  // Tiles are interleaved across a small fixed set of workers, each
  // owning ONE task-local profile for its whole tile share. Per-tile
  // locals would cost two count-length allocations + fills + a
  // count-length merge per 128 diagonals — with the dispatched SIMD
  // kernels that bookkeeping, not the recurrence, dominates. The
  // result is unchanged by the partition (or the thread count): every
  // diagonal's chain still lives in exactly one worker, and both the
  // local accumulation and the final merge are the order-independent
  // lexicographic max. 4 shares per thread keeps the tail balanced.
  const std::size_t workers = std::min(
      num_tiles, std::max<std::size_t>(ParallelThreads(), 1) * 4);

  const Status status = ParallelFor(0, workers, [&](std::size_t w) -> Status {
    std::vector<double> local_corr(count, kNegInf);
    std::vector<std::size_t> local_index(count, kNoNeighbor);

    for (std::size_t tile = w; tile < num_tiles; tile += workers) {
      const std::size_t d_begin = min_diag + tile * kMpxDiagTile;
      const std::size_t d_end = std::min(count, d_begin + kMpxDiagTile);

      // Cache-blocked traversal: offsets advance in row blocks; each
      // diagonal is freshly seeded at the block's first offset (see
      // the kMpxRowBlock comment) and advanced by the rank-2
      // recurrence within the block — by the runtime-dispatched ISA
      // variant, which carries a group of adjacent diagonals per
      // vector set.
      const std::size_t max_len = count - d_begin;  // longest diagonal
      for (std::size_t r0 = 0; r0 < max_len; r0 += row_block) {
        TSAD_RETURN_IF_ERROR(CheckDeadline());
        const std::size_t r1 = std::min(max_len, r0 + row_block);
        if (use_f32) {
          MpxBlockF32Args args;
          args.series = series.data();
          args.means = stats.means.data();
          args.ddf = fddf.data();
          args.ddg = fddg.data();
          args.inv = finv.data();
          args.m = m;
          args.count = count;
          args.r0 = r0;
          args.r1 = r1;
          args.d_begin = d_begin;
          args.d_end = d_end;
          args.local_corr = local_corr.data();
          args.local_index = local_index.data();
          variant.mpx_block_f32(args);
        } else {
          MpxBlockArgs args;
          args.series = series.data();
          args.means = stats.means.data();
          args.ddf = ddf.data();
          args.ddg = ddg.data();
          args.inv = inv.data();
          args.m = m;
          args.count = count;
          args.r0 = r0;
          args.r1 = r1;
          args.d_begin = d_begin;
          args.d_end = d_end;
          args.local_corr = local_corr.data();
          args.local_index = local_index.data();
          variant.mpx_block(args);
        }
      }
    }

    std::lock_guard<std::mutex> lock(merge_mutex);
    for (std::size_t i = 0; i < count; ++i) {
      if (local_corr[i] > best_corr[i] ||
          (local_corr[i] == best_corr[i] && local_index[i] < best_index[i])) {
        best_corr[i] = local_corr[i];
        best_index[i] = local_index[i];
      }
    }
    return Status::OK();
  });
  TSAD_RETURN_IF_ERROR(status);

  // Correlation -> distance, with the SCAMP flat special cases patched
  // in: a flat subsequence is at distance 0 from the lowest eligible
  // flat neighbor, else at the max attainable distance sqrt(2m) from
  // whatever dynamic neighbor won the (all-zero-correlation) race.
  MatrixProfile profile;
  profile.subsequence_length = m;
  profile.distances.assign(count,
                           std::numeric_limits<double>::infinity());
  profile.indices.assign(count, kNoNeighbor);
  for (std::size_t i = 0; i < count; ++i) {
    if (inv[i] == 0.0) {
      const std::size_t j = LowestFlatOutsideExclusion(flat_indices, i,
                                                       exclusion);
      if (j != kNoNeighbor) {
        profile.distances[i] = 0.0;
        profile.indices[i] = j;
      } else if (best_index[i] != kNoNeighbor) {
        profile.distances[i] = sqrt_two_m;
        profile.indices[i] = best_index[i];
      }
      continue;
    }
    if (best_index[i] == kNoNeighbor) continue;  // NaN-poisoned input
    const double corr = std::clamp(best_corr[i], -1.0, 1.0);
    const double v = two_m * (1.0 - corr);
    profile.distances[i] = std::sqrt(v > 0.0 ? v : 0.0);
    profile.indices[i] = best_index[i];
  }
  return profile;
}

Result<MatrixProfile> ComputeAbJoinMpx(
    const std::vector<double>& query_series,
    const std::vector<double>& reference_series, std::size_t m,
    MpPrecision precision) {
  std::size_t nq = 0, nr = 0;
  TSAD_RETURN_IF_ERROR(profile_internal::ValidateAbJoin(
      query_series.size(), reference_series.size(), m, &nq, &nr));
  const bool float32 = precision == MpPrecision::kFloat32;

  const MpxSide qs = BuildMpxSide(query_series, m, nq, float32);
  const MpxSide rs = BuildMpxSide(reference_series, m, nr, float32);

  // The nq x nr rectangle as two diagonal half-spaces: sweep 1 covers
  // reference index >= query index (d = j - i in [0, nr)) updating the
  // query side as side A; sweep 2 covers the transposed strict half
  // (d = i - j in [1, nq), A = reference) updating the query side as
  // side B. Every (i, j) pair lands in exactly one sweep.
  std::vector<CrossSweep> sweeps;
  sweeps.push_back(
      {&qs, &query_series, nq, &rs, &reference_series, nr, 0, nr, true});
  if (nq > 1) {
    sweeps.push_back(
        {&rs, &reference_series, nr, &qs, &query_series, nq, 1, nq, false});
  }

  std::vector<double> best_corr;
  std::vector<std::size_t> best_index;
  TSAD_RETURN_IF_ERROR(
      RunCrossSweeps(sweeps, m, float32, nq, &best_corr, &best_index));

  // Correlation -> distance with the SCAMP flat cases patched in. A
  // flat query subsequence sits at distance 0 from the LOWEST flat
  // reference index (exactly the neighbor STOMP's serial lowest-index
  // argmin picks), else at sqrt(2m) from whatever dynamic reference won
  // the all-zero-correlation race (also index 0, since +/-0 ties break
  // to the lower index).
  const double two_m = 2.0 * static_cast<double>(m);
  const double sqrt_two_m = std::sqrt(two_m);
  MatrixProfile profile;
  profile.subsequence_length = m;
  profile.distances.assign(nq, std::numeric_limits<double>::infinity());
  profile.indices.assign(nq, kNoNeighbor);
  for (std::size_t i = 0; i < nq; ++i) {
    if (qs.inv[i] == 0.0) {
      if (!rs.flat_indices.empty()) {
        profile.distances[i] = 0.0;
        profile.indices[i] = rs.flat_indices.front();
      } else if (best_index[i] != kNoNeighbor) {
        profile.distances[i] = sqrt_two_m;
        profile.indices[i] = best_index[i];
      }
      continue;
    }
    if (best_index[i] == kNoNeighbor) continue;  // NaN-poisoned input
    const double corr = std::clamp(best_corr[i], -1.0, 1.0);
    const double v = two_m * (1.0 - corr);
    profile.distances[i] = std::sqrt(v > 0.0 ? v : 0.0);
    profile.indices[i] = best_index[i];
  }
  return profile;
}

Result<MatrixProfile> ComputeLeftMatrixProfileMpx(
    const std::vector<double>& series, std::size_t m, std::size_t exclusion,
    MpPrecision precision) {
  std::size_t count = 0;
  TSAD_RETURN_IF_ERROR(profile_internal::ValidateLeftProfile(
      series.size(), m, &exclusion, &count));
  const bool float32 = precision == MpPrecision::kFloat32;

  const MpxSide side = BuildMpxSide(series, m, count, float32);

  // One b-side sweep of the series against itself over the causal
  // diagonals d > exclusion: pair (o, o + d) updates entry o + d with
  // past neighbor o. Entries below exclusion + 1 never appear as o + d
  // and keep the +inf / kNoNeighbor contract.
  const std::size_t min_diag = exclusion + 1;
  std::vector<CrossSweep> sweeps;
  if (min_diag < count) {
    sweeps.push_back(
        {&side, &series, count, &side, &series, count, min_diag, count,
         false});
  }

  std::vector<double> best_corr;
  std::vector<std::size_t> best_index;
  TSAD_RETURN_IF_ERROR(
      RunCrossSweeps(sweeps, m, float32, count, &best_corr, &best_index));

  const double two_m = 2.0 * static_cast<double>(m);
  const double sqrt_two_m = std::sqrt(two_m);
  MatrixProfile profile;
  profile.subsequence_length = m;
  profile.distances.assign(count, std::numeric_limits<double>::infinity());
  profile.indices.assign(count, kNoNeighbor);
  for (std::size_t i = min_diag; i < count; ++i) {
    if (side.inv[i] == 0.0) {
      // Lowest PAST flat (j + exclusion + 1 <= i), else sqrt(2m)
      // against the dynamic winner of the zero-correlation race.
      const std::vector<std::size_t>& flat = side.flat_indices;
      if (!flat.empty() && flat.front() + min_diag <= i) {
        profile.distances[i] = 0.0;
        profile.indices[i] = flat.front();
      } else if (best_index[i] != kNoNeighbor) {
        profile.distances[i] = sqrt_two_m;
        profile.indices[i] = best_index[i];
      }
      continue;
    }
    if (best_index[i] == kNoNeighbor) continue;
    const double corr = std::clamp(best_corr[i], -1.0, 1.0);
    const double v = two_m * (1.0 - corr);
    profile.distances[i] = std::sqrt(v > 0.0 ? v : 0.0);
    profile.indices[i] = best_index[i];
  }
  return profile;
}

}  // namespace tsad
