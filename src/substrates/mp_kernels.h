// Kernel-variant registry for the matrix-profile engines.
//
// The hot inner loops of both batch kernels and the streaming MPX
// substrate are compiled once per ISA tier (scalar/SSE2/AVX2/AVX-512)
// in dedicated translation units carrying per-TU -msse2/-mavx2/
// -mavx512f flags, and selected at runtime through this registry via
// common/cpu_features.h. The default build stays portable: baseline
// TUs never emit wide-SIMD instructions, and a variant only runs after
// CPUID confirms the host supports its tier.
//
// Bit-identity contract (exact tier): every variant of the same
// operation produces bit-identical results to the scalar baseline on
// non-NaN inputs, at every thread count. This holds because
//  * all packed ops used (add/sub/mul/div/sqrt/min/max, blends) are
//    IEEE correctly rounded per lane — the EXACT double of the scalar
//    chain;
//  * variant TUs compile with -ffp-contract=off, so no mul+add is
//    fused into an FMA even where the ISA has one (AVX-512F does);
//  * each diagonal's running covariance stays in one vector lane, and
//    every O(m) covariance seed is computed by the ONE shared scalar
//    helper below, compiled once in the baseline TU;
//  * profile updates are order-independent lexicographic maxima
//    (higher correlation wins, ties to the lower neighbor index), so
//    visiting candidates in vector-group order instead of scalar order
//    cannot change the winner.
// The float32 MPX tier is likewise bit-identical ACROSS tiers (same
// float ops per lane, widened to double exactly at update time); it
// differs from the exact tier by design and is certified by a
// tolerance contract instead (tests/substrates/profile_equivalence.h).

#ifndef TSAD_SUBSTRATES_MP_KERNELS_H_
#define TSAD_SUBSTRATES_MP_KERNELS_H_

#include <cstddef>

#include "common/cpu_features.h"

namespace tsad {

/// Arguments of the hoisted STOMP row scan: fill dist[j] for j in
/// [begin, end) with sqrt(max(0, 2m*(1 - clamp(corr)))) where
/// corr = (qt[j] - m_mean_i*means[j]) / (m_std_i*stds[j]). The caller
/// (matrix_profile.cc) owns the flat-row fast path and the flat-column
/// patch; variants only run the branch-free arithmetic chain.
struct StompFillArgs {
  const double* qt = nullptr;
  const double* means = nullptr;
  const double* stds = nullptr;
  double m_mean_i = 0.0;
  double m_std_i = 0.0;
  double two_m = 0.0;
  std::size_t begin = 0;
  std::size_t end = 0;
  double* dist = nullptr;
};
using StompFillFn = void (*)(const StompFillArgs&);

/// One (row block, diagonal range) cell of the batch MPX traversal:
/// for every diagonal d in [d_begin, d_end), seed the covariance of
/// pair (r0, r0+d) with MpxSeedCov, then advance it through offsets
/// o in (r0, min(r1, count-d)) by the rank-2 ddf/ddg recurrence,
/// updating local_corr/local_index on both the row side (entry o,
/// neighbor o+d) and the column side (entry o+d, neighbor o) with the
/// lexicographic-max rule. Diagonals with r0 >= count-d are skipped.
/// The caller owns the tile loop, row-block loop, deadline polls, and
/// the cross-tile merge.
struct MpxBlockArgs {
  const double* series = nullptr;
  const double* means = nullptr;
  const double* ddf = nullptr;
  const double* ddg = nullptr;
  const double* inv = nullptr;
  std::size_t m = 0;
  std::size_t count = 0;
  std::size_t r0 = 0;      // row-block start offset
  std::size_t r1 = 0;      // row-block end bound (exclusive)
  std::size_t d_begin = 0;
  std::size_t d_end = 0;
  double* local_corr = nullptr;
  std::size_t* local_index = nullptr;
};
using MpxBlockFn = void (*)(const MpxBlockArgs&);

/// Float32 fast-path version of MpxBlockArgs: the ddf/ddg/inv tracks
/// are float, the covariance recurrence runs in float, and each
/// correlation is widened to double (exact) at update time. Seeds are
/// still the shared double MpxSeedCov, cast to float once per block —
/// with the caller's shorter float row block, drift stays within the
/// certified tolerance contract.
struct MpxBlockF32Args {
  const double* series = nullptr;
  const double* means = nullptr;
  const float* ddf = nullptr;
  const float* ddg = nullptr;
  const float* inv = nullptr;
  std::size_t m = 0;
  std::size_t count = 0;
  std::size_t r0 = 0;
  std::size_t r1 = 0;
  std::size_t d_begin = 0;
  std::size_t d_end = 0;
  double* local_corr = nullptr;
  std::size_t* local_index = nullptr;
};
using MpxBlockF32Fn = void (*)(const MpxBlockF32Args&);

/// One (row block, diagonal range) cell of a CROSS-join MPX traversal
/// (AB-join or left profile): diagonal d pairs offset o of side A with
/// offset o + d of side B, valid while o < count_a and o + d < count_b,
/// i.e. o < min(count_a, count_b - d) — non-increasing in d, so the
/// same break-on-short-diagonal walk as the self-join applies. The
/// covariance recurrence is the rank-2 cross form
///   c += ddf_a[o] * ddg_b[o + d] + ddf_b[o + d] * ddg_a[o],
/// seeded per block by MpxSeedCovCross. Unlike the self-join, only ONE
/// side's profile is updated: the `mpx_cross_a` variant updates entry o
/// (neighbor o + d), `mpx_cross_b` updates entry o + d (neighbor o) —
/// AB-joins run one sweep of each over the two diagonal half-spaces,
/// the (causal) left profile runs only the b side. local_corr and
/// local_index are indexed by the UPDATED side's offsets.
struct MpxCrossBlockArgs {
  const double* series_a = nullptr;
  const double* means_a = nullptr;
  const double* ddf_a = nullptr;
  const double* ddg_a = nullptr;
  const double* inv_a = nullptr;
  std::size_t count_a = 0;
  const double* series_b = nullptr;
  const double* means_b = nullptr;
  const double* ddf_b = nullptr;
  const double* ddg_b = nullptr;
  const double* inv_b = nullptr;
  std::size_t count_b = 0;
  std::size_t m = 0;
  std::size_t r0 = 0;      // offset-block start (side-A index space)
  std::size_t r1 = 0;      // offset-block end bound (exclusive)
  std::size_t d_begin = 0;
  std::size_t d_end = 0;
  double* local_corr = nullptr;
  std::size_t* local_index = nullptr;
};
using MpxCrossBlockFn = void (*)(const MpxCrossBlockArgs&);

/// Float32 cross-join block: float recurrence tracks on both sides,
/// double series/means for the per-block seeds — the same containment
/// scheme as MpxBlockF32Args. The cross float path intentionally has NO
/// per-tier vector variants: it always runs the shared scalar ranges
/// below (trivially bit-identical across ISA tiers), trading join-side
/// float throughput for zero extra variant surface — joins are O(nq*nr)
/// once per request, not the self-join's O(n^2) inner loop.
struct MpxCrossBlockF32Args {
  const double* series_a = nullptr;
  const double* means_a = nullptr;
  const float* ddf_a = nullptr;
  const float* ddg_a = nullptr;
  const float* inv_a = nullptr;
  std::size_t count_a = 0;
  const double* series_b = nullptr;
  const double* means_b = nullptr;
  const float* ddf_b = nullptr;
  const float* ddg_b = nullptr;
  const float* inv_b = nullptr;
  std::size_t count_b = 0;
  std::size_t m = 0;
  std::size_t r0 = 0;
  std::size_t r1 = 0;
  std::size_t d_begin = 0;
  std::size_t d_end = 0;
  double* local_corr = nullptr;
  std::size_t* local_index = nullptr;
};

/// The streaming MPX per-push lag advance (StreamingMpx::Push's hot
/// loop): for every tracked lag k in [0, nlags), with lag =
/// exclusion+1+k, i = j-lag, il = i-base, advance diag_cov[k] by the
/// rank-2 recurrence (or re-seed with MpxSeedCov when (j+lag) % reseed
/// == 0), update the right profile of il on strict improvement, and
/// race the pair for the new subsequence's left best (ties to the
/// lower i). best/best_i are in/out. Opening the newly joinable lag
/// stays with the caller.
struct MpxAdvanceLagsArgs {
  const double* x = nullptr;      // retained points, local-indexed
  const double* means = nullptr;  // per retained subsequence
  const double* ddf = nullptr;
  const double* ddg = nullptr;
  const double* inv = nullptr;
  double* diag_cov = nullptr;     // [0, nlags)
  double* right_corr = nullptr;   // local-indexed
  std::size_t* right_idx = nullptr;
  std::size_t m = 0;
  std::size_t j = 0;    // global index of the new subsequence
  std::size_t jl = 0;   // its local index
  std::size_t base = 0; // global index of local 0
  std::size_t exclusion = 0;
  std::size_t nlags = 0;
  std::size_t reseed = 0;  // kStreamingMpxReseed
  double inv_j = 0.0;
  double best = 0.0;          // in/out: left-best correlation
  std::size_t best_i = 0;     // in/out: left-best global index
};
using MpxAdvanceLagsFn = void (*)(MpxAdvanceLagsArgs&);

/// One length layer of a pan-profile block cell (PanBlockArgs): the
/// per-length stat tracks plus this worker's local profile.
/// `local_index` is nullptr in bound mode (plain per-entry max, no
/// neighbor race).
struct PanLayerArgs {
  const double* means = nullptr;
  const double* inv = nullptr;  // muinvn inverse norms, 0 = flat
  double* local_corr = nullptr;
  std::size_t* local_index = nullptr;  // nullptr: bound mode
  std::size_t m = 0;
  std::size_t count = 0;
  std::size_t exclusion = 0;
};

/// One (diagonal, offset block, length chunk) cell of the pan-profile
/// sweep (substrates/pan_profile.h): seed the chunk-base sliding dot at
/// offset r0 and slide it across the block (PanSeedSlideBase — the ONE
/// shared scalar chain), then per layer (m strictly ascending) advance
/// every offset's dot through the length recurrence qt_{m+1} = qt_m +
/// x[o+m] * x[o+d+m], recover the centered correlations into corr_buf,
/// and race them into the layer's local profile — lexicographic in
/// track mode, plain max in bound mode. Layers stop at the first
/// inadmissible one (counts shrink and exclusions grow with m). The
/// caller owns the tile/chunk/diagonal/block loops and deadline polls.
struct PanBlockArgs {
  const double* x = nullptr;  // raw series
  const PanLayerArgs* layers = nullptr;  // one chunk, m strictly ascending
  std::size_t num_layers = 0;
  std::size_t d = 0;   // diagonal
  std::size_t r0 = 0;  // block start offset
  std::size_t r1 = 0;  // block end bound (exclusive)
  double* qt_buf = nullptr;    // caller scratch, >= r1 - r0
  double* corr_buf = nullptr;  // caller scratch, >= r1 - r0
};
using PanBlockFn = void (*)(const PanBlockArgs&);

/// One exact refinement row of the pan discord sweep: locally-centered
/// covariances of the query subsequence at `pos` against EVERY
/// subsequence — out[j] = MpxSeedCov(series, means, pos, j, m), the
/// O(n*m) direct form of a MASS row. Fully accurate (no uncentered
/// cancellation, no FFT rounding) and vectorized across adjacent
/// columns exactly like the kernels' group seeds.
struct PanCovRowArgs {
  const double* series = nullptr;
  const double* means = nullptr;  // per-subsequence means at length m
  std::size_t pos = 0;
  std::size_t m = 0;
  std::size_t count = 0;
  double* out = nullptr;  // >= count
};
using PanCovRowFn = void (*)(const PanCovRowArgs&);

/// One ISA tier's implementations of the dispatched operations.
struct MpKernelVariant {
  SimdTier tier = SimdTier::kScalar;
  StompFillFn stomp_fill = nullptr;
  MpxBlockFn mpx_block = nullptr;
  MpxBlockF32Fn mpx_block_f32 = nullptr;
  MpxCrossBlockFn mpx_cross_a = nullptr;  // update side A (entry o)
  MpxCrossBlockFn mpx_cross_b = nullptr;  // update side B (entry o + d)
  MpxAdvanceLagsFn mpx_advance_lags = nullptr;
  PanBlockFn pan_block = nullptr;
  PanCovRowFn pan_cov_row = nullptr;
};

/// The variant for a specific tier. On non-x86 builds every tier maps
/// to the scalar variant (cpu_features never detects or admits a wider
/// tier there, so only forced-tier tests would even ask).
const MpKernelVariant& KernelVariantFor(SimdTier tier);

/// KernelVariantFor(ActiveSimdTier()) — what the kernels actually run.
const MpKernelVariant& ActiveKernelVariant();

// ---------------------------------------------------------------------------
// Shared building blocks. These are compiled ONCE, in the baseline-ISA
// mp_kernels.cc TU, and called from every variant: the scalar variant
// IS these helpers, and the vector variants use them for covariance
// seeds, loop tails, and partial vector groups — which is what makes
// the exact tier bit-identical across tiers.
// ---------------------------------------------------------------------------

/// Locally-centered O(m) covariance of the subsequence pair (a, b):
/// sum_k (series[a+k]-means[a]) * (series[b+k]-means[b]), accumulated
/// left to right. The ONE seed every MPX path (batch exact, batch
/// float32 before narrowing, streaming re-seed) uses.
double MpxSeedCov(const double* series, const double* means, std::size_t a,
                  std::size_t b, std::size_t m);

/// Cross-series variant of MpxSeedCov: the locally-centered O(m)
/// covariance of side-A subsequence `a` against side-B subsequence `b`,
/// with the EXACT per-k operation chain of MpxSeedCov (so a cross seed
/// over a == b sides reproduces the self-join seed bit for bit).
double MpxSeedCovCross(const double* series_a, const double* means_a,
                       const double* series_b, const double* means_b,
                       std::size_t a, std::size_t b, std::size_t m);

/// The scalar STOMP fill over [begin, args.end) — the shared tail of
/// every vector variant and the whole body of the scalar one (the
/// single home of what used to be duplicated after matrix_profile.cc's
/// inline SSE2 block).
void FillRowDistancesTail(const StompFillArgs& args, std::size_t begin);

/// Scalar MpxBlock over diagonals [d_begin, d_end) of args' row block.
void MpxBlockScalarRange(const MpxBlockArgs& args, std::size_t d_begin,
                         std::size_t d_end);

/// Scalar float32 MpxBlock over diagonals [d_begin, d_end).
void MpxBlockF32ScalarRange(const MpxBlockF32Args& args, std::size_t d_begin,
                            std::size_t d_end);

/// Scalar cross-join block over diagonals [d_begin, d_end), updating
/// side A (entry o, neighbor o + d).
void MpxCrossBlockScalarRangeA(const MpxCrossBlockArgs& args,
                               std::size_t d_begin, std::size_t d_end);

/// Scalar cross-join block updating side B (entry o + d, neighbor o).
void MpxCrossBlockScalarRangeB(const MpxCrossBlockArgs& args,
                               std::size_t d_begin, std::size_t d_end);

/// Scalar float32 cross-join blocks — the ONLY float cross
/// implementations (every ISA tier runs these; see MpxCrossBlockF32Args).
void MpxCrossBlockF32ScalarRangeA(const MpxCrossBlockF32Args& args,
                                  std::size_t d_begin, std::size_t d_end);
void MpxCrossBlockF32ScalarRangeB(const MpxCrossBlockF32Args& args,
                                  std::size_t d_begin, std::size_t d_end);

/// Scalar lag advance over lags [k_begin, k_end).
void MpxAdvanceLagsScalarRange(MpxAdvanceLagsArgs& args, std::size_t k_begin,
                               std::size_t k_end);

/// Seed args' chunk-base sliding dot at offset r0 (O(m) left-to-right
/// uncentered product at m = layers[0].m) and slide it across the
/// block: on return qt_buf[o - r0] = dot(x[o..o+m), x[o+d..o+d+m)) for
/// every o in [r0, r1). Compiled once here and called by EVERY pan
/// variant — the serial slide chain is the pan engine's bit-identity
/// anchor, the role MpxSeedCov plays for the MPX kernels.
void PanSeedSlideBase(const PanBlockArgs& args);

/// The track-mode profile race from buffered correlations: for each
/// offset o in [r0, end), lexicographic max on the row side (entry o,
/// neighbor o + d) then the column side (entry o + d, neighbor o).
/// Shared by the scalar variant and every vector variant — the race is
/// branchy and rarely wins, so it stays scalar at every tier.
void PanUpdateTrackRange(const PanLayerArgs& layer, const double* corr_buf,
                         std::size_t r0, std::size_t end, std::size_t d);

/// The whole scalar pan block cell: PanSeedSlideBase plus per-layer
/// scalar advance / correlation-recovery / update loops.
void PanBlockScalar(const PanBlockArgs& args);

/// Scalar cov row over columns [j_begin, j_end) — a loop of MpxSeedCov.
void PanCovRowScalarRange(const PanCovRowArgs& args, std::size_t j_begin,
                          std::size_t j_end);

/// The MPX profile update: lexicographic max (higher correlation wins,
/// ties to the lower neighbor index). Header-inline — pure comparisons,
/// no FP arithmetic, so every TU compiles it identically.
inline void MpxUpdateBest(double* corr, std::size_t* index, double candidate,
                          std::size_t row, std::size_t col) {
  if (candidate > corr[row] ||
      (candidate == corr[row] && col < index[row])) {
    corr[row] = candidate;
    index[row] = col;
  }
}

namespace mp_kernels_internal {
// Variant factories, each defined in its own per-TU-flags translation
// unit. The SSE2/AVX2/AVX-512 ones exist only in x86 builds (the
// registry references them under TSAD_MP_KERNELS_X86).
MpKernelVariant ScalarVariant();
MpKernelVariant Sse2Variant();
MpKernelVariant Avx2Variant();
MpKernelVariant Avx512Variant();
}  // namespace mp_kernels_internal

}  // namespace tsad

#endif  // TSAD_SUBSTRATES_MP_KERNELS_H_
