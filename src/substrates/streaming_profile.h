// Online (STAMPI-style) left matrix profile: the exact causal kernel
// behind streaming discord detection.
//
// ComputeLeftMatrixProfile() answers the same question in batch, but its
// STOMP driver seeds row blocks with FFT passes over the WHOLE series —
// so the last-ulp rounding of a score at time t depends on points that
// arrive after t. That is fine for offline analysis and fatal for
// serving, where the contract is "replaying the stream point by point
// reproduces the batch scores byte for byte". This kernel therefore
// defines the canonical causal computation: one O(m) direct dot product
// per row plus the O(1)-per-entry STOMP recurrence, rolling window
// statistics accumulated in arrival order, and the same
// ZNormPairDistance / lowest-index tie-break as the batch drivers.
// StreamingDiscordDetector::Score() replays through this kernel, which
// makes the incremental and batch paths bit-identical by construction
// (and agree with the FFT-seeded ComputeLeftMatrixProfile to ~1e-9).
//
// Costs, per pushed point: O(t) time (the recurrence plus the left
// neighbor scan) and O(1) amortized appends; total O(n^2) time and O(n)
// memory over a stream of n points — the same asymptotics as the batch
// STOMP join, paid incrementally.

#ifndef TSAD_SUBSTRATES_STREAMING_PROFILE_H_
#define TSAD_SUBSTRATES_STREAMING_PROFILE_H_

#include <cstddef>
#include <limits>
#include <optional>
#include <vector>

#include "common/status.h"
#include "common/wire.h"
#include "substrates/matrix_profile.h"

namespace tsad {

/// Incremental left matrix profile over an append-only stream.
class OnlineLeftProfile {
 public:
  /// One finished left-profile entry: the subsequence starting at
  /// `subsequence` (which completed at point subsequence + m - 1), its
  /// distance to the nearest strictly-past neighbor, and that neighbor's
  /// index. Entries whose exclusion zone leaves no eligible neighbor
  /// carry +inf / kNoNeighbor, exactly like the batch profile.
  struct Entry {
    std::size_t subsequence = 0;
    double distance = std::numeric_limits<double>::infinity();
    std::size_t neighbor = kNoNeighbor;
  };

  /// `m` >= 2 is the subsequence length (asserted); `exclusion` defaults
  /// to the batch convention m/2 when SIZE_MAX.
  explicit OnlineLeftProfile(
      std::size_t m,
      std::size_t exclusion = std::numeric_limits<std::size_t>::max());

  /// Appends the next point. Returns the entry of the subsequence that
  /// completes at this point, or nullopt while fewer than m points have
  /// been seen.
  std::optional<Entry> Push(double value);

  std::size_t points() const { return x_.size(); }
  std::size_t subsequences() const { return means_.size(); }
  std::size_t subsequence_length() const { return m_; }
  std::size_t exclusion() const { return exclusion_; }

  /// Bit-exact state serialization (for serving snapshots). Restore
  /// requires a kernel constructed with the same m/exclusion and
  /// returns InvalidArgument on mismatch.
  void Serialize(ByteWriter* writer) const;
  Status Deserialize(ByteReader* reader);

  /// Bytes held by the kernel's history and rolling-statistics buffers
  /// (at capacity). Grows O(n) with the stream — this is what makes the
  /// serving engine's memory budget bite for profile-based detectors
  /// (contrast StreamingMpx, whose footprint is constant). Always
  /// <= MemoryBytesBound(m, points()): the enforced upper bound.
  std::size_t MemoryBytes() const {
    return (x_.capacity() + means_.capacity() + stds_.capacity() +
            qt_.capacity()) *
               sizeof(double) +
           (sums_.capacity() + sq_.capacity()) * sizeof(long double);
  }

  /// Upper bound on MemoryBytes() after `points` pushes into a kernel
  /// of subsequence length `m`. Every buffer is an append-only
  /// std::vector, so its capacity is bounded by twice its size (the
  /// libstdc++/libc++ geometric growth factor doubles at most):
  /// 2 * (history + 3 per-subsequence doubles + 2 prefix-total
  /// long-double arrays of points + 1). Documented AND enforced — the
  /// substrate tests assert MemoryBytes() <= MemoryBytesBound() along
  /// a growing stream, so serving capacity planning can trust it.
  static std::size_t MemoryBytesBound(std::size_t m, std::size_t points) {
    const std::size_t subs = points >= m ? points - m + 1 : 0;
    return 2 * ((points + 3 * subs) * sizeof(double) +
                2 * (points + 1) * sizeof(long double));
  }

 private:
  std::size_t m_;
  std::size_t exclusion_;
  std::vector<double> x_;             // full history
  std::vector<long double> sums_;     // prefix sums, size x_.size() + 1
  std::vector<long double> sq_;       // prefix square sums
  std::vector<double> means_;         // per-subsequence rolling stats
  std::vector<double> stds_;
  std::vector<double> qt_;            // dot products of the latest row
};

}  // namespace tsad

#endif  // TSAD_SUBSTRATES_STREAMING_PROFILE_H_
