#include "substrates/sliding_window.h"

#include <cassert>
#include <cmath>

namespace tsad {

WindowStats ComputeWindowStats(const std::vector<double>& x, std::size_t m) {
  WindowStats stats;
  const std::size_t n = x.size();
  if (m == 0 || m > n) return stats;
  const std::size_t count = n - m + 1;
  stats.means.resize(count);
  stats.stds.resize(count);

  std::vector<long double> sums(n + 1, 0.0L), sq(n + 1, 0.0L);
  for (std::size_t i = 0; i < n; ++i) {
    sums[i + 1] = sums[i] + x[i];
    sq[i + 1] = sq[i] + static_cast<long double>(x[i]) * x[i];
  }
  const long double dm = static_cast<long double>(m);
  for (std::size_t i = 0; i < count; ++i) {
    const long double s = sums[i + m] - sums[i];
    const long double ss = sq[i + m] - sq[i];
    const long double mean = s / dm;
    long double var = ss / dm - mean * mean;
    if (var < 0.0L) var = 0.0L;
    stats.means[i] = static_cast<double>(mean);
    stats.stds[i] = std::sqrt(static_cast<double>(var));
  }
  return stats;
}

std::vector<double> Subsequence(const std::vector<double>& x,
                                std::size_t start, std::size_t m) {
  assert(start + m <= x.size());
  return std::vector<double>(
      x.begin() + static_cast<std::ptrdiff_t>(start),
      x.begin() + static_cast<std::ptrdiff_t>(start + m));
}

std::vector<std::pair<std::size_t, std::size_t>> FindConstantRuns(
    const std::vector<double>& x, std::size_t min_length, double tolerance) {
  std::vector<std::pair<std::size_t, std::size_t>> runs;
  const std::size_t n = x.size();
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i + 1;
    while (j < n && std::fabs(x[j] - x[j - 1]) <= tolerance) ++j;
    if (j - i >= min_length) runs.emplace_back(i, j);
    i = j;
  }
  return runs;
}

}  // namespace tsad
