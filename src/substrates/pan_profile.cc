#include "substrates/pan_profile.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <mutex>
#include <numeric>
#include <string>
#include <vector>

#include "common/parallel.h"
#include "robustness/deadline.h"
#include "substrates/mp_kernels.h"
#include "substrates/profile_internal.h"
#include "substrates/sliding_window.h"

namespace tsad {

namespace {

// Diagonals per ParallelFor work item — the determinism grain, exactly
// like the MPX tile: a diagonal's sliding dot lives entirely inside one
// tile, so per-pair values are independent of the tile->thread mapping.
constexpr std::size_t kPanDiagTile = 128;

// Offsets per cache block. Within a block the engine holds one running
// dot per offset (qt_buf) plus the per-length mean/inv/profile slices;
// the block boundary is also where each (chunk, diagonal) re-seeds its
// dot with a direct O(m) product, containing slide/advance rounding
// drift to one block (the same role kMpxRowBlock plays).
constexpr std::size_t kPanRowBlock = 1024;

// Lengths per chunk: the stats slices a block touches are
// 2 sides * (means + inv + profile) * kPanRowBlock * 8 bytes ~= 48 KiB
// per length, so 8 lengths (~384 KiB) stay cache-resident while the
// chunk's diagonals stream through them. Each chunk seeds its own dot
// at its first length instead of advancing from the previous chunk,
// which keeps chunks independent (and the seed is amortized over the
// block's offsets).
constexpr std::size_t kPanLengthChunk = 8;

// Conditioning budget of the discord pruning rule, in correlation
// units: the uncentered-dot bound phase can misjudge a correlation by
// up to ~1e-4 on inputs whose level dwarfs their structure (see the
// header note), so refinement only stops once a bound falls this far
// below best-so-far. On well-conditioned data the slack merely admits
// a few extra exact rows.
constexpr double kPanPruneCorrMargin = 1e-3;

// The mutual-NN tie width kPanTieCorrEps lives in the header (shared
// with MerlinSweepPerLength); it is far below the pruning margin, so
// epsilon-tied candidates are never pruned before refinement sees them.

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

// Per-length precompute: rolling stats (the same ComputeWindowStats
// moments every kernel classifies flats from), muinvn inverse norms
// (0 for flats), exclusion and subsequence count.
struct PanLayer {
  std::size_t m = 0;
  std::size_t count = 0;
  std::size_t exclusion = 0;
  WindowStats stats;
  std::vector<double> inv;
  std::vector<std::size_t> flat_indices;
};

std::vector<PanLayer> BuildLayers(const std::vector<double>& series,
                                  const std::vector<std::size_t>& lengths) {
  std::vector<PanLayer> layers(lengths.size());
  for (std::size_t l = 0; l < lengths.size(); ++l) {
    PanLayer& layer = layers[l];
    layer.m = lengths[l];
    layer.count = NumSubsequences(series.size(), layer.m);
    layer.exclusion = DefaultSelfJoinExclusion(layer.m);
    layer.stats = ComputeWindowStats(series, layer.m);
    const double sqrt_m = std::sqrt(static_cast<double>(layer.m));
    layer.inv.resize(layer.count);
    for (std::size_t i = 0; i < layer.count; ++i) {
      if (profile_internal::IsFlat(layer.stats.means[i],
                                   layer.stats.stds[i])) {
        layer.inv[i] = 0.0;
        layer.flat_indices.push_back(i);
      } else {
        layer.inv[i] = 1.0 / (layer.stats.stds[i] * sqrt_m);
      }
    }
  }
  return layers;
}

// Same SCAMP tie-break helper as the MPX driver: lowest flat index
// outside i's exclusion zone, or kNoNeighbor.
std::size_t LowestFlatOutsideExclusion(const std::vector<std::size_t>& flat,
                                       std::size_t i, std::size_t exclusion) {
  if (flat.empty()) return kNoNeighbor;
  if (i > exclusion && flat.front() < i - exclusion) return flat.front();
  const auto it = std::upper_bound(flat.begin(), flat.end(), i + exclusion);
  return it == flat.end() ? kNoNeighbor : *it;
}

// The shared multi-length diagonal sweep. Every `stride`-th admissible
// diagonal is walked once per length chunk; for each (pair, length) the
// centered correlation is recovered from the running uncentered dot and
// raced into the per-length local profiles, which merge lexicographically
// (track_indices) or by plain max (bound mode — the maximum over a
// subset of candidates, i.e. a lower bound on the true best correlation
// = an upper bound on the true NN distance). The per-cell inner loops
// (chunk-base seed/slide, per-layer advance/correlation/update) run
// through the runtime-dispatched kernel registry (mp_kernels.h), so
// the sweep uses the same ISA tier — and carries the same cross-tier
// bit-identity contract — as the per-length MPX kernels.
Status SweepPan(const std::vector<double>& x,
                const std::vector<PanLayer>& layers, std::size_t stride,
                bool track_indices,
                std::vector<std::vector<double>>* best_corr,
                std::vector<std::vector<std::size_t>>* best_index) {
  const std::size_t num_layers = layers.size();
  best_corr->assign(num_layers, {});
  if (track_indices) best_index->assign(num_layers, {});
  for (std::size_t l = 0; l < num_layers; ++l) {
    (*best_corr)[l].assign(layers[l].count, kNegInf);
    if (track_indices) {
      (*best_index)[l].assign(layers[l].count, kNoNeighbor);
    }
  }

  // Diagonal grid: every stride-th diagonal admissible for the SMALLEST
  // length; larger lengths skip the prefix their exclusion zone covers.
  const std::size_t count0 = layers.front().count;
  const std::size_t d_min = layers.front().exclusion + 1;
  if (d_min >= count0) return Status::OK();
  const std::size_t num_diags = (count0 - d_min + stride - 1) / stride;
  const std::size_t num_tiles = (num_diags + kPanDiagTile - 1) / kPanDiagTile;

  std::mutex merge_mutex;
  const std::size_t workers = std::min<std::size_t>(
      num_tiles, std::max<std::size_t>(ParallelThreads(), 1) * 4);
  const PanBlockFn pan_block = ActiveKernelVariant().pan_block;

  return ParallelFor(0, workers, [&](std::size_t w) -> Status {
    std::vector<std::vector<double>> local_corr(num_layers);
    std::vector<std::vector<std::size_t>> local_index(num_layers);
    std::vector<PanLayerArgs> views(num_layers);
    for (std::size_t l = 0; l < num_layers; ++l) {
      local_corr[l].assign(layers[l].count, kNegInf);
      if (track_indices) local_index[l].assign(layers[l].count, kNoNeighbor);
      views[l].means = layers[l].stats.means.data();
      views[l].inv = layers[l].inv.data();
      views[l].local_corr = local_corr[l].data();
      views[l].local_index = track_indices ? local_index[l].data() : nullptr;
      views[l].m = layers[l].m;
      views[l].count = layers[l].count;
      views[l].exclusion = layers[l].exclusion;
    }
    std::vector<double> qt_buf(kPanRowBlock);
    std::vector<double> corr_buf(kPanRowBlock);
    PanBlockArgs args;
    args.x = x.data();
    args.qt_buf = qt_buf.data();
    args.corr_buf = corr_buf.data();

    for (std::size_t t = w; t < num_tiles; t += workers) {
      const std::size_t di_begin = t * kPanDiagTile;
      const std::size_t di_end = std::min(num_diags, di_begin + kPanDiagTile);
      for (std::size_t chunk = 0; chunk < num_layers;
           chunk += kPanLengthChunk) {
        const std::size_t chunk_end =
            std::min(num_layers, chunk + kPanLengthChunk);
        const PanLayer& base = layers[chunk];
        args.layers = views.data() + chunk;
        args.num_layers = chunk_end - chunk;
        for (std::size_t di = di_begin; di < di_end; ++di) {
          const std::size_t d = d_min + di * stride;
          // The chunk's base length is its most permissive: if even it
          // rejects this diagonal, the whole chunk does.
          if (base.exclusion >= d || base.count <= d) continue;
          const std::size_t max_len = base.count - d;
          args.d = d;
          for (std::size_t r0 = 0; r0 < max_len; r0 += kPanRowBlock) {
            TSAD_RETURN_IF_ERROR(CheckDeadline());
            args.r0 = r0;
            args.r1 = std::min(max_len, r0 + kPanRowBlock);
            pan_block(args);
          }
        }
      }
    }

    std::lock_guard<std::mutex> lock(merge_mutex);
    for (std::size_t l = 0; l < num_layers; ++l) {
      double* bc = (*best_corr)[l].data();
      const double* lc = local_corr[l].data();
      if (track_indices) {
        std::size_t* bi = (*best_index)[l].data();
        const std::size_t* li = local_index[l].data();
        for (std::size_t i = 0; i < layers[l].count; ++i) {
          if (lc[i] > bc[i] || (lc[i] == bc[i] && li[i] < bi[i])) {
            bc[i] = lc[i];
            bi[i] = li[i];
          }
        }
      } else {
        for (std::size_t i = 0; i < layers[l].count; ++i) {
          if (lc[i] > bc[i]) bc[i] = lc[i];
        }
      }
    }
    return Status::OK();
  });
}

Status ValidatePanRange(std::size_t n, const PanProfileConfig& config,
                        std::vector<std::size_t>* lengths) {
  if (config.step == 0) {
    return Status::InvalidArgument("pan-profile step must be >= 1");
  }
  if (config.min_length < 2 || config.min_length > config.max_length) {
    return Status::InvalidArgument(
        "bad pan-profile length range [" + std::to_string(config.min_length) +
        ", " + std::to_string(config.max_length) + "]");
  }
  // The largest length is the binding self-join constraint; every
  // smaller one has more subsequences and a smaller exclusion zone.
  std::size_t exclusion = std::numeric_limits<std::size_t>::max();
  std::size_t count = 0;
  TSAD_RETURN_IF_ERROR(profile_internal::ValidateSelfJoin(
      n, config.max_length, &exclusion, &count));
  lengths->clear();
  for (std::size_t m = config.min_length; m <= config.max_length;
       m += config.step) {
    lengths->push_back(m);
  }
  return Status::OK();
}

// Exact NN distance of the subsequence at `pos` for `layer`, with the
// m/2 trivial-match exclusion — the measurement DRAG's refinement phase
// makes, but via one dispatched DIRECT row of locally-centered
// covariances (mp_kernels.h pan_cov_row) instead of a MASS FFT pass:
// the same real value with better conditioning (each dot is centered,
// so nothing cancels), an order of magnitude cheaper at refinement's
// one-query-many-rows access pattern, and SIMD-dispatched like the
// sweep itself. Flat cases reproduce the SCAMP/PairDistance semantics
// exactly: flat-flat pairs at 0, mixed pairs at sqrt(2m).
double ExactNnDistance(const std::vector<double>& series, const PanLayer& layer,
                       std::size_t pos, PanCovRowFn cov_row,
                       std::vector<double>& scratch) {
  const double two_m = 2.0 * static_cast<double>(layer.m);
  const double sqrt_two_m = std::sqrt(two_m);
  const double inf = std::numeric_limits<double>::infinity();
  // No admissible partner at all (exclusion swallows the range) stays
  // +inf, as the MASS-row scan reported it.
  if (pos <= layer.exclusion && pos + layer.exclusion + 1 >= layer.count) {
    return inf;
  }
  const double inv_pos = layer.inv[pos];
  if (inv_pos == 0.0) {
    // Flat query: 0 against another flat, sqrt(2m) against anything
    // else — some admissible partner exists per the check above.
    return LowestFlatOutsideExclusion(layer.flat_indices, pos,
                                      layer.exclusion) != kNoNeighbor
               ? 0.0
               : sqrt_two_m;
  }
  scratch.resize(layer.count);
  PanCovRowArgs args;
  args.series = series.data();
  args.means = layer.stats.means.data();
  args.pos = pos;
  args.m = layer.m;
  args.count = layer.count;
  args.out = scratch.data();
  cov_row(args);
  double best_corr = kNegInf;
  bool flat_partner = false;
  for (std::size_t j = 0; j < layer.count; ++j) {
    const std::size_t gap = pos > j ? pos - j : j - pos;
    if (gap <= layer.exclusion) continue;
    if (layer.inv[j] == 0.0) {
      flat_partner = true;
      continue;
    }
    const double corr = scratch[j] * inv_pos * layer.inv[j];
    if (corr > best_corr) best_corr = corr;
  }
  // Distance is monotone decreasing in correlation, so the minimum over
  // dynamic partners is the distance of the best correlation; a flat
  // partner competes at exactly sqrt(2m).
  double best = flat_partner ? sqrt_two_m : inf;
  if (best_corr != kNegInf) {
    const double clamped = std::min(1.0, std::max(-1.0, best_corr));
    const double v = two_m * (1.0 - clamped);
    const double dynamic = std::sqrt(v > 0.0 ? v : 0.0);
    if (dynamic < best) best = dynamic;
  }
  return best;
}

}  // namespace

MatrixProfile PanProfile::Layer(std::size_t i) const {
  MatrixProfile profile;
  profile.distances = distances.at(i);
  profile.indices = indices.at(i);
  profile.subsequence_length = lengths.at(i);
  return profile;
}

Result<PanProfile> ComputePanProfile(const std::vector<double>& series,
                                     const PanProfileConfig& config) {
  std::vector<std::size_t> lengths;
  TSAD_RETURN_IF_ERROR(ValidatePanRange(series.size(), config, &lengths));
  const std::vector<PanLayer> layers = BuildLayers(series, lengths);

  std::vector<std::vector<double>> best_corr;
  std::vector<std::vector<std::size_t>> best_index;
  TSAD_RETURN_IF_ERROR(SweepPan(series, layers, /*stride=*/1,
                                /*track_indices=*/true, &best_corr,
                                &best_index));

  PanProfile pan;
  pan.lengths = lengths;
  pan.distances.resize(layers.size());
  pan.indices.resize(layers.size());
  for (std::size_t l = 0; l < layers.size(); ++l) {
    const PanLayer& layer = layers[l];
    const double two_m = 2.0 * static_cast<double>(layer.m);
    const double sqrt_two_m = std::sqrt(two_m);
    std::vector<double>& dist = pan.distances[l];
    std::vector<std::size_t>& idx = pan.indices[l];
    dist.assign(layer.count, std::numeric_limits<double>::infinity());
    idx = std::move(best_index[l]);
    for (std::size_t i = 0; i < layer.count; ++i) {
      if (profile_internal::IsFlat(layer.stats.means[i],
                                   layer.stats.stds[i])) {
        // SCAMP special cases, identical to the per-length kernels:
        // lowest eligible flat partner at exactly 0, else exactly
        // sqrt(2m) (keeping whichever index won the +/-0 race).
        const std::size_t nn = LowestFlatOutsideExclusion(
            layer.flat_indices, i, layer.exclusion);
        if (nn != kNoNeighbor) {
          dist[i] = 0.0;
          idx[i] = nn;
        } else {
          dist[i] = sqrt_two_m;
        }
        continue;
      }
      const double corr = best_corr[l][i];
      if (corr == kNegInf) continue;  // unreachable: validated range
      const double clamped = std::min(1.0, std::max(-1.0, corr));
      const double v = two_m * (1.0 - clamped);
      dist[i] = std::sqrt(v > 0.0 ? v : 0.0);
    }
  }
  return pan;
}

Result<std::vector<PanLengthDiscord>> PanLengthDiscords(
    const std::vector<double>& series, std::size_t min_length,
    std::size_t max_length) {
  PanProfileConfig config;
  config.min_length = min_length;
  config.max_length = max_length;
  config.step = 1;
  std::vector<std::size_t> lengths;
  TSAD_RETURN_IF_ERROR(ValidatePanRange(series.size(), config, &lengths));
  const std::vector<PanLayer> layers = BuildLayers(series, lengths);

  // Phase 1: strided bound sweep. ub_corr[l][i] is a LOWER bound on
  // entry i's best correlation at length l, i.e. an upper bound on its
  // true NN distance (entries no sampled diagonal touches stay -inf =
  // unbounded, and are refined first).
  std::vector<std::vector<double>> ub_corr;
  std::vector<std::vector<std::size_t>> unused;
  TSAD_RETURN_IF_ERROR(SweepPan(series, layers, kPanDiscordStride,
                                /*track_indices=*/false, &ub_corr, &unused));

  std::vector<PanLengthDiscord> out;
  out.reserve(layers.size());
  std::size_t prev_pos = kNoNeighbor;
  std::vector<std::size_t> order;
  const PanCovRowFn cov_row = ActiveKernelVariant().pan_cov_row;
  std::vector<double> row_scratch;
  for (std::size_t l = 0; l < layers.size(); ++l) {
    const PanLayer& layer = layers[l];
    const double two_m = 2.0 * static_cast<double>(layer.m);
    const std::vector<double>& corr = ub_corr[l];

    // Refinement order: loosest bound (lowest corr) first, ties to the
    // lower index. stable_sort keeps the index tie-break deterministic.
    order.resize(layer.count);
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::stable_sort(order.begin(), order.end(),
                     [&corr](std::size_t a, std::size_t b) {
                       return corr[a] < corr[b];
                     });

    double best_sq = kNegInf;
    double best_dist = 0.0;
    std::size_t best_pos = kNoNeighbor;
    const double margin_sq = two_m * kPanPruneCorrMargin;
    const double tie_sq = two_m * kPanTieCorrEps;
    const auto refine = [&](std::size_t pos) -> Status {
      TSAD_RETURN_IF_ERROR(CheckDeadline());
      const double d =
          ExactNnDistance(series, layer, pos, cov_row, row_scratch);
      if (!std::isfinite(d)) return Status::OK();
      const double d_sq = d * d;
      if (d_sq > best_sq + tie_sq ||
          (d_sq > best_sq - tie_sq && pos < best_pos)) {
        best_sq = d_sq;
        best_dist = d;
        best_pos = pos;
      }
      return Status::OK();
    };
    // Seed best-so-far with the previous length's discord: discords
    // drift slowly across adjacent lengths, so this usually starts the
    // scan one row from done.
    if (prev_pos != kNoNeighbor && prev_pos < layer.count) {
      TSAD_RETURN_IF_ERROR(refine(prev_pos));
    }
    for (const std::size_t i : order) {
      if (i == prev_pos) continue;  // already refined as the seed
      const double c = corr[i];
      const double ub_sq =
          c == kNegInf ? std::numeric_limits<double>::infinity()
                       : two_m * (1.0 - std::min(1.0, c));
      // Everything after i bounds even lower: p^2 <= ub^2 < best - margin
      // can neither beat nor tie the best (the margin absorbs the bound
      // phase's conditioning error), so the scan is done.
      if (ub_sq < best_sq - margin_sq) break;
      TSAD_RETURN_IF_ERROR(refine(i));
    }
    if (best_pos == kNoNeighbor) {
      return Status::Internal("no discord found at length " +
                              std::to_string(layer.m));
    }
    PanLengthDiscord d;
    d.length = layer.m;
    d.position = best_pos;
    d.distance = best_dist;
    d.normalized = best_dist / std::sqrt(static_cast<double>(layer.m));
    out.push_back(d);
    prev_pos = best_pos;
  }
  return out;
}

}  // namespace tsad
