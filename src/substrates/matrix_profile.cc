#include "substrates/matrix_profile.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <mutex>

#include "common/fft.h"
#include "common/parallel.h"
#include "common/stats.h"
#include "common/suggest.h"
#include "common/vector_ops.h"
#include "robustness/deadline.h"
#include "substrates/mp_kernels.h"
#include "substrates/mpx_kernel.h"
#include "substrates/profile_internal.h"

namespace tsad {

namespace {

// How many O(count) STOMP rows run between cooperative deadline polls.
// A row of a few thousand entries costs microseconds, so this bounds
// watchdog latency to well under a millisecond while keeping the clock
// read off the hot path.
constexpr std::size_t kDeadlinePollRows = 64;

// Row-block size for the STOMP drivers. Each block seeds its first row
// with an O(n log n) FFT pass and runs the O(1)-per-entry recurrence
// within the block, so blocks are independent and run in parallel. The
// block size is a fixed constant — NOT derived from the thread count —
// which is what makes profiles bit-identical at every thread count:
// the same rows are always computed from the same seeds.
constexpr std::size_t kStompBlockRows = 256;

// The flat-subsequence threshold and classifier live in
// profile_internal.h, shared with the MPX kernel so both kernels take
// the SCAMP special cases on exactly the same entries.
using profile_internal::IsFlat;

// Shorthand for the exported ZNormPairDistance, keeping the call sites
// below readable.
inline double PairDistance(double qt, double mean_a, double std_a,
                           double mean_b, double std_b, std::size_t m) {
  return ZNormPairDistance(qt, mean_a, std_a, mean_b, std_b, m);
}

// Drives a STOMP-style row recurrence over [0, rows) in fixed-size row
// blocks distributed across the thread pool. Within a block, rows run
// in order: the first row comes from seed_row(i) (an FFT pass), each
// later row from advance_row(i, qt) (the O(1)-per-entry update), and
// every row is handed to visit_row along with a per-block scratch
// buffer of `scratch_size` doubles (the hoisted row scans stage
// distances there; sharing one buffer per block keeps the O(n) storage
// out of the per-row path). Each worker polls the cooperative deadline
// between row batches; the submitting thread's DeadlineScope is
// propagated by ParallelFor, and the first (lowest-block) error is the
// one reported.
Status RunStompRowBlocks(
    std::size_t rows, std::size_t scratch_size,
    const std::function<std::vector<double>(std::size_t)>& seed_row,
    const std::function<void(std::size_t, std::vector<double>&)>& advance_row,
    const std::function<void(std::size_t, const std::vector<double>&,
                             std::vector<double>&)>& visit_row) {
  const std::size_t num_blocks =
      (rows + kStompBlockRows - 1) / kStompBlockRows;
  return ParallelFor(0, num_blocks, [&](std::size_t block) -> Status {
    const std::size_t row_begin = block * kStompBlockRows;
    const std::size_t row_end = std::min(rows, row_begin + kStompBlockRows);
    std::vector<double> qt_row;
    std::vector<double> scratch(scratch_size);
    for (std::size_t i = row_begin; i < row_end; ++i) {
      if ((i - row_begin) % kDeadlinePollRows == 0) {
        TSAD_RETURN_IF_ERROR(CheckDeadline());
      }
      if (i == row_begin) {
        qt_row = seed_row(i);
      } else {
        advance_row(i, qt_row);
      }
      visit_row(i, qt_row, scratch);
    }
    return Status::OK();
  });
}

// Per-side invariants of the hoisted row scans, computed once per
// profile instead of once per O(n^2) inner-loop entry: raw pointers to
// the rolling stats plus the per-subsequence flat flags (IsFlat on the
// same inputs yields the same booleans, so hoisting it cannot change
// any branch the original per-entry code would have taken). The sorted
// flat-index list drives the fix-up pass after the branch-free
// distance loop.
struct ScanSide {
  const double* means = nullptr;
  const double* stds = nullptr;
  std::vector<uint8_t> flat;
  std::vector<std::size_t> flat_indices;
};

ScanSide BuildScanSide(const WindowStats& stats) {
  ScanSide side;
  side.means = stats.means.data();
  side.stds = stats.stds.data();
  side.flat.assign(stats.size(), 0);
  for (std::size_t i = 0; i < stats.size(); ++i) {
    if (IsFlat(stats.means[i], stats.stds[i])) {
      side.flat[i] = 1;
      side.flat_indices.push_back(i);
    }
  }
  return side;
}

// Row-invariant factors of ZNormPairDistance for row subsequence i.
// Each is a left-to-right PREFIX of the exact expression the per-pair
// formula evaluates — (m * mean_i) * mean_j, (m * std_i) * std_j,
// (2 * m) * (1 - corr), sqrt(2 * m) — so reusing them changes no
// rounding anywhere.
struct RowInvariants {
  double m_mean_i;
  double m_std_i;
  bool flat_i;
};

// Fills dist[j] for j in [begin, end) with the distance of row
// subsequence i against column subsequences of `side`, bit-identical
// to calling ZNormPairDistance per entry. The branch-free div/sqrt
// chain runs through `fill` — the runtime-dispatched ISA variant the
// caller hoisted from ActiveKernelVariant() — whose packed ops are
// IEEE correctly rounded per lane, i.e. the EXACT doubles of the
// shared scalar tail (mp_kernels.h documents the contract; the
// equivalence tests assert it). Flat columns are patched after the
// main loop (their mathematically-computed values, possibly garbage
// from a ~0 std, are overwritten before anything reads them), which
// keeps the dispatched chain free of branches.
void FillRowDistances(const double* qt, const ScanSide& side,
                      const RowInvariants& row, double two_m,
                      double sqrt_two_m, std::size_t begin, std::size_t end,
                      double* dist, StompFillFn fill) {
  if (row.flat_i) {
    // Flat row: every pair is a flat-vs-flat (0) or flat-vs-dynamic
    // (max distance) case; no arithmetic needed.
    for (std::size_t j = begin; j < end; ++j) {
      dist[j] = side.flat[j] ? 0.0 : sqrt_two_m;
    }
    return;
  }
  StompFillArgs args;
  args.qt = qt;
  args.means = side.means;
  args.stds = side.stds;
  args.m_mean_i = row.m_mean_i;
  args.m_std_i = row.m_std_i;
  args.two_m = two_m;
  args.begin = begin;
  args.end = end;
  args.dist = dist;
  fill(args);
  if (!side.flat_indices.empty()) {
    auto it = std::lower_bound(side.flat_indices.begin(),
                               side.flat_indices.end(), begin);
    for (; it != side.flat_indices.end() && *it < end; ++it) {
      dist[*it] = sqrt_two_m;
    }
  }
}

// Left-to-right argmin with strict '<' — the exact tie-break (lowest j
// wins) of the original fused scan.
inline void ArgMinSegment(const double* dist, std::size_t begin,
                          std::size_t end, double& best, std::size_t& best_j) {
  for (std::size_t j = begin; j < end; ++j) {
    if (dist[j] < best) {
      best = dist[j];
      best_j = j;
    }
  }
}

}  // namespace

double ZNormPairDistance(double qt, double mean_a, double std_a, double mean_b,
                         double std_b, std::size_t m) {
  const double dm = static_cast<double>(m);
  const bool flat_a = IsFlat(mean_a, std_a);
  const bool flat_b = IsFlat(mean_b, std_b);
  if (flat_a && flat_b) return 0.0;
  if (flat_a || flat_b) return std::sqrt(2.0 * dm);
  double corr = (qt - dm * mean_a * mean_b) / (dm * std_a * std_b);
  corr = std::clamp(corr, -1.0, 1.0);
  return std::sqrt(std::max(0.0, 2.0 * dm * (1.0 - corr)));
}

std::vector<double> MassDistanceProfile(const std::vector<double>& series,
                                        const std::vector<double>& query,
                                        const WindowStats& stats) {
  const std::size_t m = query.size();
  const std::size_t count = NumSubsequences(series.size(), m);
  // Mismatched stats (e.g. computed for a different window length) are
  // a caller bug that would read past the stats arrays below. An assert
  // compiles out in release builds, so fail loudly in all modes.
  if (stats.size() != count) {
    std::fprintf(stderr,
                 "MassDistanceProfile: window stats for %zu subsequences do "
                 "not match the %zu subsequences of the series/query pair "
                 "(series %zu, query %zu) — were the stats computed with a "
                 "different window length?\n",
                 stats.size(), count, series.size(), m);
    std::abort();
  }
  if (count == 0) return {};

  const std::vector<double> qt = SlidingDotProduct(series, query);
  const double mean_q = Mean(query);
  const double std_q = StdDev(query);

  std::vector<double> dist(count);
  for (std::size_t i = 0; i < count; ++i) {
    dist[i] =
        PairDistance(qt[i], mean_q, std_q, stats.means[i], stats.stds[i], m);
  }
  return dist;
}

std::vector<double> MassDistanceProfile(const std::vector<double>& series,
                                        const std::vector<double>& query) {
  return MassDistanceProfile(series, query,
                             ComputeWindowStats(series, query.size()));
}

namespace {

// The STOMP self-join (PR 4's planned-FFT, hoisted-scan kernel),
// reached through the ComputeMatrixProfile dispatcher below. Takes an
// already-resolved exclusion zone.
Result<MatrixProfile> ComputeMatrixProfileStomp(
    const std::vector<double>& series, std::size_t m, std::size_t exclusion,
    std::size_t count) {
  const WindowStats stats = ComputeWindowStats(series, m);

  MatrixProfile mp;
  mp.subsequence_length = m;
  mp.distances.assign(count, std::numeric_limits<double>::infinity());
  mp.indices.assign(count, kNoNeighbor);

  // STOMP: row i holds qt[j] = dot(series[i, i+m), series[j, j+m)).
  // The first row of each block comes from an FFT pass; each later row
  // is an O(1)-per-entry update from the previous row. first_row (row
  // 0) is retained to seed qt_row[0] of every subsequent row (by
  // symmetry qt_i[0] = qt_0[i]). Rows scan their neighbors serially
  // left to right with a strict '<', so the tie-break (lowest j wins)
  // is independent of how rows are distributed over threads.
  //
  // Block seeds go through a SlidingDotPlan: the series' forward
  // spectrum is computed once instead of once per block, and the
  // twiddle tables once per padded size process-wide. Planned output
  // is bit-identical to SlidingDotProduct (tested exactly), so the
  // profile is unchanged.
  const SlidingDotPlan plan(series, m);
  const std::vector<double> first_row = plan.Query(Subsequence(series, 0, m));

  const ScanSide side = BuildScanSide(stats);
  const double dm = static_cast<double>(m);
  const double two_m = 2.0 * dm;
  const double sqrt_two_m = std::sqrt(2.0 * dm);
  const double* series_data = series.data();
  const StompFillFn fill = ActiveKernelVariant().stomp_fill;

  const Status status = RunStompRowBlocks(
      count, count,
      [&](std::size_t i) {
        return i == 0 ? first_row : plan.Query(Subsequence(series, i, m));
      },
      [&](std::size_t i, std::vector<double>& qt_row) {
        // Update in place, right to left, reusing qt_row from row i-1.
        // The row-constant factors series[i-1] / series[i+m-1] are
        // hoisted into locals the aliasing rules would otherwise force
        // the compiler to reload per entry.
        double* qt = qt_row.data();
        const double head = series_data[i - 1];
        const double tail = series_data[i + m - 1];
        for (std::size_t j = count - 1; j > 0; --j) {
          qt[j] = qt[j - 1] - series_data[j - 1] * head +
                  series_data[j + m - 1] * tail;
        }
        qt[0] = first_row[i];
      },
      [&](std::size_t i, const std::vector<double>& qt_row,
          std::vector<double>& dist) {
        const RowInvariants row{dm * stats.means[i], dm * stats.stds[i],
                                side.flat[i] != 0};
        double best = std::numeric_limits<double>::infinity();
        std::size_t best_j = kNoNeighbor;
        // The exclusion zone |i - j| <= exclusion splits the scan into
        // two contiguous segments, visited left to right.
        const std::size_t ex_begin = i > exclusion ? i - exclusion : 0;
        const std::size_t ex_end = std::min(count, i + exclusion + 1);
        FillRowDistances(qt_row.data(), side, row, two_m, sqrt_two_m, 0,
                         ex_begin, dist.data(), fill);
        ArgMinSegment(dist.data(), 0, ex_begin, best, best_j);
        FillRowDistances(qt_row.data(), side, row, two_m, sqrt_two_m, ex_end,
                         count, dist.data(), fill);
        ArgMinSegment(dist.data(), ex_end, count, best, best_j);
        mp.distances[i] = best;
        mp.indices[i] = best_j;
      });
  if (!status.ok()) return status;
  return mp;
}

}  // namespace

// Process-wide kernel override (the --mp-kernel flag). Relaxed atomics
// suffice: the flag is set once during CLI startup before any profile
// runs, and a racing reader would only pick a stale-but-valid kernel.
namespace {
std::atomic<int> g_mp_kernel_override{static_cast<int>(MpKernel::kAuto)};
}  // namespace

void SetMpKernelOverride(MpKernel kernel) {
  g_mp_kernel_override.store(static_cast<int>(kernel),
                             std::memory_order_relaxed);
}

MpKernel GetMpKernelOverride() {
  return static_cast<MpKernel>(
      g_mp_kernel_override.load(std::memory_order_relaxed));
}

MpKernel ResolveMpKernel(MpKernel requested, std::size_t num_subsequences) {
  if (requested != MpKernel::kAuto) return requested;
  const MpKernel override = GetMpKernelOverride();
  if (override != MpKernel::kAuto) return override;
  return num_subsequences >= kMpxAutoMinSubsequences ? MpKernel::kMpx
                                                     : MpKernel::kStomp;
}

const char* MpKernelName(MpKernel kernel) {
  switch (kernel) {
    case MpKernel::kAuto:
      return "auto";
    case MpKernel::kStomp:
      return "stomp";
    case MpKernel::kMpx:
      return "mpx";
  }
  return "auto";
}

Result<MpKernel> ParseMpKernel(const std::string& name) {
  static const std::vector<std::string> kNames = {"auto", "stomp", "mpx"};
  if (name == "auto") return MpKernel::kAuto;
  if (name == "stomp") return MpKernel::kStomp;
  if (name == "mpx") return MpKernel::kMpx;
  std::string message =
      "unknown matrix-profile kernel '" + name + "'; known: auto stomp mpx";
  const std::string suggestion = SuggestClosest(name, kNames);
  if (!suggestion.empty()) {
    message += "; did you mean '" + suggestion + "'?";
  }
  return Status::InvalidArgument(message);
}

// Process-wide precision override (the --mp-precision flag), with the
// same lazy one-shot TSAD_MP_PRECISION application as the ISA-tier
// override in common/cpu_features.cc: an explicit Set (even to kAuto)
// marks the environment consumed, the lazy path aborts loudly on an
// invalid value, and ApplyMpPrecisionEnv gives the CLI/benches a
// recoverable error instead.
namespace {
std::atomic<int> g_mp_precision_override{static_cast<int>(MpPrecision::kAuto)};
std::once_flag g_mp_precision_env_once;
std::atomic<bool> g_mp_precision_env_consumed{false};

Status ApplyMpPrecisionEnvLocked() {
  g_mp_precision_env_consumed.store(true, std::memory_order_relaxed);
  const char* env = std::getenv("TSAD_MP_PRECISION");
  if (env == nullptr || *env == '\0') return Status::OK();
  const Result<MpPrecision> parsed = ParseMpPrecision(env);
  if (!parsed.ok()) {
    return Status::InvalidArgument("TSAD_MP_PRECISION: " +
                                   parsed.status().message());
  }
  g_mp_precision_override.store(static_cast<int>(*parsed),
                                std::memory_order_relaxed);
  return Status::OK();
}
}  // namespace

void SetMpPrecisionOverride(MpPrecision precision) {
  g_mp_precision_env_consumed.store(true, std::memory_order_relaxed);
  g_mp_precision_override.store(static_cast<int>(precision),
                                std::memory_order_relaxed);
}

MpPrecision GetMpPrecisionOverride() {
  if (!g_mp_precision_env_consumed.load(std::memory_order_relaxed)) {
    std::call_once(g_mp_precision_env_once, [] {
      if (g_mp_precision_env_consumed.load(std::memory_order_relaxed)) return;
      const Status status = ApplyMpPrecisionEnvLocked();
      if (!status.ok()) {
        std::fprintf(stderr, "%s\n", status.ToString().c_str());
        std::abort();
      }
    });
  }
  return static_cast<MpPrecision>(
      g_mp_precision_override.load(std::memory_order_relaxed));
}

MpPrecision ResolveMpPrecision(MpPrecision requested) {
  if (requested != MpPrecision::kAuto) return requested;
  const MpPrecision override = GetMpPrecisionOverride();
  if (override != MpPrecision::kAuto) return override;
  return MpPrecision::kExact;
}

Status ApplyMpPrecisionEnv() {
  if (g_mp_precision_env_consumed.load(std::memory_order_relaxed)) {
    return Status::OK();
  }
  Status status = Status::OK();
  std::call_once(g_mp_precision_env_once, [&status] {
    if (g_mp_precision_env_consumed.load(std::memory_order_relaxed)) return;
    status = ApplyMpPrecisionEnvLocked();
  });
  return status;
}

Result<MpPrecision> ParseMpPrecision(const std::string& name) {
  static const std::vector<std::string> kNames = {"auto", "exact", "float32"};
  if (name == "auto") return MpPrecision::kAuto;
  if (name == "exact") return MpPrecision::kExact;
  if (name == "float32") return MpPrecision::kFloat32;
  std::string message = "unknown matrix-profile precision '" + name +
                        "'; known: auto exact float32";
  const std::string suggestion = SuggestClosest(name, kNames);
  if (!suggestion.empty()) {
    message += "; did you mean '" + suggestion + "'?";
  }
  return Status::InvalidArgument(message);
}

const char* MpPrecisionName(MpPrecision precision) {
  switch (precision) {
    case MpPrecision::kAuto:
      return "auto";
    case MpPrecision::kExact:
      return "exact";
    case MpPrecision::kFloat32:
      return "float32";
  }
  return "auto";
}

Result<MatrixProfile> ComputeMatrixProfile(
    const std::vector<double>& series, std::size_t m,
    const MatrixProfileOptions& options) {
  std::size_t exclusion = options.exclusion;
  std::size_t count = 0;
  TSAD_RETURN_IF_ERROR(
      profile_internal::ValidateSelfJoin(series.size(), m, &exclusion, &count));
  const MpPrecision precision = ResolveMpPrecision(options.precision);
  if (precision == MpPrecision::kFloat32) {
    // Only MPX has a float tier. An EXPLICIT per-call STOMP request is
    // a contradiction and fails loudly; kAuto (even with a process-
    // wide stomp override) forces MPX — the precision tier names the
    // numerics the caller wants, the kernel is the means.
    if (options.kernel == MpKernel::kStomp) {
      return Status::InvalidArgument(
          "float32 precision requires the mpx kernel (STOMP has no float "
          "tier); use --mp-kernel mpx or auto");
    }
    return ComputeMatrixProfileMpx(series, m, exclusion,
                                   MpPrecision::kFloat32);
  }
  if (ResolveMpKernel(options.kernel, count) == MpKernel::kMpx) {
    return ComputeMatrixProfileMpx(series, m, exclusion);
  }
  return ComputeMatrixProfileStomp(series, m, exclusion, count);
}

Result<MatrixProfile> ComputeMatrixProfile(const std::vector<double>& series,
                                           std::size_t m,
                                           std::size_t exclusion) {
  MatrixProfileOptions options;
  options.exclusion = exclusion;
  return ComputeMatrixProfile(series, m, options);
}

Result<MatrixProfile> ComputeMatrixProfileReference(
    const std::vector<double>& series, std::size_t m, std::size_t exclusion) {
  std::size_t count = 0;
  TSAD_RETURN_IF_ERROR(
      profile_internal::ValidateSelfJoin(series.size(), m, &exclusion, &count));

  const WindowStats stats = ComputeWindowStats(series, m);
  MatrixProfile mp;
  mp.subsequence_length = m;
  mp.distances.assign(count, std::numeric_limits<double>::infinity());
  mp.indices.assign(count, kNoNeighbor);

  const std::vector<double> first_row =
      SlidingDotProduct(series, Subsequence(series, 0, m));

  const Status status = RunStompRowBlocks(
      count, 0,
      [&](std::size_t i) {
        return i == 0 ? first_row
                      : SlidingDotProduct(series, Subsequence(series, i, m));
      },
      [&](std::size_t i, std::vector<double>& qt_row) {
        for (std::size_t j = count - 1; j > 0; --j) {
          qt_row[j] = qt_row[j - 1] - series[j - 1] * series[i - 1] +
                      series[j + m - 1] * series[i + m - 1];
        }
        qt_row[0] = first_row[i];
      },
      [&](std::size_t i, const std::vector<double>& qt_row,
          std::vector<double>&) {
        double best = std::numeric_limits<double>::infinity();
        std::size_t best_j = kNoNeighbor;
        for (std::size_t j = 0; j < count; ++j) {
          const std::size_t gap = i > j ? i - j : j - i;
          if (gap <= exclusion) continue;
          const double d =
              PairDistance(qt_row[j], stats.means[i], stats.stds[i],
                           stats.means[j], stats.stds[j], m);
          if (d < best) {
            best = d;
            best_j = j;
          }
        }
        mp.distances[i] = best;
        mp.indices[i] = best_j;
      });
  if (!status.ok()) return status;
  return mp;
}

Result<MatrixProfile> ComputeMatrixProfileNaive(
    const std::vector<double>& series, std::size_t m, std::size_t exclusion) {
  std::size_t count = 0;
  TSAD_RETURN_IF_ERROR(
      profile_internal::ValidateSelfJoin(series.size(), m, &exclusion, &count));

  MatrixProfile mp;
  mp.subsequence_length = m;
  mp.distances.assign(count, std::numeric_limits<double>::infinity());
  mp.indices.assign(count, kNoNeighbor);

  std::vector<std::vector<double>> subs(count);
  for (std::size_t i = 0; i < count; ++i) {
    subs[i] = ZNormalize(Subsequence(series, i, m));
  }
  for (std::size_t i = 0; i < count; ++i) {
    if (i % kDeadlinePollRows == 0) TSAD_RETURN_IF_ERROR(CheckDeadline());
    for (std::size_t j = 0; j < count; ++j) {
      const std::size_t gap = i > j ? i - j : j - i;
      if (gap <= exclusion) continue;
      const double d = EuclideanDistance(subs[i], subs[j]);
      if (d < mp.distances[i]) {
        mp.distances[i] = d;
        mp.indices[i] = j;
      }
    }
  }
  return mp;
}

namespace {

// The STOMP left profile (frozen row-recurrence kernel), reached
// through the ComputeLeftMatrixProfile dispatcher below. Takes an
// already-resolved exclusion zone and count.
Result<MatrixProfile> ComputeLeftMatrixProfileStomp(
    const std::vector<double>& series, std::size_t m, std::size_t exclusion,
    std::size_t count) {
  const WindowStats stats = ComputeWindowStats(series, m);
  MatrixProfile mp;
  mp.subsequence_length = m;
  mp.distances.assign(count, std::numeric_limits<double>::infinity());
  mp.indices.assign(count, kNoNeighbor);

  const SlidingDotPlan plan(series, m);
  const std::vector<double> first_row = plan.Query(Subsequence(series, 0, m));

  const ScanSide side = BuildScanSide(stats);
  const double dm = static_cast<double>(m);
  const double two_m = 2.0 * dm;
  const double sqrt_two_m = std::sqrt(2.0 * dm);
  const double* series_data = series.data();
  const StompFillFn fill = ActiveKernelVariant().stomp_fill;

  const Status status = RunStompRowBlocks(
      count, count,
      [&](std::size_t i) {
        return i == 0 ? first_row : plan.Query(Subsequence(series, i, m));
      },
      [&](std::size_t i, std::vector<double>& qt_row) {
        double* qt = qt_row.data();
        const double head = series_data[i - 1];
        const double tail = series_data[i + m - 1];
        for (std::size_t j = count - 1; j > 0; --j) {
          qt[j] = qt[j - 1] - series_data[j - 1] * head +
                  series_data[j + m - 1] * tail;
        }
        qt[0] = first_row[i];
      },
      [&](std::size_t i, const std::vector<double>& qt_row,
          std::vector<double>& dist) {
        if (i < exclusion + 1) return;  // no eligible past neighbor
        const RowInvariants row{dm * stats.means[i], dm * stats.stds[i],
                                side.flat[i] != 0};
        double best = std::numeric_limits<double>::infinity();
        std::size_t best_j = kNoNeighbor;
        // Eligible past neighbors: j + exclusion + 1 <= i.
        const std::size_t end = i - exclusion;
        FillRowDistances(qt_row.data(), side, row, two_m, sqrt_two_m, 0, end,
                         dist.data(), fill);
        ArgMinSegment(dist.data(), 0, end, best, best_j);
        mp.distances[i] = best;
        mp.indices[i] = best_j;
      });
  if (!status.ok()) return status;
  return mp;
}

// The STOMP AB-join (frozen row-recurrence kernel), reached through
// the ComputeAbJoin dispatcher below. Takes already-validated counts.
Result<MatrixProfile> ComputeAbJoinStomp(
    const std::vector<double>& query_series,
    const std::vector<double>& reference_series, std::size_t m,
    std::size_t nq, std::size_t nr) {
  const WindowStats query_stats = ComputeWindowStats(query_series, m);
  const WindowStats ref_stats = ComputeWindowStats(reference_series, m);

  MatrixProfile mp;
  mp.subsequence_length = m;
  mp.distances.assign(nq, std::numeric_limits<double>::infinity());
  mp.indices.assign(nq, kNoNeighbor);

  // Row 0 (of each block): dot products of that query subsequence
  // against every reference subsequence; first column: dot products of
  // every query subsequence against the first reference subsequence
  // (seeds qt_row[0] in the recurrence). The plan is over the
  // reference series — the side every block seed slides against.
  const SlidingDotPlan plan(reference_series, m);
  const std::vector<double> first_row =
      plan.Query(Subsequence(query_series, 0, m));
  const std::vector<double> first_col =
      SlidingDotProduct(query_series, Subsequence(reference_series, 0, m));

  const ScanSide query_side = BuildScanSide(query_stats);
  const ScanSide ref_side = BuildScanSide(ref_stats);
  const double dm = static_cast<double>(m);
  const double two_m = 2.0 * dm;
  const double sqrt_two_m = std::sqrt(2.0 * dm);
  const double* query_data = query_series.data();
  const double* ref_data = reference_series.data();
  const StompFillFn fill = ActiveKernelVariant().stomp_fill;

  const Status status = RunStompRowBlocks(
      nq, nr,
      [&](std::size_t i) {
        return i == 0 ? first_row : plan.Query(Subsequence(query_series, i, m));
      },
      [&](std::size_t i, std::vector<double>& qt_row) {
        double* qt = qt_row.data();
        const double head = query_data[i - 1];
        const double tail = query_data[i + m - 1];
        for (std::size_t j = nr - 1; j > 0; --j) {
          qt[j] = qt[j - 1] - ref_data[j - 1] * head +
                  ref_data[j + m - 1] * tail;
        }
        qt[0] = first_col[i];
      },
      [&](std::size_t i, const std::vector<double>& qt_row,
          std::vector<double>& dist) {
        const RowInvariants row{dm * query_stats.means[i],
                                dm * query_stats.stds[i],
                                query_side.flat[i] != 0};
        double best = std::numeric_limits<double>::infinity();
        std::size_t best_j = kNoNeighbor;
        FillRowDistances(qt_row.data(), ref_side, row, two_m, sqrt_two_m, 0,
                         nr, dist.data(), fill);
        ArgMinSegment(dist.data(), 0, nr, best, best_j);
        mp.distances[i] = best;
        mp.indices[i] = best_j;
      });
  if (!status.ok()) return status;
  return mp;
}

}  // namespace

Result<MatrixProfile> ComputeLeftMatrixProfile(
    const std::vector<double>& series, std::size_t m,
    const MatrixProfileOptions& options) {
  std::size_t exclusion = options.exclusion;
  std::size_t count = 0;
  TSAD_RETURN_IF_ERROR(profile_internal::ValidateLeftProfile(
      series.size(), m, &exclusion, &count));
  const MpPrecision precision = ResolveMpPrecision(options.precision);
  if (precision == MpPrecision::kFloat32) {
    if (options.kernel == MpKernel::kStomp) {
      return Status::InvalidArgument(
          "float32 precision requires the mpx kernel (STOMP has no float "
          "tier); use --mp-kernel mpx or auto");
    }
    return ComputeLeftMatrixProfileMpx(series, m, exclusion,
                                       MpPrecision::kFloat32);
  }
  if (ResolveMpKernel(options.kernel, count) == MpKernel::kMpx) {
    return ComputeLeftMatrixProfileMpx(series, m, exclusion);
  }
  return ComputeLeftMatrixProfileStomp(series, m, exclusion, count);
}

Result<MatrixProfile> ComputeLeftMatrixProfile(
    const std::vector<double>& series, std::size_t m, std::size_t exclusion) {
  MatrixProfileOptions options;
  options.exclusion = exclusion;
  return ComputeLeftMatrixProfile(series, m, options);
}

Result<MatrixProfile> ComputeAbJoin(const std::vector<double>& query_series,
                                    const std::vector<double>& reference_series,
                                    std::size_t m,
                                    const MatrixProfileOptions& options) {
  std::size_t nq = 0, nr = 0;
  TSAD_RETURN_IF_ERROR(profile_internal::ValidateAbJoin(
      query_series.size(), reference_series.size(), m, &nq, &nr));
  const MpPrecision precision = ResolveMpPrecision(options.precision);
  if (precision == MpPrecision::kFloat32) {
    if (options.kernel == MpKernel::kStomp) {
      return Status::InvalidArgument(
          "float32 precision requires the mpx kernel (STOMP has no float "
          "tier); use --mp-kernel mpx or auto");
    }
    return ComputeAbJoinMpx(query_series, reference_series, m,
                            MpPrecision::kFloat32);
  }
  // Size rule on the SMALLER side: the diagonal formulation only wins
  // when both sides are long enough to amortize its seeds and merges.
  if (ResolveMpKernel(options.kernel, std::min(nq, nr)) == MpKernel::kMpx) {
    return ComputeAbJoinMpx(query_series, reference_series, m);
  }
  return ComputeAbJoinStomp(query_series, reference_series, m, nq, nr);
}

Result<MatrixProfile> ComputeAbJoin(const std::vector<double>& query_series,
                                    const std::vector<double>& reference_series,
                                    std::size_t m) {
  return ComputeAbJoin(query_series, reference_series, m,
                       MatrixProfileOptions());
}

std::vector<Discord> TopDiscords(const MatrixProfile& profile, std::size_t k,
                                 std::size_t exclusion) {
  if (exclusion == std::numeric_limits<std::size_t>::max()) {
    exclusion = DefaultDiscordExclusion(profile.subsequence_length);
  }
  // One sort-by-distance pass instead of rescanning the whole profile
  // per round (O(n log n + k * exclusion) vs O(k * n)). Walking the
  // sorted order and checking eligibility at pop time is exactly the
  // greedy the round-based scan ran: each round picked the highest
  // distance (lowest index on ties) among still-eligible entries, and
  // taking a discord only ever removes eligibility of entries visited
  // later in this order.
  std::vector<std::size_t> order;
  order.reserve(profile.size());
  for (std::size_t i = 0; i < profile.size(); ++i) {
    if (std::isfinite(profile.distances[i])) order.push_back(i);
  }
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (profile.distances[a] != profile.distances[b]) {
      return profile.distances[a] > profile.distances[b];
    }
    return a < b;
  });

  std::vector<Discord> discords;
  std::vector<uint8_t> eligible(profile.size(), 1);
  for (std::size_t i : order) {
    if (discords.size() == k) break;
    if (!eligible[i]) continue;
    Discord d;
    d.position = i;
    d.distance = profile.distances[i];
    d.nearest_neighbor = profile.indices[i];
    discords.push_back(d);
    const std::size_t lo = i > exclusion ? i - exclusion : 0;
    const std::size_t hi = std::min(profile.size(), i + exclusion + 1);
    for (std::size_t p = lo; p < hi; ++p) eligible[p] = 0;
  }
  return discords;
}

}  // namespace tsad
