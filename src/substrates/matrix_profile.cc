#include "substrates/matrix_profile.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <functional>

#include "common/fft.h"
#include "common/parallel.h"
#include "common/stats.h"
#include "common/vector_ops.h"
#include "robustness/deadline.h"

namespace tsad {

namespace {

// How many O(count) STOMP rows run between cooperative deadline polls.
// A row of a few thousand entries costs microseconds, so this bounds
// watchdog latency to well under a millisecond while keeping the clock
// read off the hot path.
constexpr std::size_t kDeadlinePollRows = 64;

// Row-block size for the STOMP drivers. Each block seeds its first row
// with an O(n log n) FFT pass and runs the O(1)-per-entry recurrence
// within the block, so blocks are independent and run in parallel. The
// block size is a fixed constant — NOT derived from the thread count —
// which is what makes profiles bit-identical at every thread count:
// the same rows are always computed from the same seeds.
constexpr std::size_t kStompBlockRows = 256;

// Subsequences whose std is this small RELATIVE to their mean magnitude
// are treated as "flat". The threshold must be relative: rolling-sum
// cancellation noise scales with the square of the values, so an
// absolute epsilon misclassifies exactly-constant runs at large levels.
constexpr double kFlatSigmaRel = 1e-7;

inline bool IsFlat(double mean, double std) {
  return std < kFlatSigmaRel * (1.0 + std::fabs(mean));
}

// Shorthand for the exported ZNormPairDistance, keeping the call sites
// below readable.
inline double PairDistance(double qt, double mean_a, double std_a,
                           double mean_b, double std_b, std::size_t m) {
  return ZNormPairDistance(qt, mean_a, std_a, mean_b, std_b, m);
}

// Drives a STOMP-style row recurrence over [0, rows) in fixed-size row
// blocks distributed across the thread pool. Within a block, rows run
// in order: the first row comes from seed_row(i) (an FFT pass), each
// later row from advance_row(i, qt) (the O(1)-per-entry update), and
// every row is handed to visit_row. Each worker polls the cooperative
// deadline between row batches; the submitting thread's DeadlineScope
// is propagated by ParallelFor, and the first (lowest-block) error is
// the one reported.
Status RunStompRowBlocks(
    std::size_t rows,
    const std::function<std::vector<double>(std::size_t)>& seed_row,
    const std::function<void(std::size_t, std::vector<double>&)>& advance_row,
    const std::function<void(std::size_t, const std::vector<double>&)>&
        visit_row) {
  const std::size_t num_blocks =
      (rows + kStompBlockRows - 1) / kStompBlockRows;
  return ParallelFor(0, num_blocks, [&](std::size_t block) -> Status {
    const std::size_t row_begin = block * kStompBlockRows;
    const std::size_t row_end = std::min(rows, row_begin + kStompBlockRows);
    std::vector<double> qt_row;
    for (std::size_t i = row_begin; i < row_end; ++i) {
      if ((i - row_begin) % kDeadlinePollRows == 0) {
        TSAD_RETURN_IF_ERROR(CheckDeadline());
      }
      if (i == row_begin) {
        qt_row = seed_row(i);
      } else {
        advance_row(i, qt_row);
      }
      visit_row(i, qt_row);
    }
    return Status::OK();
  });
}

}  // namespace

double ZNormPairDistance(double qt, double mean_a, double std_a, double mean_b,
                         double std_b, std::size_t m) {
  const double dm = static_cast<double>(m);
  const bool flat_a = IsFlat(mean_a, std_a);
  const bool flat_b = IsFlat(mean_b, std_b);
  if (flat_a && flat_b) return 0.0;
  if (flat_a || flat_b) return std::sqrt(2.0 * dm);
  double corr = (qt - dm * mean_a * mean_b) / (dm * std_a * std_b);
  corr = std::clamp(corr, -1.0, 1.0);
  return std::sqrt(std::max(0.0, 2.0 * dm * (1.0 - corr)));
}

std::vector<double> MassDistanceProfile(const std::vector<double>& series,
                                        const std::vector<double>& query,
                                        const WindowStats& stats) {
  const std::size_t m = query.size();
  const std::size_t count = NumSubsequences(series.size(), m);
  assert(stats.size() == count);
  if (count == 0) return {};

  const std::vector<double> qt = SlidingDotProduct(series, query);
  const double mean_q = Mean(query);
  const double std_q = StdDev(query);

  std::vector<double> dist(count);
  for (std::size_t i = 0; i < count; ++i) {
    dist[i] =
        PairDistance(qt[i], mean_q, std_q, stats.means[i], stats.stds[i], m);
  }
  return dist;
}

std::vector<double> MassDistanceProfile(const std::vector<double>& series,
                                        const std::vector<double>& query) {
  return MassDistanceProfile(series, query,
                             ComputeWindowStats(series, query.size()));
}

Result<MatrixProfile> ComputeMatrixProfile(const std::vector<double>& series,
                                           std::size_t m,
                                           std::size_t exclusion) {
  if (m < 2) return Status::InvalidArgument("subsequence length must be >= 2");
  const std::size_t count = NumSubsequences(series.size(), m);
  if (count < 2) {
    return Status::InvalidArgument(
        "series too short: need at least 2 subsequences of length " +
        std::to_string(m));
  }
  if (exclusion == std::numeric_limits<std::size_t>::max()) exclusion = m / 2;
  if (exclusion >= count - 1) {
    return Status::InvalidArgument(
        "exclusion zone " + std::to_string(exclusion) +
        " leaves no candidate neighbors for " + std::to_string(count) +
        " subsequences");
  }

  const WindowStats stats = ComputeWindowStats(series, m);

  MatrixProfile mp;
  mp.subsequence_length = m;
  mp.distances.assign(count, std::numeric_limits<double>::infinity());
  mp.indices.assign(count, kNoNeighbor);

  // STOMP: row i holds qt[j] = dot(series[i, i+m), series[j, j+m)).
  // The first row of each block comes from an FFT pass; each later row
  // is an O(1)-per-entry update from the previous row. first_row (row
  // 0) is retained to seed qt_row[0] of every subsequent row (by
  // symmetry qt_i[0] = qt_0[i]). Rows scan their neighbors serially
  // left to right with a strict '<', so the tie-break (lowest j wins)
  // is independent of how rows are distributed over threads.
  const std::vector<double> first_row =
      SlidingDotProduct(series, Subsequence(series, 0, m));

  const Status status = RunStompRowBlocks(
      count,
      [&](std::size_t i) {
        return i == 0 ? first_row
                      : SlidingDotProduct(series, Subsequence(series, i, m));
      },
      [&](std::size_t i, std::vector<double>& qt_row) {
        // Update in place, right to left, reusing qt_row from row i-1.
        for (std::size_t j = count - 1; j > 0; --j) {
          qt_row[j] = qt_row[j - 1] - series[j - 1] * series[i - 1] +
                      series[j + m - 1] * series[i + m - 1];
        }
        qt_row[0] = first_row[i];
      },
      [&](std::size_t i, const std::vector<double>& qt_row) {
        double best = std::numeric_limits<double>::infinity();
        std::size_t best_j = kNoNeighbor;
        for (std::size_t j = 0; j < count; ++j) {
          const std::size_t gap = i > j ? i - j : j - i;
          if (gap <= exclusion) continue;
          const double d =
              PairDistance(qt_row[j], stats.means[i], stats.stds[i],
                           stats.means[j], stats.stds[j], m);
          if (d < best) {
            best = d;
            best_j = j;
          }
        }
        mp.distances[i] = best;
        mp.indices[i] = best_j;
      });
  if (!status.ok()) return status;
  return mp;
}

Result<MatrixProfile> ComputeMatrixProfileNaive(
    const std::vector<double>& series, std::size_t m, std::size_t exclusion) {
  if (m < 2) return Status::InvalidArgument("subsequence length must be >= 2");
  const std::size_t count = NumSubsequences(series.size(), m);
  if (count < 2) {
    return Status::InvalidArgument("series too short for naive profile");
  }
  if (exclusion == std::numeric_limits<std::size_t>::max()) exclusion = m / 2;
  if (exclusion >= count - 1) {
    return Status::InvalidArgument("exclusion zone too large");
  }

  MatrixProfile mp;
  mp.subsequence_length = m;
  mp.distances.assign(count, std::numeric_limits<double>::infinity());
  mp.indices.assign(count, kNoNeighbor);

  std::vector<std::vector<double>> subs(count);
  for (std::size_t i = 0; i < count; ++i) {
    subs[i] = ZNormalize(Subsequence(series, i, m));
  }
  for (std::size_t i = 0; i < count; ++i) {
    if (i % kDeadlinePollRows == 0) TSAD_RETURN_IF_ERROR(CheckDeadline());
    for (std::size_t j = 0; j < count; ++j) {
      const std::size_t gap = i > j ? i - j : j - i;
      if (gap <= exclusion) continue;
      const double d = EuclideanDistance(subs[i], subs[j]);
      if (d < mp.distances[i]) {
        mp.distances[i] = d;
        mp.indices[i] = j;
      }
    }
  }
  return mp;
}

Result<MatrixProfile> ComputeLeftMatrixProfile(
    const std::vector<double>& series, std::size_t m, std::size_t exclusion) {
  if (m < 2) return Status::InvalidArgument("subsequence length must be >= 2");
  const std::size_t count = NumSubsequences(series.size(), m);
  if (count < 2) {
    return Status::InvalidArgument(
        "series too short: need at least 2 subsequences of length " +
        std::to_string(m));
  }
  if (exclusion == std::numeric_limits<std::size_t>::max()) exclusion = m / 2;

  const WindowStats stats = ComputeWindowStats(series, m);
  MatrixProfile mp;
  mp.subsequence_length = m;
  mp.distances.assign(count, std::numeric_limits<double>::infinity());
  mp.indices.assign(count, kNoNeighbor);

  const std::vector<double> first_row =
      SlidingDotProduct(series, Subsequence(series, 0, m));

  const Status status = RunStompRowBlocks(
      count,
      [&](std::size_t i) {
        return i == 0 ? first_row
                      : SlidingDotProduct(series, Subsequence(series, i, m));
      },
      [&](std::size_t i, std::vector<double>& qt_row) {
        for (std::size_t j = count - 1; j > 0; --j) {
          qt_row[j] = qt_row[j - 1] - series[j - 1] * series[i - 1] +
                      series[j + m - 1] * series[i + m - 1];
        }
        qt_row[0] = first_row[i];
      },
      [&](std::size_t i, const std::vector<double>& qt_row) {
        if (i < exclusion + 1) return;  // no eligible past neighbor
        double best = std::numeric_limits<double>::infinity();
        std::size_t best_j = kNoNeighbor;
        for (std::size_t j = 0; j + exclusion + 1 <= i; ++j) {
          const double d =
              PairDistance(qt_row[j], stats.means[i], stats.stds[i],
                           stats.means[j], stats.stds[j], m);
          if (d < best) {
            best = d;
            best_j = j;
          }
        }
        mp.distances[i] = best;
        mp.indices[i] = best_j;
      });
  if (!status.ok()) return status;
  return mp;
}

Result<MatrixProfile> ComputeAbJoin(const std::vector<double>& query_series,
                                    const std::vector<double>& reference_series,
                                    std::size_t m) {
  if (m < 2) return Status::InvalidArgument("subsequence length must be >= 2");
  const std::size_t nq = NumSubsequences(query_series.size(), m);
  const std::size_t nr = NumSubsequences(reference_series.size(), m);
  if (nq == 0 || nr == 0) {
    return Status::InvalidArgument(
        "AB-join needs at least one length-" + std::to_string(m) +
        " subsequence on each side");
  }

  const WindowStats query_stats = ComputeWindowStats(query_series, m);
  const WindowStats ref_stats = ComputeWindowStats(reference_series, m);

  MatrixProfile mp;
  mp.subsequence_length = m;
  mp.distances.assign(nq, std::numeric_limits<double>::infinity());
  mp.indices.assign(nq, kNoNeighbor);

  // Row 0 (of each block): dot products of that query subsequence
  // against every reference subsequence; first column: dot products of
  // every query subsequence against the first reference subsequence
  // (seeds qt_row[0] in the recurrence).
  const std::vector<double> first_row =
      SlidingDotProduct(reference_series, Subsequence(query_series, 0, m));
  const std::vector<double> first_col =
      SlidingDotProduct(query_series, Subsequence(reference_series, 0, m));

  const Status status = RunStompRowBlocks(
      nq,
      [&](std::size_t i) {
        return i == 0 ? first_row
                      : SlidingDotProduct(reference_series,
                                          Subsequence(query_series, i, m));
      },
      [&](std::size_t i, std::vector<double>& qt_row) {
        for (std::size_t j = nr - 1; j > 0; --j) {
          qt_row[j] = qt_row[j - 1] -
                      reference_series[j - 1] * query_series[i - 1] +
                      reference_series[j + m - 1] * query_series[i + m - 1];
        }
        qt_row[0] = first_col[i];
      },
      [&](std::size_t i, const std::vector<double>& qt_row) {
        double best = std::numeric_limits<double>::infinity();
        std::size_t best_j = kNoNeighbor;
        for (std::size_t j = 0; j < nr; ++j) {
          const double d = PairDistance(qt_row[j], query_stats.means[i],
                                        query_stats.stds[i], ref_stats.means[j],
                                        ref_stats.stds[j], m);
          if (d < best) {
            best = d;
            best_j = j;
          }
        }
        mp.distances[i] = best;
        mp.indices[i] = best_j;
      });
  if (!status.ok()) return status;
  return mp;
}

std::vector<Discord> TopDiscords(const MatrixProfile& profile, std::size_t k,
                                 std::size_t exclusion) {
  if (exclusion == std::numeric_limits<std::size_t>::max()) {
    exclusion = profile.subsequence_length;
  }
  std::vector<Discord> discords;
  std::vector<bool> eligible(profile.size(), true);
  for (std::size_t round = 0; round < k; ++round) {
    double best = -1.0;
    std::size_t best_i = kNoNeighbor;
    for (std::size_t i = 0; i < profile.size(); ++i) {
      if (!eligible[i]) continue;
      if (!std::isfinite(profile.distances[i])) continue;
      if (profile.distances[i] > best) {
        best = profile.distances[i];
        best_i = i;
      }
    }
    if (best_i == kNoNeighbor) break;
    Discord d;
    d.position = best_i;
    d.distance = best;
    d.nearest_neighbor = profile.indices[best_i];
    discords.push_back(d);
    const std::size_t lo = best_i > exclusion ? best_i - exclusion : 0;
    const std::size_t hi = std::min(profile.size(), best_i + exclusion + 1);
    for (std::size_t i = lo; i < hi; ++i) eligible[i] = false;
  }
  return discords;
}

}  // namespace tsad
