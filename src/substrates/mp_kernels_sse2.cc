// SSE2 kernel variant (2 double / 4 float lanes). Compiled with
// -msse2 -ffp-contract=off; see mp_kernels_impl.inc.

#define TSAD_SIMD_WIDTH 2
#define TSAD_SIMD_NAMESPACE mp_simd_sse2
#define TSAD_SIMD_TIER SimdTier::kSse2
#define TSAD_SIMD_VARIANT_FACTORY Sse2Variant

#include "substrates/mp_kernels_impl.inc"
