// AVX2 kernel variant (4 double / 8 float lanes). Compiled with
// -mavx2 -ffp-contract=off; see mp_kernels_impl.inc.

#define TSAD_SIMD_WIDTH 4
#define TSAD_SIMD_NAMESPACE mp_simd_avx2
#define TSAD_SIMD_TIER SimdTier::kAvx2
#define TSAD_SIMD_VARIANT_FACTORY Avx2Variant

#include "substrates/mp_kernels_impl.inc"
