// Internal conventions shared by the matrix-profile kernel translation
// units (matrix_profile.cc and mpx_kernel.cc). Both kernels MUST agree
// on these definitions — the flat-subsequence classification decides
// which entries take the SCAMP special-case distances (0 / sqrt(2m)),
// and the argument validation decides which inputs are rejected — so
// they live here instead of being duplicated per kernel. Not part of
// the public API.

#ifndef TSAD_SUBSTRATES_PROFILE_INTERNAL_H_
#define TSAD_SUBSTRATES_PROFILE_INTERNAL_H_

#include <cmath>
#include <cstddef>
#include <limits>
#include <string>

#include "common/status.h"
#include "substrates/matrix_profile.h"
#include "substrates/sliding_window.h"

namespace tsad {
namespace profile_internal {

// Subsequences whose std is this small RELATIVE to their mean magnitude
// are treated as "flat". The threshold must be relative: rolling-sum
// cancellation noise scales with the square of the values, so an
// absolute epsilon misclassifies exactly-constant runs at large levels.
constexpr double kFlatSigmaRel = 1e-7;

inline bool IsFlat(double mean, double std) {
  return std < kFlatSigmaRel * (1.0 + std::fabs(mean));
}

// Shared self-join argument validation: resolves the SIZE_MAX
// exclusion sentinel to DefaultSelfJoinExclusion(m) and rejects the
// same degenerate shapes with the same messages in every kernel.
// On OK, *exclusion and *count hold the resolved values.
inline Status ValidateSelfJoin(std::size_t n, std::size_t m,
                               std::size_t* exclusion, std::size_t* count) {
  if (m < 2) return Status::InvalidArgument("subsequence length must be >= 2");
  *count = NumSubsequences(n, m);
  if (*count < 2) {
    return Status::InvalidArgument(
        "series too short: need at least 2 subsequences of length " +
        std::to_string(m));
  }
  if (*exclusion == std::numeric_limits<std::size_t>::max()) {
    *exclusion = DefaultSelfJoinExclusion(m);
  }
  if (*exclusion >= *count - 1) {
    return Status::InvalidArgument(
        "exclusion zone " + std::to_string(*exclusion) +
        " leaves no candidate neighbors for " + std::to_string(*count) +
        " subsequences");
  }
  return Status::OK();
}

// Shared AB-join argument validation (no exclusion zone exists for a
// join of two distinct series). On OK, *nq and *nr hold the
// subsequence counts of the query and reference sides.
inline Status ValidateAbJoin(std::size_t query_n, std::size_t reference_n,
                             std::size_t m, std::size_t* nq, std::size_t* nr) {
  if (m < 2) return Status::InvalidArgument("subsequence length must be >= 2");
  *nq = NumSubsequences(query_n, m);
  *nr = NumSubsequences(reference_n, m);
  if (*nq == 0 || *nr == 0) {
    return Status::InvalidArgument(
        "AB-join needs at least one length-" + std::to_string(m) +
        " subsequence on each side");
  }
  return Status::OK();
}

// Shared left-profile argument validation. Unlike the self-join, an
// exclusion zone covering the whole series is NOT rejected: the left
// profile's contract is that entries without an eligible past neighbor
// simply stay +inf / kNoNeighbor.
inline Status ValidateLeftProfile(std::size_t n, std::size_t m,
                                  std::size_t* exclusion, std::size_t* count) {
  if (m < 2) return Status::InvalidArgument("subsequence length must be >= 2");
  *count = NumSubsequences(n, m);
  if (*count < 2) {
    return Status::InvalidArgument(
        "series too short: need at least 2 subsequences of length " +
        std::to_string(m));
  }
  if (*exclusion == std::numeric_limits<std::size_t>::max()) {
    *exclusion = DefaultSelfJoinExclusion(m);
  }
  return Status::OK();
}

}  // namespace profile_internal
}  // namespace tsad

#endif  // TSAD_SUBSTRATES_PROFILE_INTERNAL_H_
