// Internal conventions shared by the matrix-profile kernel translation
// units (matrix_profile.cc and mpx_kernel.cc). Both kernels MUST agree
// on these definitions — the flat-subsequence classification decides
// which entries take the SCAMP special-case distances (0 / sqrt(2m)),
// and the argument validation decides which inputs are rejected — so
// they live here instead of being duplicated per kernel. Not part of
// the public API.

#ifndef TSAD_SUBSTRATES_PROFILE_INTERNAL_H_
#define TSAD_SUBSTRATES_PROFILE_INTERNAL_H_

#include <cmath>
#include <cstddef>
#include <limits>
#include <string>

#include "common/status.h"
#include "substrates/matrix_profile.h"
#include "substrates/sliding_window.h"

namespace tsad {
namespace profile_internal {

// Subsequences whose std is this small RELATIVE to their mean magnitude
// are treated as "flat". The threshold must be relative: rolling-sum
// cancellation noise scales with the square of the values, so an
// absolute epsilon misclassifies exactly-constant runs at large levels.
constexpr double kFlatSigmaRel = 1e-7;

inline bool IsFlat(double mean, double std) {
  return std < kFlatSigmaRel * (1.0 + std::fabs(mean));
}

// Shared self-join argument validation: resolves the SIZE_MAX
// exclusion sentinel to DefaultSelfJoinExclusion(m) and rejects the
// same degenerate shapes with the same messages in every kernel.
// On OK, *exclusion and *count hold the resolved values.
inline Status ValidateSelfJoin(std::size_t n, std::size_t m,
                               std::size_t* exclusion, std::size_t* count) {
  if (m < 2) return Status::InvalidArgument("subsequence length must be >= 2");
  *count = NumSubsequences(n, m);
  if (*count < 2) {
    return Status::InvalidArgument(
        "series too short: need at least 2 subsequences of length " +
        std::to_string(m));
  }
  if (*exclusion == std::numeric_limits<std::size_t>::max()) {
    *exclusion = DefaultSelfJoinExclusion(m);
  }
  if (*exclusion >= *count - 1) {
    return Status::InvalidArgument(
        "exclusion zone " + std::to_string(*exclusion) +
        " leaves no candidate neighbors for " + std::to_string(*count) +
        " subsequences");
  }
  return Status::OK();
}

}  // namespace profile_internal
}  // namespace tsad

#endif  // TSAD_SUBSTRATES_PROFILE_INTERNAL_H_
