// Motif discovery on the matrix profile — the other half of the
// substrate the paper's reference [4] (Yeh et al., "Matrix Profile I:
// ... Motifs, Discords and Shapelets") unifies. Motifs are the most
// similar non-trivial subsequence pairs; the mislabel auditor's
// "unlabeled twin" logic is motif discovery pointed at a labeled
// region, and the archive builder uses motifs to verify that injected
// anomalies did NOT accidentally create a repeated pattern.

#ifndef TSAD_SUBSTRATES_MOTIFS_H_
#define TSAD_SUBSTRATES_MOTIFS_H_

#include <cstddef>
#include <vector>

#include "common/series.h"
#include "common/status.h"
#include "substrates/matrix_profile.h"

namespace tsad {

/// A motif: the pair of mutually-close subsequences plus any further
/// neighbors within `radius` of the first member.
struct Motif {
  std::size_t first = 0;     // start index of one member
  std::size_t second = 0;    // start index of the closest other member
  double distance = 0.0;     // z-normalized distance between them
  std::vector<std::size_t> neighbors;  // additional occurrences
};

struct MotifConfig {
  /// Neighbors are counted within radius_factor * (pair distance).
  double radius_factor = 2.0;
  /// Overlap suppression between motifs, in points (default: m).
  std::size_t exclusion = 0;
};

/// Extracts the top-k motifs from a precomputed matrix profile of
/// `series`. Each motif's members and neighbors are excluded before the
/// next motif is selected, so the k motifs describe distinct shapes.
Result<std::vector<Motif>> TopMotifs(const Series& series,
                                     const MatrixProfile& profile,
                                     std::size_t k,
                                     const MotifConfig& config = {});

/// Convenience: computes the profile internally.
Result<std::vector<Motif>> FindMotifs(const Series& series, std::size_t m,
                                      std::size_t k,
                                      const MotifConfig& config = {});

}  // namespace tsad

#endif  // TSAD_SUBSTRATES_MOTIFS_H_
