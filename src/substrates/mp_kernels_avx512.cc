// AVX-512F kernel variant (8 double / 16 float lanes). Compiled with
// -mavx512f -ffp-contract=off — AVX-512F brings FMA with it, which is
// exactly why the contract-off flag is load-bearing here; see
// mp_kernels_impl.inc.

#define TSAD_SIMD_WIDTH 8
#define TSAD_SIMD_NAMESPACE mp_simd_avx512
#define TSAD_SIMD_TIER SimdTier::kAvx512
#define TSAD_SIMD_VARIANT_FACTORY Avx512Variant

#include "substrates/mp_kernels_impl.inc"
