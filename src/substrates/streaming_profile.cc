#include "substrates/streaming_profile.h"

#include <cassert>
#include <cmath>

namespace tsad {

OnlineLeftProfile::OnlineLeftProfile(std::size_t m, std::size_t exclusion)
    : m_(m),
      exclusion_(exclusion == std::numeric_limits<std::size_t>::max() ? m / 2
                                                                      : exclusion) {
  assert(m_ >= 2 && "OnlineLeftProfile requires m >= 2");
  sums_.push_back(0.0L);
  sq_.push_back(0.0L);
}

std::optional<OnlineLeftProfile::Entry> OnlineLeftProfile::Push(double value) {
  x_.push_back(value);
  // Prefix sums accumulate in arrival order with long double carries —
  // the same operation order ComputeWindowStats uses, so the rolling
  // mean/std of every window matches the batch stats bit for bit.
  sums_.push_back(sums_.back() + static_cast<long double>(value));
  sq_.push_back(sq_.back() +
                static_cast<long double>(value) * static_cast<long double>(value));
  const std::size_t n = x_.size();
  if (n < m_) return std::nullopt;

  const std::size_t i = n - m_;  // index of the subsequence completing now
  const long double dm = static_cast<long double>(m_);
  const long double s = sums_[i + m_] - sums_[i];
  const long double ss = sq_[i + m_] - sq_[i];
  const long double mean = s / dm;
  long double var = ss / dm - mean * mean;
  if (var < 0.0L) var = 0.0L;
  means_.push_back(static_cast<double>(mean));
  stds_.push_back(std::sqrt(static_cast<double>(var)));

  // STAMPI dot-product update: qt_[j] holds dot(x[j..j+m), x[i..i+m)).
  // Advance the previous row (which held dot(., x[i-1..i-1+m))) right to
  // left so each slot reads its left neighbor's not-yet-updated value,
  // then recompute qt_[0] directly — the recurrence has no left
  // neighbor there.
  if (i == 0) {
    long double acc = 0.0L;
    for (std::size_t k = 0; k < m_; ++k) {
      acc += static_cast<long double>(x_[k]) * static_cast<long double>(x_[k]);
    }
    qt_.push_back(static_cast<double>(acc));
  } else {
    qt_.push_back(0.0);  // new slot for j == i
    for (std::size_t j = i; j >= 1; --j) {
      qt_[j] = qt_[j - 1] - x_[j - 1] * x_[i - 1] + x_[j + m_ - 1] * x_[i + m_ - 1];
    }
    long double acc = 0.0L;
    for (std::size_t k = 0; k < m_; ++k) {
      acc += static_cast<long double>(x_[k]) * static_cast<long double>(x_[i + k]);
    }
    qt_[0] = static_cast<double>(acc);
  }

  Entry entry;
  entry.subsequence = i;
  // Nearest strictly-past neighbor outside the exclusion zone; ties
  // break to the lowest index (strict <), matching the batch scan.
  if (i >= exclusion_ + 1) {
    for (std::size_t j = 0; j + exclusion_ + 1 <= i; ++j) {
      const double d = ZNormPairDistance(qt_[j], means_[j], stds_[j], means_[i],
                                         stds_[i], m_);
      if (d < entry.distance) {
        entry.distance = d;
        entry.neighbor = j;
      }
    }
  }
  return entry;
}

void OnlineLeftProfile::Serialize(ByteWriter* writer) const {
  writer->PutU64(m_);
  writer->PutU64(exclusion_);
  writer->PutDoubles(x_);
  writer->PutLongDoubles(sums_);
  writer->PutLongDoubles(sq_);
  writer->PutDoubles(means_);
  writer->PutDoubles(stds_);
  writer->PutDoubles(qt_);
}

Status OnlineLeftProfile::Deserialize(ByteReader* reader) {
  std::uint64_t m, exclusion;
  TSAD_RETURN_IF_ERROR(reader->GetU64(&m));
  TSAD_RETURN_IF_ERROR(reader->GetU64(&exclusion));
  if (m != m_ || exclusion != exclusion_) {
    return Status::InvalidArgument(
        "left-profile snapshot mismatch: blob has m=" + std::to_string(m) +
        " exclusion=" + std::to_string(exclusion) + ", kernel has m=" +
        std::to_string(m_) + " exclusion=" + std::to_string(exclusion_));
  }
  TSAD_RETURN_IF_ERROR(reader->GetDoubles(&x_));
  TSAD_RETURN_IF_ERROR(reader->GetLongDoubles(&sums_));
  TSAD_RETURN_IF_ERROR(reader->GetLongDoubles(&sq_));
  TSAD_RETURN_IF_ERROR(reader->GetDoubles(&means_));
  TSAD_RETURN_IF_ERROR(reader->GetDoubles(&stds_));
  TSAD_RETURN_IF_ERROR(reader->GetDoubles(&qt_));
  if (sums_.size() != x_.size() + 1 || sq_.size() != x_.size() + 1) {
    return Status::InvalidArgument("left-profile snapshot: inconsistent sizes");
  }
  return Status::OK();
}

}  // namespace tsad
