#include "substrates/streaming_mpx.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <string>

#include "substrates/mp_kernels.h"
#include "substrates/profile_internal.h"

namespace tsad {

namespace {

constexpr double kNegInf = -std::numeric_limits<double>::infinity();
constexpr std::string_view kSnapshotTag = "streaming-mpx";

void PutIndexVector(ByteWriter* writer, const std::vector<std::size_t>& v) {
  writer->PutU64(v.size());
  for (std::size_t value : v) writer->PutU64(value);
}

Status GetIndexVector(ByteReader* reader, std::vector<std::size_t>* v) {
  std::uint64_t size = 0;
  TSAD_RETURN_IF_ERROR(reader->GetU64(&size));
  v->clear();
  v->reserve(size);
  for (std::uint64_t i = 0; i < size; ++i) {
    std::uint64_t value = 0;
    TSAD_RETURN_IF_ERROR(reader->GetU64(&value));
    v->push_back(static_cast<std::size_t>(value));
  }
  return Status::OK();
}

std::size_t ResolvedExclusion(const StreamingMpxConfig& config) {
  return config.exclusion == std::numeric_limits<std::size_t>::max()
             ? DefaultSelfJoinExclusion(config.m)
             : config.exclusion;
}

}  // namespace

Status StreamingMpx::Validate(const StreamingMpxConfig& config) {
  if (config.m < 2) {
    return Status::InvalidArgument("subsequence length must be >= 2");
  }
  if (config.buffer_cap < 4 * config.m) {
    return Status::InvalidArgument(
        "streaming buffer too small: need buffer_cap >= 4*m = " +
        std::to_string(4 * config.m) + ", got " +
        std::to_string(config.buffer_cap));
  }
  const std::size_t exclusion = ResolvedExclusion(config);
  // The post-prune window (3/4 of the buffer) must still admit at
  // least one joinable pair.
  const std::size_t min_points = config.buffer_cap - config.buffer_cap / 4;
  const std::size_t min_subs = min_points - config.m + 1;
  if (exclusion + 1 >= min_subs) {
    return Status::InvalidArgument(
        "exclusion zone " + std::to_string(exclusion) +
        " leaves no candidate neighbors within the pruned buffer (" +
        std::to_string(min_subs) + " subsequences)");
  }
  if (config.band != 0 && config.band <= exclusion) {
    return Status::InvalidArgument(
        "time-constraint band " + std::to_string(config.band) +
        " must exceed the exclusion zone " + std::to_string(exclusion));
  }
  return Status::OK();
}

StreamingMpx::StreamingMpx(const StreamingMpxConfig& config)
    : config_(config) {
  assert(Validate(config).ok());
  config_.exclusion = ResolvedExclusion(config);
  chunk_ = config_.buffer_cap / 4;
  psum_ring_.assign(config_.m + 1, 0.0L);
  psq_ring_.assign(config_.m + 1, 0.0L);
  ReserveAll();
}

void StreamingMpx::ReserveAll() {
  const std::size_t cap = config_.buffer_cap;
  const std::size_t max_subs = cap - config_.m + 1;
  std::size_t max_span = cap - config_.m;
  if (config_.band > 0) max_span = std::min(max_span, config_.band);
  const std::size_t max_lags =
      max_span > config_.exclusion ? max_span - config_.exclusion : 0;
  x_.reserve(cap);
  psum_ring_.reserve(config_.m + 1);
  psq_ring_.reserve(config_.m + 1);
  means_.reserve(max_subs);
  stds_.reserve(max_subs);
  inv_.reserve(max_subs);
  ddf_.reserve(max_subs);
  ddg_.reserve(max_subs);
  right_corr_.reserve(max_subs);
  left_corr_.reserve(max_subs);
  right_idx_.reserve(max_subs);
  left_idx_.reserve(max_subs);
  flat_.reserve(max_subs);
  diag_cov_.reserve(max_lags);
}

std::size_t StreamingMpx::MemoryBytes() const {
  return sizeof(*this) +
         (x_.capacity() + means_.capacity() + stds_.capacity() +
          inv_.capacity() + ddf_.capacity() + ddg_.capacity() +
          right_corr_.capacity() + left_corr_.capacity() +
          diag_cov_.capacity()) *
             sizeof(double) +
         (right_idx_.capacity() + left_idx_.capacity() + flat_.capacity()) *
             sizeof(std::size_t) +
         (psum_ring_.capacity() + psq_ring_.capacity()) * sizeof(long double);
}

std::size_t StreamingMpx::MemoryBytesBound(const StreamingMpxConfig& config) {
  const std::size_t cap = config.buffer_cap;
  const std::size_t exclusion = ResolvedExclusion(config);
  const std::size_t max_subs = cap - config.m + 1;
  std::size_t max_span = cap - config.m;
  if (config.band > 0) max_span = std::min(max_span, config.band);
  const std::size_t max_lags = max_span > exclusion ? max_span - exclusion : 0;
  // Per retained subsequence: means, stds, inv, ddf, ddg, right_corr,
  // left_corr — seven double tracks (the three index tracks are counted
  // below at sizeof(size_t)).
  return sizeof(StreamingMpx) + (cap + 7 * max_subs + max_lags) * sizeof(double) +
         3 * max_subs * sizeof(std::size_t) +
         2 * (config.m + 1) * sizeof(long double);
}

std::size_t StreamingMpx::LagCount(std::size_t newest) const {
  std::size_t span = newest - base_;
  if (config_.band > 0 && span > config_.band) span = config_.band;
  return span > config_.exclusion ? span - config_.exclusion : 0;
}

double StreamingMpx::CenteredDot(std::size_t i, std::size_t j) const {
  const std::size_t il = i - base_;
  const std::size_t jl = j - base_;
  const double mu_a = means_[il];
  const double mu_b = means_[jl];
  double c = 0.0;
  for (std::size_t k = 0; k < config_.m; ++k) {
    c += (x_[il + k] - mu_a) * (x_[jl + k] - mu_b);
  }
  return c;
}

void StreamingMpx::Prune() {
  const std::size_t drop = chunk_;
  const auto erase_front = [drop](auto& v) {
    v.erase(v.begin(),
            v.begin() + static_cast<std::ptrdiff_t>(std::min(drop, v.size())));
  };
  erase_front(x_);
  erase_front(means_);
  erase_front(stds_);
  erase_front(inv_);
  erase_front(ddf_);
  erase_front(ddg_);
  erase_front(right_corr_);
  erase_front(left_corr_);
  erase_front(right_idx_);
  erase_front(left_idx_);
  base_ += drop;
  flat_.erase(flat_.begin(),
              std::lower_bound(flat_.begin(), flat_.end(), base_));
  // Lags whose frontier subsequence fell off the buffer are dropped
  // from the back (largest lag first); the survivors keep their
  // running covariances untouched.
  if (seen_ >= config_.m && seen_ - config_.m >= base_) {
    const std::size_t keep = LagCount(seen_ - config_.m);
    if (diag_cov_.size() > keep) diag_cov_.resize(keep);
  } else {
    diag_cov_.clear();
  }
  ++evictions_;
}

void StreamingMpx::Push(double value) {
  if (x_.size() == config_.buffer_cap) Prune();
  const std::size_t m = config_.m;
  const std::size_t ring = m + 1;
  const std::size_t t = seen_;  // global index of this point
  x_.push_back(value);
  tot_sum_ += value;
  tot_sq_ += static_cast<long double>(value) * value;
  psum_ring_[(t + 1) % ring] = tot_sum_;
  psq_ring_[(t + 1) % ring] = tot_sq_;
  seen_ = t + 1;
  if (seen_ < m) return;  // first window still filling

  // Rolling window statistics from the prefix-total ring: the exact
  // operation sequence of the batch ComputeWindowStats, so flat
  // classification cannot diverge between the streaming and batch
  // kernels on an un-pruned stream.
  const std::size_t j = seen_ - m;  // global index of the new subsequence
  const std::size_t jl = j - base_;
  const long double dm = static_cast<long double>(m);
  const long double s = tot_sum_ - psum_ring_[(seen_ - m) % ring];
  const long double ss = tot_sq_ - psq_ring_[(seen_ - m) % ring];
  const long double mean = s / dm;
  long double var = ss / dm - mean * mean;
  if (var < 0.0L) var = 0.0L;
  const double mean_d = static_cast<double>(mean);
  const double std_d = std::sqrt(static_cast<double>(var));
  means_.push_back(mean_d);
  stds_.push_back(std_d);
  if (profile_internal::IsFlat(mean_d, std_d)) {
    inv_.push_back(0.0);
    flat_.push_back(j);
  } else {
    inv_.push_back(1.0 / (std_d * std::sqrt(static_cast<double>(m))));
  }
  // Difference tracks, fixed at arrival (entry 0 of the stream is kept
  // zero and never read — lag frontiers at the oldest retained
  // subsequence are always seeded, not advanced).
  if (j == 0) {
    ddf_.push_back(0.0);
    ddg_.push_back(0.0);
  } else {
    ddf_.push_back(0.5 * (x_[jl + m - 1] - x_[jl - 1]));
    ddg_.push_back((x_[jl + m - 1] - means_[jl]) +
                   (x_[jl - 1] - means_[jl - 1]));
  }
  right_corr_.push_back(kNegInf);
  right_idx_.push_back(kNoNeighbor);

  // Advance every tracked diagonal's frontier to the pair (j-lag, j) —
  // O(1) each via the rank-2 recurrence, with the periodic
  // locally-centered re-seed containing rounding drift — then open the
  // one lag that became joinable. Each pair updates the right-profile
  // best of the earlier subsequence and races for the left-profile
  // best of the new one (ties to the lower neighbor index, the batch
  // convention).
  const double inv_j = inv_[jl];
  const std::size_t nlags = diag_cov_.size();
  MpxAdvanceLagsArgs args;
  args.x = x_.data();
  args.means = means_.data();
  args.ddf = ddf_.data();
  args.ddg = ddg_.data();
  args.inv = inv_.data();
  args.diag_cov = diag_cov_.data();
  args.right_corr = right_corr_.data();
  args.right_idx = right_idx_.data();
  args.m = m;
  args.j = j;
  args.jl = jl;
  args.base = base_;
  args.exclusion = config_.exclusion;
  args.nlags = nlags;
  args.reseed = kStreamingMpxReseed;
  args.inv_j = inv_j;
  args.best = kNegInf;
  args.best_i = kNoNeighbor;
  ActiveKernelVariant().mpx_advance_lags(args);
  const std::size_t target = LagCount(j);
  assert(target <= nlags + 1);
  if (target > nlags) {
    const std::size_t lag = config_.exclusion + 1 + nlags;
    const std::size_t i = j - lag;
    const std::size_t il = i - base_;
    const double c = CenteredDot(i, j);
    diag_cov_.push_back(c);
    const double corr = c * inv_[il] * inv_j;
    if (corr > right_corr_[il]) {
      right_corr_[il] = corr;
      right_idx_[il] = j;
    }
    if (corr > args.best || (corr == args.best && i < args.best_i)) {
      args.best = corr;
      args.best_i = i;
    }
  }
  left_corr_.push_back(args.best);
  left_idx_.push_back(args.best_i);
}

StreamingMpx::Entry StreamingMpx::Right(std::size_t local) const {
  const double two_m = 2.0 * static_cast<double>(config_.m);
  const std::size_t i = base_ + local;
  Entry entry;
  if (inv_[local] == 0.0) {
    // SCAMP flat conventions, restricted to later neighbors: distance
    // 0 to the lowest eligible flat, else sqrt(2m) to whatever dynamic
    // neighbor won the all-zero-correlation race.
    const auto it =
        std::upper_bound(flat_.begin(), flat_.end(), i + config_.exclusion);
    if (it != flat_.end() &&
        (config_.band == 0 || *it - i <= config_.band)) {
      entry.distance = 0.0;
      entry.neighbor = *it;
      return entry;
    }
    if (right_idx_[local] != kNoNeighbor) {
      entry.distance = std::sqrt(two_m);
      entry.neighbor = right_idx_[local];
    }
    return entry;
  }
  if (right_idx_[local] == kNoNeighbor) return entry;
  const double corr = std::clamp(right_corr_[local], -1.0, 1.0);
  const double v = two_m * (1.0 - corr);
  entry.distance = std::sqrt(v > 0.0 ? v : 0.0);
  entry.neighbor = right_idx_[local];
  return entry;
}

StreamingMpx::Entry StreamingMpx::Merged(std::size_t local) const {
  const double two_m = 2.0 * static_cast<double>(config_.m);
  const std::size_t i = base_ + local;
  // Lexicographic merge of the two sides in correlation space; the
  // left index is always below i and the right above, so an exact tie
  // goes to the left (lower) neighbor, matching the batch kernels.
  double corr = kNegInf;
  std::size_t idx = kNoNeighbor;
  if (left_idx_[local] != kNoNeighbor) {
    corr = left_corr_[local];
    idx = left_idx_[local];
  }
  if (right_idx_[local] != kNoNeighbor && right_corr_[local] > corr) {
    corr = right_corr_[local];
    idx = right_idx_[local];
  }
  Entry entry;
  if (inv_[local] == 0.0) {
    // Lowest retained flat outside the exclusion zone on either side
    // (and inside the band), the batch patching rule over the
    // retained window.
    std::size_t nn = kNoNeighbor;
    if (!flat_.empty()) {
      const std::size_t lo =
          config_.band > 0 && i > config_.band ? i - config_.band : 0;
      const auto left =
          std::lower_bound(flat_.begin(), flat_.end(), lo);
      if (left != flat_.end() && i > config_.exclusion &&
          *left < i - config_.exclusion) {
        nn = *left;
      } else {
        const auto right = std::upper_bound(flat_.begin(), flat_.end(),
                                            i + config_.exclusion);
        if (right != flat_.end() &&
            (config_.band == 0 || *right - i <= config_.band)) {
          nn = *right;
        }
      }
    }
    if (nn != kNoNeighbor) {
      entry.distance = 0.0;
      entry.neighbor = nn;
    } else if (idx != kNoNeighbor) {
      entry.distance = std::sqrt(two_m);
      entry.neighbor = idx;
    }
    return entry;
  }
  if (idx == kNoNeighbor) return entry;
  const double clamped = std::clamp(corr, -1.0, 1.0);
  const double v = two_m * (1.0 - clamped);
  entry.distance = std::sqrt(v > 0.0 ? v : 0.0);
  entry.neighbor = idx;
  return entry;
}

void StreamingMpx::Serialize(ByteWriter* writer) const {
  writer->PutString(kSnapshotTag);
  writer->PutU64(config_.m);
  writer->PutU64(config_.buffer_cap);
  writer->PutU64(config_.exclusion);
  writer->PutU64(config_.band);
  writer->PutU64(seen_);
  writer->PutU64(base_);
  writer->PutU64(evictions_);
  writer->PutLongDouble(tot_sum_);
  writer->PutLongDouble(tot_sq_);
  writer->PutLongDoubles(psum_ring_);
  writer->PutLongDoubles(psq_ring_);
  writer->PutDoubles(x_);
  writer->PutDoubles(means_);
  writer->PutDoubles(stds_);
  writer->PutDoubles(inv_);
  writer->PutDoubles(ddf_);
  writer->PutDoubles(ddg_);
  writer->PutDoubles(right_corr_);
  writer->PutDoubles(left_corr_);
  writer->PutDoubles(diag_cov_);
  PutIndexVector(writer, right_idx_);
  PutIndexVector(writer, left_idx_);
  PutIndexVector(writer, flat_);
}

Status StreamingMpx::Deserialize(ByteReader* reader) {
  std::string tag;
  TSAD_RETURN_IF_ERROR(reader->GetString(&tag));
  if (tag != kSnapshotTag) {
    return Status::InvalidArgument("not a streaming-mpx snapshot (tag '" +
                                   tag + "')");
  }
  std::uint64_t m = 0, cap = 0, exclusion = 0, band = 0;
  TSAD_RETURN_IF_ERROR(reader->GetU64(&m));
  TSAD_RETURN_IF_ERROR(reader->GetU64(&cap));
  TSAD_RETURN_IF_ERROR(reader->GetU64(&exclusion));
  TSAD_RETURN_IF_ERROR(reader->GetU64(&band));
  if (m != config_.m || cap != config_.buffer_cap ||
      exclusion != config_.exclusion || band != config_.band) {
    return Status::InvalidArgument(
        "streaming-mpx snapshot mismatch: m=" + std::to_string(m) +
        " buffer=" + std::to_string(cap) + " vs kernel m=" +
        std::to_string(config_.m) + " buffer=" +
        std::to_string(config_.buffer_cap));
  }
  std::uint64_t seen = 0, base = 0, evictions = 0;
  TSAD_RETURN_IF_ERROR(reader->GetU64(&seen));
  TSAD_RETURN_IF_ERROR(reader->GetU64(&base));
  TSAD_RETURN_IF_ERROR(reader->GetU64(&evictions));
  long double tot_sum = 0.0L, tot_sq = 0.0L;
  TSAD_RETURN_IF_ERROR(reader->GetLongDouble(&tot_sum));
  TSAD_RETURN_IF_ERROR(reader->GetLongDouble(&tot_sq));
  std::vector<long double> psum, psq;
  TSAD_RETURN_IF_ERROR(reader->GetLongDoubles(&psum));
  TSAD_RETURN_IF_ERROR(reader->GetLongDoubles(&psq));
  std::vector<double> x, means, stds, inv, ddf, ddg, right_corr, left_corr,
      diag_cov;
  TSAD_RETURN_IF_ERROR(reader->GetDoubles(&x));
  TSAD_RETURN_IF_ERROR(reader->GetDoubles(&means));
  TSAD_RETURN_IF_ERROR(reader->GetDoubles(&stds));
  TSAD_RETURN_IF_ERROR(reader->GetDoubles(&inv));
  TSAD_RETURN_IF_ERROR(reader->GetDoubles(&ddf));
  TSAD_RETURN_IF_ERROR(reader->GetDoubles(&ddg));
  TSAD_RETURN_IF_ERROR(reader->GetDoubles(&right_corr));
  TSAD_RETURN_IF_ERROR(reader->GetDoubles(&left_corr));
  TSAD_RETURN_IF_ERROR(reader->GetDoubles(&diag_cov));
  std::vector<std::size_t> right_idx, left_idx, flat;
  TSAD_RETURN_IF_ERROR(GetIndexVector(reader, &right_idx));
  TSAD_RETURN_IF_ERROR(GetIndexVector(reader, &left_idx));
  TSAD_RETURN_IF_ERROR(GetIndexVector(reader, &flat));
  if (x.size() > config_.buffer_cap || psum.size() != config_.m + 1 ||
      psq.size() != config_.m + 1 || base > seen ||
      x.size() != seen - base) {
    return Status::InvalidArgument("streaming-mpx snapshot corrupt: shape");
  }
  const std::size_t subs =
      x.size() >= config_.m ? x.size() - config_.m + 1 : 0;
  if (means.size() != subs || stds.size() != subs || inv.size() != subs ||
      ddf.size() != subs || ddg.size() != subs || right_corr.size() != subs ||
      left_corr.size() != subs || right_idx.size() != subs ||
      left_idx.size() != subs || flat.size() > subs ||
      diag_cov.size() > subs) {
    return Status::InvalidArgument("streaming-mpx snapshot corrupt: arrays");
  }
  seen_ = static_cast<std::size_t>(seen);
  base_ = static_cast<std::size_t>(base);
  evictions_ = evictions;
  tot_sum_ = tot_sum;
  tot_sq_ = tot_sq;
  psum_ring_ = std::move(psum);
  psq_ring_ = std::move(psq);
  x_ = std::move(x);
  means_ = std::move(means);
  stds_ = std::move(stds);
  inv_ = std::move(inv);
  ddf_ = std::move(ddf);
  ddg_ = std::move(ddg);
  right_corr_ = std::move(right_corr);
  left_corr_ = std::move(left_corr);
  diag_cov_ = std::move(diag_cov);
  right_idx_ = std::move(right_idx);
  left_idx_ = std::move(left_idx);
  flat_ = std::move(flat);
  // Re-pin every buffer at its lifetime maximum so the restored kernel
  // keeps the constant-MemoryBytes() guarantee.
  ReserveAll();
  return Status::OK();
}

}  // namespace tsad
