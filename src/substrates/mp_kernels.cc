// Baseline-ISA home of the kernel-variant registry and the shared
// scalar building blocks (see mp_kernels.h for the bit-identity
// contract that hinges on these being compiled exactly once, here).

#include "substrates/mp_kernels.h"

#include <cmath>

namespace tsad {

double MpxSeedCov(const double* series, const double* means, std::size_t a,
                  std::size_t b, std::size_t m) {
  const double mu_a = means[a];
  const double mu_b = means[b];
  double c = 0.0;
  for (std::size_t k = 0; k < m; ++k) {
    c += (series[a + k] - mu_a) * (series[b + k] - mu_b);
  }
  return c;
}

void FillRowDistancesTail(const StompFillArgs& a, std::size_t begin) {
  const double* qt = a.qt;
  const double* means = a.means;
  const double* stds = a.stds;
  const double m_mean_i = a.m_mean_i;
  const double m_std_i = a.m_std_i;
  const double two_m = a.two_m;
  double* dist = a.dist;
  for (std::size_t j = begin; j < a.end; ++j) {
    // Value ternaries, not std::clamp/std::max: identical semantics —
    // including NaN pass-through on the clamps and NaN -> 0 on the
    // floor — without the reference-returning forms.
    double corr = (qt[j] - m_mean_i * means[j]) / (m_std_i * stds[j]);
    corr = corr < -1.0 ? -1.0 : corr;
    corr = corr > 1.0 ? 1.0 : corr;
    const double v = two_m * (1.0 - corr);
    dist[j] = std::sqrt(v > 0.0 ? v : 0.0);
  }
}

void MpxBlockScalarRange(const MpxBlockArgs& a, std::size_t d_begin,
                         std::size_t d_end) {
  for (std::size_t d = d_begin; d < d_end; ++d) {
    const std::size_t len = a.count - d;  // offsets valid in [0, len)
    if (a.r0 >= len) break;               // d ascending => len descending
    const std::size_t end = a.r1 < len ? a.r1 : len;
    double c = MpxSeedCov(a.series, a.means, a.r0, a.r0 + d, a.m);
    const double seed_corr = c * a.inv[a.r0] * a.inv[a.r0 + d];
    MpxUpdateBest(a.local_corr, a.local_index, seed_corr, a.r0, a.r0 + d);
    MpxUpdateBest(a.local_corr, a.local_index, seed_corr, a.r0 + d, a.r0);
    for (std::size_t o = a.r0 + 1; o < end; ++o) {
      c += a.ddf[o] * a.ddg[o + d] + a.ddf[o + d] * a.ddg[o];
      const double corr = c * a.inv[o] * a.inv[o + d];
      MpxUpdateBest(a.local_corr, a.local_index, corr, o, o + d);
      MpxUpdateBest(a.local_corr, a.local_index, corr, o + d, o);
    }
  }
}

void MpxBlockF32ScalarRange(const MpxBlockF32Args& a, std::size_t d_begin,
                            std::size_t d_end) {
  for (std::size_t d = d_begin; d < d_end; ++d) {
    const std::size_t len = a.count - d;
    if (a.r0 >= len) break;
    const std::size_t end = a.r1 < len ? a.r1 : len;
    // Double seed narrowed once per block; the recurrence runs in
    // float and each correlation widens to double (exact) at update.
    float c =
        static_cast<float>(MpxSeedCov(a.series, a.means, a.r0, a.r0 + d, a.m));
    const double seed_corr =
        static_cast<double>(c * a.inv[a.r0] * a.inv[a.r0 + d]);
    MpxUpdateBest(a.local_corr, a.local_index, seed_corr, a.r0, a.r0 + d);
    MpxUpdateBest(a.local_corr, a.local_index, seed_corr, a.r0 + d, a.r0);
    for (std::size_t o = a.r0 + 1; o < end; ++o) {
      c += a.ddf[o] * a.ddg[o + d] + a.ddf[o + d] * a.ddg[o];
      const double corr = static_cast<double>(c * a.inv[o] * a.inv[o + d]);
      MpxUpdateBest(a.local_corr, a.local_index, corr, o, o + d);
      MpxUpdateBest(a.local_corr, a.local_index, corr, o + d, o);
    }
  }
}

void MpxAdvanceLagsScalarRange(MpxAdvanceLagsArgs& a, std::size_t k_begin,
                               std::size_t k_end) {
  for (std::size_t k = k_begin; k < k_end; ++k) {
    const std::size_t lag = a.exclusion + 1 + k;
    const std::size_t i = a.j - lag;
    const std::size_t il = i - a.base;
    double c;
    if ((a.j + lag) % a.reseed == 0) {
      c = MpxSeedCov(a.x, a.means, il, a.jl, a.m);
    } else {
      c = a.diag_cov[k] + a.ddf[il] * a.ddg[a.jl] + a.ddf[a.jl] * a.ddg[il];
    }
    a.diag_cov[k] = c;
    const double corr = c * a.inv[il] * a.inv_j;
    if (corr > a.right_corr[il]) {
      a.right_corr[il] = corr;
      a.right_idx[il] = a.j;
    }
    if (corr > a.best || (corr == a.best && i < a.best_i)) {
      a.best = corr;
      a.best_i = i;
    }
  }
}

const MpKernelVariant& KernelVariantFor(SimdTier tier) {
  static const MpKernelVariant table[kNumSimdTiers] = {
      mp_kernels_internal::ScalarVariant(),
#if defined(TSAD_MP_KERNELS_X86)
      mp_kernels_internal::Sse2Variant(),
      mp_kernels_internal::Avx2Variant(),
      mp_kernels_internal::Avx512Variant(),
#else
      // Non-x86: cpu_features never detects or admits a wider tier, so
      // these slots are unreachable through ActiveSimdTier; mapping
      // them to scalar keeps KernelVariantFor total anyway.
      mp_kernels_internal::ScalarVariant(),
      mp_kernels_internal::ScalarVariant(),
      mp_kernels_internal::ScalarVariant(),
#endif
  };
  return table[static_cast<int>(tier)];
}

const MpKernelVariant& ActiveKernelVariant() {
  return KernelVariantFor(ActiveSimdTier());
}

}  // namespace tsad
