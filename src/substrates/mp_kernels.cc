// Baseline-ISA home of the kernel-variant registry and the shared
// scalar building blocks (see mp_kernels.h for the bit-identity
// contract that hinges on these being compiled exactly once, here).

#include "substrates/mp_kernels.h"

#include <cmath>

namespace tsad {

double MpxSeedCov(const double* series, const double* means, std::size_t a,
                  std::size_t b, std::size_t m) {
  const double mu_a = means[a];
  const double mu_b = means[b];
  double c = 0.0;
  for (std::size_t k = 0; k < m; ++k) {
    c += (series[a + k] - mu_a) * (series[b + k] - mu_b);
  }
  return c;
}

void FillRowDistancesTail(const StompFillArgs& a, std::size_t begin) {
  const double* qt = a.qt;
  const double* means = a.means;
  const double* stds = a.stds;
  const double m_mean_i = a.m_mean_i;
  const double m_std_i = a.m_std_i;
  const double two_m = a.two_m;
  double* dist = a.dist;
  for (std::size_t j = begin; j < a.end; ++j) {
    // Value ternaries, not std::clamp/std::max: identical semantics —
    // including NaN pass-through on the clamps and NaN -> 0 on the
    // floor — without the reference-returning forms.
    double corr = (qt[j] - m_mean_i * means[j]) / (m_std_i * stds[j]);
    corr = corr < -1.0 ? -1.0 : corr;
    corr = corr > 1.0 ? 1.0 : corr;
    const double v = two_m * (1.0 - corr);
    dist[j] = std::sqrt(v > 0.0 ? v : 0.0);
  }
}

void MpxBlockScalarRange(const MpxBlockArgs& a, std::size_t d_begin,
                         std::size_t d_end) {
  for (std::size_t d = d_begin; d < d_end; ++d) {
    const std::size_t len = a.count - d;  // offsets valid in [0, len)
    if (a.r0 >= len) break;               // d ascending => len descending
    const std::size_t end = a.r1 < len ? a.r1 : len;
    double c = MpxSeedCov(a.series, a.means, a.r0, a.r0 + d, a.m);
    const double seed_corr = c * a.inv[a.r0] * a.inv[a.r0 + d];
    MpxUpdateBest(a.local_corr, a.local_index, seed_corr, a.r0, a.r0 + d);
    MpxUpdateBest(a.local_corr, a.local_index, seed_corr, a.r0 + d, a.r0);
    for (std::size_t o = a.r0 + 1; o < end; ++o) {
      c += a.ddf[o] * a.ddg[o + d] + a.ddf[o + d] * a.ddg[o];
      const double corr = c * a.inv[o] * a.inv[o + d];
      MpxUpdateBest(a.local_corr, a.local_index, corr, o, o + d);
      MpxUpdateBest(a.local_corr, a.local_index, corr, o + d, o);
    }
  }
}

void MpxBlockF32ScalarRange(const MpxBlockF32Args& a, std::size_t d_begin,
                            std::size_t d_end) {
  for (std::size_t d = d_begin; d < d_end; ++d) {
    const std::size_t len = a.count - d;
    if (a.r0 >= len) break;
    const std::size_t end = a.r1 < len ? a.r1 : len;
    // Double seed narrowed once per block; the recurrence runs in
    // float and each correlation widens to double (exact) at update.
    float c =
        static_cast<float>(MpxSeedCov(a.series, a.means, a.r0, a.r0 + d, a.m));
    const double seed_corr =
        static_cast<double>(c * a.inv[a.r0] * a.inv[a.r0 + d]);
    MpxUpdateBest(a.local_corr, a.local_index, seed_corr, a.r0, a.r0 + d);
    MpxUpdateBest(a.local_corr, a.local_index, seed_corr, a.r0 + d, a.r0);
    for (std::size_t o = a.r0 + 1; o < end; ++o) {
      c += a.ddf[o] * a.ddg[o + d] + a.ddf[o + d] * a.ddg[o];
      const double corr = static_cast<double>(c * a.inv[o] * a.inv[o + d]);
      MpxUpdateBest(a.local_corr, a.local_index, corr, o, o + d);
      MpxUpdateBest(a.local_corr, a.local_index, corr, o + d, o);
    }
  }
}

double MpxSeedCovCross(const double* series_a, const double* means_a,
                       const double* series_b, const double* means_b,
                       std::size_t a, std::size_t b, std::size_t m) {
  const double mu_a = means_a[a];
  const double mu_b = means_b[b];
  double c = 0.0;
  for (std::size_t k = 0; k < m; ++k) {
    c += (series_a[a + k] - mu_a) * (series_b[b + k] - mu_b);
  }
  return c;
}

namespace {

// One template instead of two hand-kept copies: the update side is the
// ONLY difference between the A and B cross ranges, and keeping the
// arithmetic chain literally shared is what makes the two exported
// ranges (and the vector variants' per-lane chains) provably identical.
template <bool kUpdateA>
void MpxCrossScalarRange(const MpxCrossBlockArgs& a, std::size_t d_begin,
                         std::size_t d_end) {
  for (std::size_t d = d_begin; d < d_end; ++d) {
    const std::size_t len_b = a.count_b - d;  // offsets valid in [0, len)
    const std::size_t len = a.count_a < len_b ? a.count_a : len_b;
    if (a.r0 >= len) break;  // d ascending => len non-increasing
    const std::size_t end = a.r1 < len ? a.r1 : len;
    double c = MpxSeedCovCross(a.series_a, a.means_a, a.series_b, a.means_b,
                               a.r0, a.r0 + d, a.m);
    const double seed_corr = c * a.inv_a[a.r0] * a.inv_b[a.r0 + d];
    if (kUpdateA) {
      MpxUpdateBest(a.local_corr, a.local_index, seed_corr, a.r0, a.r0 + d);
    } else {
      MpxUpdateBest(a.local_corr, a.local_index, seed_corr, a.r0 + d, a.r0);
    }
    for (std::size_t o = a.r0 + 1; o < end; ++o) {
      c += a.ddf_a[o] * a.ddg_b[o + d] + a.ddf_b[o + d] * a.ddg_a[o];
      const double corr = c * a.inv_a[o] * a.inv_b[o + d];
      if (kUpdateA) {
        MpxUpdateBest(a.local_corr, a.local_index, corr, o, o + d);
      } else {
        MpxUpdateBest(a.local_corr, a.local_index, corr, o + d, o);
      }
    }
  }
}

template <bool kUpdateA>
void MpxCrossF32ScalarRange(const MpxCrossBlockF32Args& a, std::size_t d_begin,
                            std::size_t d_end) {
  for (std::size_t d = d_begin; d < d_end; ++d) {
    const std::size_t len_b = a.count_b - d;
    const std::size_t len = a.count_a < len_b ? a.count_a : len_b;
    if (a.r0 >= len) break;
    const std::size_t end = a.r1 < len ? a.r1 : len;
    float c = static_cast<float>(MpxSeedCovCross(
        a.series_a, a.means_a, a.series_b, a.means_b, a.r0, a.r0 + d, a.m));
    const double seed_corr =
        static_cast<double>(c * a.inv_a[a.r0] * a.inv_b[a.r0 + d]);
    if (kUpdateA) {
      MpxUpdateBest(a.local_corr, a.local_index, seed_corr, a.r0, a.r0 + d);
    } else {
      MpxUpdateBest(a.local_corr, a.local_index, seed_corr, a.r0 + d, a.r0);
    }
    for (std::size_t o = a.r0 + 1; o < end; ++o) {
      c += a.ddf_a[o] * a.ddg_b[o + d] + a.ddf_b[o + d] * a.ddg_a[o];
      const double corr =
          static_cast<double>(c * a.inv_a[o] * a.inv_b[o + d]);
      if (kUpdateA) {
        MpxUpdateBest(a.local_corr, a.local_index, corr, o, o + d);
      } else {
        MpxUpdateBest(a.local_corr, a.local_index, corr, o + d, o);
      }
    }
  }
}

}  // namespace

void MpxCrossBlockScalarRangeA(const MpxCrossBlockArgs& args,
                               std::size_t d_begin, std::size_t d_end) {
  MpxCrossScalarRange<true>(args, d_begin, d_end);
}

void MpxCrossBlockScalarRangeB(const MpxCrossBlockArgs& args,
                               std::size_t d_begin, std::size_t d_end) {
  MpxCrossScalarRange<false>(args, d_begin, d_end);
}

void MpxCrossBlockF32ScalarRangeA(const MpxCrossBlockF32Args& args,
                                  std::size_t d_begin, std::size_t d_end) {
  MpxCrossF32ScalarRange<true>(args, d_begin, d_end);
}

void MpxCrossBlockF32ScalarRangeB(const MpxCrossBlockF32Args& args,
                                  std::size_t d_begin, std::size_t d_end) {
  MpxCrossF32ScalarRange<false>(args, d_begin, d_end);
}

void PanSeedSlideBase(const PanBlockArgs& a) {
  const double* x = a.x;
  const std::size_t m = a.layers[0].m;
  const std::size_t d = a.d;
  double qt = 0.0;
  for (std::size_t k = 0; k < m; ++k) {
    qt += x[a.r0 + k] * x[a.r0 + d + k];
  }
  a.qt_buf[0] = qt;
  for (std::size_t o = a.r0 + 1; o < a.r1; ++o) {
    qt += x[o - 1 + m] * x[o - 1 + d + m] - x[o - 1] * x[o - 1 + d];
    a.qt_buf[o - a.r0] = qt;
  }
}

void PanUpdateTrackRange(const PanLayerArgs& layer, const double* corr_buf,
                         std::size_t r0, std::size_t end, std::size_t d) {
  double* lc = layer.local_corr;
  std::size_t* li = layer.local_index;
  for (std::size_t o = r0; o < end; ++o) {
    const double c = corr_buf[o - r0];
    if (c > lc[o] || (c == lc[o] && o + d < li[o])) {
      lc[o] = c;
      li[o] = o + d;
    }
    if (c > lc[o + d] || (c == lc[o + d] && o < li[o + d])) {
      lc[o + d] = c;
      li[o + d] = o;
    }
  }
}

void PanBlockScalar(const PanBlockArgs& a) {
  PanSeedSlideBase(a);
  const double* x = a.x;
  const std::size_t d = a.d;
  const std::size_t r0 = a.r0;
  std::size_t prev_m = a.layers[0].m;
  for (std::size_t l = 0; l < a.num_layers; ++l) {
    const PanLayerArgs& layer = a.layers[l];
    // Counts shrink and exclusions grow with the length, so the first
    // inadmissible layer ends the chunk.
    if (layer.exclusion >= d || layer.count <= d + r0) break;
    const std::size_t cap = layer.count - d;
    const std::size_t end = a.r1 < cap ? a.r1 : cap;
    // Advance the dots through the length recurrence qt_{m+1} = qt_m +
    // x[o+m] * x[o+d+m], only over offsets still valid at this length.
    for (std::size_t k = prev_m; k < layer.m; ++k) {
      for (std::size_t o = r0; o < end; ++o) {
        a.qt_buf[o - r0] += x[o + k] * x[o + d + k];
      }
    }
    prev_m = layer.m;
    const double dm = static_cast<double>(layer.m);
    const double* mu = layer.means;
    const double* inv = layer.inv;
    for (std::size_t o = r0; o < end; ++o) {
      a.corr_buf[o - r0] =
          (a.qt_buf[o - r0] - dm * mu[o] * mu[o + d]) * inv[o] * inv[o + d];
    }
    if (layer.local_index != nullptr) {
      PanUpdateTrackRange(layer, a.corr_buf, r0, end, d);
    } else {
      // Bound mode: plain per-entry maxima, no index race. Fused row +
      // column updates per offset — max merges of one candidate set,
      // so the final profile is interleaving-independent; the vector
      // variants use the same per-offset order.
      double* lc = layer.local_corr;
      for (std::size_t o = r0; o < end; ++o) {
        const double c = a.corr_buf[o - r0];
        if (c > lc[o]) lc[o] = c;
        if (c > lc[o + d]) lc[o + d] = c;
      }
    }
  }
}

void PanCovRowScalarRange(const PanCovRowArgs& a, std::size_t j_begin,
                          std::size_t j_end) {
  for (std::size_t j = j_begin; j < j_end; ++j) {
    a.out[j] = MpxSeedCov(a.series, a.means, a.pos, j, a.m);
  }
}

void MpxAdvanceLagsScalarRange(MpxAdvanceLagsArgs& a, std::size_t k_begin,
                               std::size_t k_end) {
  for (std::size_t k = k_begin; k < k_end; ++k) {
    const std::size_t lag = a.exclusion + 1 + k;
    const std::size_t i = a.j - lag;
    const std::size_t il = i - a.base;
    double c;
    if ((a.j + lag) % a.reseed == 0) {
      c = MpxSeedCov(a.x, a.means, il, a.jl, a.m);
    } else {
      c = a.diag_cov[k] + a.ddf[il] * a.ddg[a.jl] + a.ddf[a.jl] * a.ddg[il];
    }
    a.diag_cov[k] = c;
    const double corr = c * a.inv[il] * a.inv_j;
    if (corr > a.right_corr[il]) {
      a.right_corr[il] = corr;
      a.right_idx[il] = a.j;
    }
    if (corr > a.best || (corr == a.best && i < a.best_i)) {
      a.best = corr;
      a.best_i = i;
    }
  }
}

const MpKernelVariant& KernelVariantFor(SimdTier tier) {
  static const MpKernelVariant table[kNumSimdTiers] = {
      mp_kernels_internal::ScalarVariant(),
#if defined(TSAD_MP_KERNELS_X86)
      mp_kernels_internal::Sse2Variant(),
      mp_kernels_internal::Avx2Variant(),
      mp_kernels_internal::Avx512Variant(),
#else
      // Non-x86: cpu_features never detects or admits a wider tier, so
      // these slots are unreachable through ActiveSimdTier; mapping
      // them to scalar keeps KernelVariantFor total anyway.
      mp_kernels_internal::ScalarVariant(),
      mp_kernels_internal::ScalarVariant(),
      mp_kernels_internal::ScalarVariant(),
#endif
  };
  return table[static_cast<int>(tier)];
}

const MpKernelVariant& ActiveKernelVariant() {
  return KernelVariantFor(ActiveSimdTier());
}

}  // namespace tsad
