// ResilientDetector: a hardening decorator around any AnomalyDetector.
//
// A production serving path cannot afford one dirty series or one slow
// detector taking down a whole evaluation run. The wrapper builds a
// staged pipeline around the inner detector:
//
//   1. validate + sanitize the input (missing markers imputed under a
//      pluggable policy; refuse with kResourceExhausted past a damage
//      limit),
//   2. score under a cooperative deadline (kDeadlineExceeded instead of
//      an unbounded run — see robustness/deadline.h),
//   3. sanitize the output (non-finite scores patched; a mostly
//      non-finite track counts as failure, not success),
//   4. on failure, retry once with a simplified configuration of the
//      same detector (e.g. half the window), and finally
//   5. degrade gracefully to a cheap fallback detector (moving z-score
//      by default via the registry) rather than erroring out.
//
// The registry exposes this as the spec prefix `resilient:<spec>`, e.g.
// `resilient:discord:m=128`.

#ifndef TSAD_ROBUSTNESS_RESILIENT_H_
#define TSAD_ROBUSTNESS_RESILIENT_H_

#include <chrono>
#include <memory>
#include <string>

#include "detectors/detector.h"
#include "robustness/sanitize.h"

namespace tsad {

struct ResilientConfig {
  /// How missing input points are repaired before scoring.
  ImputationPolicy imputation = ImputationPolicy::kLinearInterpolate;
  /// Missing-data marker recognized alongside NaN/inf.
  double sentinel = kDefaultSentinel;
  /// Refuse (kResourceExhausted) when more than this fraction of the
  /// input is missing — past that the series is noise, not data.
  double max_missing_fraction = 0.5;
  /// Per-attempt scoring budget; zero disables the watchdog. Applies to
  /// each stage (primary, retry, fallback) separately, so a timed-out
  /// primary still leaves the fallback its full budget.
  std::chrono::milliseconds deadline{0};
  /// An attempt whose score track is more than this fraction non-finite
  /// is treated as failed instead of being patched point-wise.
  double max_bad_score_fraction = 0.5;
};

/// Which pipeline stage produced the scores of the last Score() call.
enum class ServedBy {
  kNone,        // no call yet, or every stage failed
  kPrimary,     // the wrapped detector
  kSimplified,  // the simplified-configuration retry
  kFallback,    // the registered fallback detector
};

std::string_view ServedByName(ServedBy served);

class ResilientDetector : public AnomalyDetector {
 public:
  /// `inner` is required. `simplified` (same detector family, cheaper
  /// configuration) and `fallback` are optional stages; pass nullptr to
  /// skip them. The registry wires all three from a spec string.
  ResilientDetector(std::unique_ptr<AnomalyDetector> inner,
                    ResilientConfig config = {},
                    std::unique_ptr<AnomalyDetector> simplified = nullptr,
                    std::unique_ptr<AnomalyDetector> fallback = nullptr);

  std::string_view name() const override { return name_; }
  using AnomalyDetector::Score;
  Result<std::vector<double>> Score(const Series& series,
                                    std::size_t train_length) const override;

  const AnomalyDetector& inner() const { return *inner_; }
  const ResilientConfig& config() const { return config_; }

  /// The last_* telemetry below is mutable per-call state, so two
  /// threads must not Score() the same instance concurrently.
  bool concurrent_score_safe() const override { return false; }

  // Telemetry from the most recent Score() call (single-threaded use).
  ServedBy last_served_by() const { return last_served_by_; }
  const Status& last_primary_status() const { return last_primary_status_; }
  const MissingScan& last_scan() const { return last_scan_; }
  std::size_t last_scores_patched() const { return last_scores_patched_; }

 private:
  Result<std::vector<double>> RunStage(const AnomalyDetector& detector,
                                       const SanitizedSeries& input,
                                       std::size_t original_length,
                                       std::size_t train_length) const;

  std::unique_ptr<AnomalyDetector> inner_;
  std::unique_ptr<AnomalyDetector> simplified_;
  std::unique_ptr<AnomalyDetector> fallback_;
  ResilientConfig config_;
  std::string name_;

  mutable ServedBy last_served_by_ = ServedBy::kNone;
  mutable Status last_primary_status_;
  mutable MissingScan last_scan_;
  mutable std::size_t last_scores_patched_ = 0;
};

}  // namespace tsad

#endif  // TSAD_ROBUSTNESS_RESILIENT_H_
