// Seeded, composable fault injection over Series / LabeledSeries, plus
// the serving-path fault layer behind bench/chaos_serving.cc.
//
// Generalizes the Fig 13 noise study into a full fault matrix: where
// the invariance harness sweeps one perturbation family at increasing
// levels, the FaultInjector models the concrete data pathologies §3 of
// the paper says production data actually exhibits — NaN and -9999
// missing markers, dropout gaps, flatlined (stuck-at) sensors, spike
// bursts, ADC clipping and quantization — each parameterized by a
// severity in [0, 1] and driven by an explicit seed so every corrupted
// series is bit-reproducible.
//
// The serving faults are a different axis: they attack the ENGINE, not
// the data — detectors that throw mid-stream, per-stream deadlines that
// blow, producer bursts that overflow queues, snapshots that arrive
// corrupted. ServingFaultState schedules them deterministically per
// stream and ChaosOnlineDetector injects them through the engine's
// detector_decorator seam, so a chaos run is exactly reproducible from
// its seed.

#ifndef TSAD_ROBUSTNESS_FAULT_INJECTOR_H_
#define TSAD_ROBUSTNESS_FAULT_INJECTOR_H_

#include <cstdint>
#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/series.h"
#include "robustness/sanitize.h"
#include "serving/online_detector.h"

namespace tsad {

/// The fault taxonomy. Severity semantics per type are documented on
/// FaultSpec::severity.
enum class FaultType {
  kNanMissing,       // i.i.d. points replaced by NaN
  kSentinelMissing,  // i.i.d. points replaced by the -9999-style marker
  kDropout,          // one contiguous gap of NaN (a dead feed)
  kStuckAt,          // one contiguous run frozen at its first value
  kSpikeBurst,       // scattered large +/- spikes
  kClipping,         // saturation at inner quantiles (ADC/range limits)
  kQuantization,     // values rounded to a coarse grid (low-bit ADC)
  kAdditiveNoise,    // i.i.d. Gaussian noise, Fig 13 style
};

/// All eight fault types, in enum order.
const std::vector<FaultType>& AllFaultTypes();

std::string_view FaultTypeName(FaultType type);

/// One fault to apply.
struct FaultSpec {
  FaultType type = FaultType::kNanMissing;

  /// Interpretation by type, always scaling monotonically with damage:
  ///  * kNanMissing / kSentinelMissing: per-point corruption probability
  ///  * kDropout / kStuckAt: gap/run width as a fraction of the series
  ///  * kSpikeBurst: fraction of points spiked (at least 1 if > 0)
  ///  * kClipping: total quantile mass clipped (severity/2 per tail)
  ///  * kQuantization: grid step in units of the series std
  ///  * kAdditiveNoise: noise std in units of the series std
  double severity = 0.1;

  /// Marker value written by kSentinelMissing.
  double sentinel = kDefaultSentinel;
};

/// Applies faults in the order they were added. Deterministic: the
/// output depends only on (seed, fault list, input).
class FaultInjector {
 public:
  explicit FaultInjector(uint64_t seed) : seed_(seed) {}

  FaultInjector& Add(FaultSpec spec) {
    faults_.push_back(spec);
    return *this;
  }
  const std::vector<FaultSpec>& faults() const { return faults_; }

  /// Returns a corrupted copy. severity == 0 faults are no-ops.
  Series Apply(const Series& clean) const;

  /// Corrupts the values; name, labels and training split are kept —
  /// ground truth describes the underlying process, not the damage.
  LabeledSeries Apply(const LabeledSeries& clean) const;

 private:
  uint64_t seed_;
  std::vector<FaultSpec> faults_;
};

// ---------------------------------------------------------------------
// Serving-path faults (the chaos harness layer).

/// Faults the serving engine itself must survive. The first two are
/// injected by ChaosOnlineDetector through the engine's decorator seam;
/// the last two are driven by the harness against the engine's public
/// surface (producer bursts, corrupted failover blobs).
enum class ServingFaultType {
  kDetectorError,      // Observe fails with kInternal at one point
  kDeadlineStorm,      // Observe fails with kDeadlineExceeded at one point
  kQueueFullBurst,     // producers overrun a shard queue (kShed path)
  kSnapshotCorruption, // a failover blob arrives with flipped bytes
};

/// All four serving fault types, in enum order.
const std::vector<ServingFaultType>& AllServingFaultTypes();

std::string_view ServingFaultTypeName(ServingFaultType type);

/// Per-stream incidence rates for the decorator-injected faults. Each
/// rate is the probability that a stream gets ONE such fault scheduled,
/// at a point index drawn uniformly from [0, horizon).
struct ServingFaultPlan {
  double detector_error_rate = 0.0;
  double deadline_storm_rate = 0.0;
  std::size_t horizon = 0;  // points per stream the schedule spans
};

/// One stream's fault schedule, fixed at construction from
/// (seed, stream id, plan) — bit-reproducible, independent of shard
/// placement and thread count.
///
/// The harness holds it via shared_ptr and hands the SAME instance to
/// every detector built for the stream. That is load-bearing: the
/// engine rebuilds detectors on quarantine recovery and cold-stream
/// thaw, and a transient fault that already fired must NOT fire again
/// when the recovered detector replays the same point — otherwise no
/// stream with a scheduled fault could ever recover.
class ServingFaultState {
 public:
  ServingFaultState(uint64_t seed, std::string_view stream_id,
                    const ServingFaultPlan& plan);

  /// Consumes the fault scheduled at point `index`, if any and not yet
  /// fired. Called by ChaosOnlineDetector before each point; not
  /// thread-safe (the engine serializes all access to a stream).
  std::optional<ServingFaultType> Fire(std::size_t index);

  bool detector_error_scheduled() const {
    return error_index_ != kNone;
  }
  bool deadline_storm_scheduled() const {
    return storm_index_ != kNone;
  }

 private:
  static constexpr std::size_t kNone =
      std::numeric_limits<std::size_t>::max();

  std::size_t error_index_ = kNone;
  std::size_t storm_index_ = kNone;
  bool error_fired_ = false;
  bool storm_fired_ = false;
};

/// OnlineDetector decorator that fires a ServingFaultState's schedule.
/// A fault fires BEFORE the point reaches the inner detector, so a
/// failed Observe leaves the inner state exactly as it was — the
/// engine's checkpoint rollback plus replay then reproduces the batch
/// scores bit for bit. Deadline storms fail fast with
/// kDeadlineExceeded rather than actually stalling, which keeps chaos
/// runs deterministic and cheap while exercising the same engine path
/// a real deadline blow-through takes.
class ChaosOnlineDetector : public OnlineDetector {
 public:
  ChaosOnlineDetector(std::unique_ptr<OnlineDetector> inner,
                      std::shared_ptr<ServingFaultState> faults);

  std::string_view name() const override { return inner_->name(); }
  Status Observe(double value, std::vector<ScoredPoint>* out) override;
  Status Flush(std::vector<ScoredPoint>* out) override;
  /// Snapshot/Restore forward to the inner detector unchanged: chaos
  /// blobs are compatible with undecorated rebuilds, and the fault
  /// schedule deliberately lives OUTSIDE the snapshot (see
  /// ServingFaultState).
  Result<std::string> Snapshot() const override;
  Status Restore(std::string_view blob) override;
  std::size_t MemoryFootprint() const override {
    return sizeof(*this) + inner_->MemoryFootprint();
  }

 private:
  std::unique_ptr<OnlineDetector> inner_;
  std::shared_ptr<ServingFaultState> faults_;
};

/// Returns `blob` with `flips` bytes deterministically XOR-flipped
/// (skipping the leading length prefix of a non-trivial blob, so the
/// corruption lands in payload rather than degenerating to an instant
/// length-check reject every time). For snapshot-corruption negative
/// tests: a restore from the result must FAIL, never half-apply.
std::string CorruptBlob(std::string_view blob, uint64_t seed,
                        std::size_t flips = 8);

}  // namespace tsad

#endif  // TSAD_ROBUSTNESS_FAULT_INJECTOR_H_
