// Seeded, composable fault injection over Series / LabeledSeries.
//
// Generalizes the Fig 13 noise study into a full fault matrix: where
// the invariance harness sweeps one perturbation family at increasing
// levels, the FaultInjector models the concrete data pathologies §3 of
// the paper says production data actually exhibits — NaN and -9999
// missing markers, dropout gaps, flatlined (stuck-at) sensors, spike
// bursts, ADC clipping and quantization — each parameterized by a
// severity in [0, 1] and driven by an explicit seed so every corrupted
// series is bit-reproducible.

#ifndef TSAD_ROBUSTNESS_FAULT_INJECTOR_H_
#define TSAD_ROBUSTNESS_FAULT_INJECTOR_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "common/series.h"
#include "robustness/sanitize.h"

namespace tsad {

/// The fault taxonomy. Severity semantics per type are documented on
/// FaultSpec::severity.
enum class FaultType {
  kNanMissing,       // i.i.d. points replaced by NaN
  kSentinelMissing,  // i.i.d. points replaced by the -9999-style marker
  kDropout,          // one contiguous gap of NaN (a dead feed)
  kStuckAt,          // one contiguous run frozen at its first value
  kSpikeBurst,       // scattered large +/- spikes
  kClipping,         // saturation at inner quantiles (ADC/range limits)
  kQuantization,     // values rounded to a coarse grid (low-bit ADC)
  kAdditiveNoise,    // i.i.d. Gaussian noise, Fig 13 style
};

/// All eight fault types, in enum order.
const std::vector<FaultType>& AllFaultTypes();

std::string_view FaultTypeName(FaultType type);

/// One fault to apply.
struct FaultSpec {
  FaultType type = FaultType::kNanMissing;

  /// Interpretation by type, always scaling monotonically with damage:
  ///  * kNanMissing / kSentinelMissing: per-point corruption probability
  ///  * kDropout / kStuckAt: gap/run width as a fraction of the series
  ///  * kSpikeBurst: fraction of points spiked (at least 1 if > 0)
  ///  * kClipping: total quantile mass clipped (severity/2 per tail)
  ///  * kQuantization: grid step in units of the series std
  ///  * kAdditiveNoise: noise std in units of the series std
  double severity = 0.1;

  /// Marker value written by kSentinelMissing.
  double sentinel = kDefaultSentinel;
};

/// Applies faults in the order they were added. Deterministic: the
/// output depends only on (seed, fault list, input).
class FaultInjector {
 public:
  explicit FaultInjector(uint64_t seed) : seed_(seed) {}

  FaultInjector& Add(FaultSpec spec) {
    faults_.push_back(spec);
    return *this;
  }
  const std::vector<FaultSpec>& faults() const { return faults_; }

  /// Returns a corrupted copy. severity == 0 faults are no-ops.
  Series Apply(const Series& clean) const;

  /// Corrupts the values; name, labels and training split are kept —
  /// ground truth describes the underlying process, not the damage.
  LabeledSeries Apply(const LabeledSeries& clean) const;

 private:
  uint64_t seed_;
  std::vector<FaultSpec> faults_;
};

}  // namespace tsad

#endif  // TSAD_ROBUSTNESS_FAULT_INJECTOR_H_
