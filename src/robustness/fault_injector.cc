#include "robustness/fault_injector.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/rng.h"
#include "common/stats.h"

namespace tsad {

namespace {

// Scale for magnitude-based faults, taken over the finite entries only
// so that stacked missing-marker faults do not poison later ones.
double FiniteStd(const Series& x) {
  Series finite;
  finite.reserve(x.size());
  for (double v : x) {
    if (std::isfinite(v)) finite.push_back(v);
  }
  const double sd = StdDev(finite);
  return sd > 0.0 ? sd : 1.0;
}

// Start index of a width-`w` window placed uniformly at random.
std::size_t RandomStart(std::size_t n, std::size_t w, Rng& rng) {
  if (w >= n) return 0;
  return static_cast<std::size_t>(
      rng.UniformInt(0, static_cast<int64_t>(n - w)));
}

void ApplyOne(Series& x, const FaultSpec& fault, Rng& rng) {
  const std::size_t n = x.size();
  if (n == 0 || fault.severity <= 0.0) return;
  const double severity = std::min(fault.severity, 1.0);

  switch (fault.type) {
    case FaultType::kNanMissing:
      for (double& v : x) {
        if (rng.Bernoulli(severity)) {
          v = std::numeric_limits<double>::quiet_NaN();
        }
      }
      break;
    case FaultType::kSentinelMissing:
      for (double& v : x) {
        if (rng.Bernoulli(severity)) v = fault.sentinel;
      }
      break;
    case FaultType::kDropout: {
      const std::size_t w = std::max<std::size_t>(
          1, static_cast<std::size_t>(severity * static_cast<double>(n)));
      const std::size_t begin = RandomStart(n, w, rng);
      const std::size_t end = std::min(n, begin + w);
      for (std::size_t i = begin; i < end; ++i) {
        x[i] = std::numeric_limits<double>::quiet_NaN();
      }
      break;
    }
    case FaultType::kStuckAt: {
      const std::size_t w = std::max<std::size_t>(
          2, static_cast<std::size_t>(severity * static_cast<double>(n)));
      const std::size_t begin = RandomStart(n, w, rng);
      const std::size_t end = std::min(n, begin + w);
      for (std::size_t i = begin + 1; i < end; ++i) x[i] = x[begin];
      break;
    }
    case FaultType::kSpikeBurst: {
      const double sd = FiniteStd(x);
      const std::size_t count = std::max<std::size_t>(
          1, static_cast<std::size_t>(severity * static_cast<double>(n)));
      for (std::size_t k = 0; k < count; ++k) {
        const std::size_t i = static_cast<std::size_t>(
            rng.UniformInt(0, static_cast<int64_t>(n) - 1));
        const double sign = rng.Bernoulli(0.5) ? 1.0 : -1.0;
        if (std::isfinite(x[i])) {
          x[i] += sign * sd * rng.Uniform(6.0, 10.0);
        }
      }
      break;
    }
    case FaultType::kClipping: {
      Series finite;
      finite.reserve(n);
      for (double v : x) {
        if (std::isfinite(v)) finite.push_back(v);
      }
      if (finite.size() < 2) break;
      const double lo = Quantile(finite, severity / 2.0);
      const double hi = Quantile(finite, 1.0 - severity / 2.0);
      for (double& v : x) {
        if (std::isfinite(v)) v = std::clamp(v, lo, hi);
      }
      break;
    }
    case FaultType::kQuantization: {
      const double step = severity * FiniteStd(x);
      if (step <= 0.0) break;
      for (double& v : x) {
        if (std::isfinite(v)) v = std::round(v / step) * step;
      }
      break;
    }
    case FaultType::kAdditiveNoise: {
      const double sd = FiniteStd(x);
      for (double& v : x) {
        if (std::isfinite(v)) v += rng.Gaussian(0.0, fault.severity * sd);
      }
      break;
    }
  }
}

}  // namespace

const std::vector<FaultType>& AllFaultTypes() {
  static const std::vector<FaultType> kAll = {
      FaultType::kNanMissing, FaultType::kSentinelMissing,
      FaultType::kDropout,    FaultType::kStuckAt,
      FaultType::kSpikeBurst, FaultType::kClipping,
      FaultType::kQuantization, FaultType::kAdditiveNoise,
  };
  return kAll;
}

std::string_view FaultTypeName(FaultType type) {
  switch (type) {
    case FaultType::kNanMissing:
      return "nan-missing";
    case FaultType::kSentinelMissing:
      return "sentinel-missing";
    case FaultType::kDropout:
      return "dropout-gap";
    case FaultType::kStuckAt:
      return "stuck-at";
    case FaultType::kSpikeBurst:
      return "spike-burst";
    case FaultType::kClipping:
      return "clipping";
    case FaultType::kQuantization:
      return "quantization";
    case FaultType::kAdditiveNoise:
      return "additive-noise";
  }
  return "?";
}

Series FaultInjector::Apply(const Series& clean) const {
  Series out = clean;
  Rng master(seed_);
  // One forked stream per fault: appending a fault never changes the
  // realization of the ones before it.
  for (std::size_t k = 0; k < faults_.size(); ++k) {
    Rng stream = master.Fork(k);
    ApplyOne(out, faults_[k], stream);
  }
  return out;
}

LabeledSeries FaultInjector::Apply(const LabeledSeries& clean) const {
  LabeledSeries out = clean;
  out.mutable_values() = Apply(clean.values());
  return out;
}

}  // namespace tsad
