#include "robustness/fault_injector.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/rng.h"
#include "common/stats.h"

namespace tsad {

namespace {

// Scale for magnitude-based faults, taken over the finite entries only
// so that stacked missing-marker faults do not poison later ones.
double FiniteStd(const Series& x) {
  Series finite;
  finite.reserve(x.size());
  for (double v : x) {
    if (std::isfinite(v)) finite.push_back(v);
  }
  const double sd = StdDev(finite);
  return sd > 0.0 ? sd : 1.0;
}

// Start index of a width-`w` window placed uniformly at random.
std::size_t RandomStart(std::size_t n, std::size_t w, Rng& rng) {
  if (w >= n) return 0;
  return static_cast<std::size_t>(
      rng.UniformInt(0, static_cast<int64_t>(n - w)));
}

void ApplyOne(Series& x, const FaultSpec& fault, Rng& rng) {
  const std::size_t n = x.size();
  if (n == 0 || fault.severity <= 0.0) return;
  const double severity = std::min(fault.severity, 1.0);

  switch (fault.type) {
    case FaultType::kNanMissing:
      for (double& v : x) {
        if (rng.Bernoulli(severity)) {
          v = std::numeric_limits<double>::quiet_NaN();
        }
      }
      break;
    case FaultType::kSentinelMissing:
      for (double& v : x) {
        if (rng.Bernoulli(severity)) v = fault.sentinel;
      }
      break;
    case FaultType::kDropout: {
      const std::size_t w = std::max<std::size_t>(
          1, static_cast<std::size_t>(severity * static_cast<double>(n)));
      const std::size_t begin = RandomStart(n, w, rng);
      const std::size_t end = std::min(n, begin + w);
      for (std::size_t i = begin; i < end; ++i) {
        x[i] = std::numeric_limits<double>::quiet_NaN();
      }
      break;
    }
    case FaultType::kStuckAt: {
      const std::size_t w = std::max<std::size_t>(
          2, static_cast<std::size_t>(severity * static_cast<double>(n)));
      const std::size_t begin = RandomStart(n, w, rng);
      const std::size_t end = std::min(n, begin + w);
      for (std::size_t i = begin + 1; i < end; ++i) x[i] = x[begin];
      break;
    }
    case FaultType::kSpikeBurst: {
      const double sd = FiniteStd(x);
      const std::size_t count = std::max<std::size_t>(
          1, static_cast<std::size_t>(severity * static_cast<double>(n)));
      for (std::size_t k = 0; k < count; ++k) {
        const std::size_t i = static_cast<std::size_t>(
            rng.UniformInt(0, static_cast<int64_t>(n) - 1));
        const double sign = rng.Bernoulli(0.5) ? 1.0 : -1.0;
        if (std::isfinite(x[i])) {
          x[i] += sign * sd * rng.Uniform(6.0, 10.0);
        }
      }
      break;
    }
    case FaultType::kClipping: {
      Series finite;
      finite.reserve(n);
      for (double v : x) {
        if (std::isfinite(v)) finite.push_back(v);
      }
      if (finite.size() < 2) break;
      const double lo = Quantile(finite, severity / 2.0);
      const double hi = Quantile(finite, 1.0 - severity / 2.0);
      for (double& v : x) {
        if (std::isfinite(v)) v = std::clamp(v, lo, hi);
      }
      break;
    }
    case FaultType::kQuantization: {
      const double step = severity * FiniteStd(x);
      if (step <= 0.0) break;
      for (double& v : x) {
        if (std::isfinite(v)) v = std::round(v / step) * step;
      }
      break;
    }
    case FaultType::kAdditiveNoise: {
      const double sd = FiniteStd(x);
      for (double& v : x) {
        if (std::isfinite(v)) v += rng.Gaussian(0.0, fault.severity * sd);
      }
      break;
    }
  }
}

}  // namespace

const std::vector<FaultType>& AllFaultTypes() {
  static const std::vector<FaultType> kAll = {
      FaultType::kNanMissing, FaultType::kSentinelMissing,
      FaultType::kDropout,    FaultType::kStuckAt,
      FaultType::kSpikeBurst, FaultType::kClipping,
      FaultType::kQuantization, FaultType::kAdditiveNoise,
  };
  return kAll;
}

std::string_view FaultTypeName(FaultType type) {
  switch (type) {
    case FaultType::kNanMissing:
      return "nan-missing";
    case FaultType::kSentinelMissing:
      return "sentinel-missing";
    case FaultType::kDropout:
      return "dropout-gap";
    case FaultType::kStuckAt:
      return "stuck-at";
    case FaultType::kSpikeBurst:
      return "spike-burst";
    case FaultType::kClipping:
      return "clipping";
    case FaultType::kQuantization:
      return "quantization";
    case FaultType::kAdditiveNoise:
      return "additive-noise";
  }
  return "?";
}

Series FaultInjector::Apply(const Series& clean) const {
  Series out = clean;
  Rng master(seed_);
  // One forked stream per fault: appending a fault never changes the
  // realization of the ones before it.
  for (std::size_t k = 0; k < faults_.size(); ++k) {
    Rng stream = master.Fork(k);
    ApplyOne(out, faults_[k], stream);
  }
  return out;
}

LabeledSeries FaultInjector::Apply(const LabeledSeries& clean) const {
  LabeledSeries out = clean;
  out.mutable_values() = Apply(clean.values());
  return out;
}

// ---------------------------------------------------------------------
// Serving-path faults.

namespace {

std::uint64_t Fnv1aHash(std::string_view s) {
  std::uint64_t h = 1469598103934665603ull;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

const std::vector<ServingFaultType>& AllServingFaultTypes() {
  static const std::vector<ServingFaultType> kAll = {
      ServingFaultType::kDetectorError,
      ServingFaultType::kDeadlineStorm,
      ServingFaultType::kQueueFullBurst,
      ServingFaultType::kSnapshotCorruption,
  };
  return kAll;
}

std::string_view ServingFaultTypeName(ServingFaultType type) {
  switch (type) {
    case ServingFaultType::kDetectorError:
      return "detector-error";
    case ServingFaultType::kDeadlineStorm:
      return "deadline-storm";
    case ServingFaultType::kQueueFullBurst:
      return "queue-full-burst";
    case ServingFaultType::kSnapshotCorruption:
      return "snapshot-corruption";
  }
  return "?";
}

ServingFaultState::ServingFaultState(uint64_t seed,
                                     std::string_view stream_id,
                                     const ServingFaultPlan& plan) {
  if (plan.horizon == 0) return;
  // Keyed by stream id, not registration order, so the schedule is
  // invariant to shard placement and harness iteration order.
  Rng rng(seed ^ Fnv1aHash(stream_id));
  if (rng.Bernoulli(plan.detector_error_rate)) {
    error_index_ = static_cast<std::size_t>(
        rng.UniformInt(0, static_cast<int64_t>(plan.horizon) - 1));
  }
  if (rng.Bernoulli(plan.deadline_storm_rate)) {
    storm_index_ = static_cast<std::size_t>(
        rng.UniformInt(0, static_cast<int64_t>(plan.horizon) - 1));
  }
  // Two faults on the same point would mask each other (the first one
  // quarantines the stream and the replay skips the second's trigger
  // check only once it refires) — nudge the storm off the collision.
  if (storm_index_ != kNone && storm_index_ == error_index_) {
    storm_index_ = (storm_index_ + 1) % plan.horizon;
    if (storm_index_ == error_index_) storm_index_ = kNone;  // horizon 1
  }
}

std::optional<ServingFaultType> ServingFaultState::Fire(std::size_t index) {
  if (!error_fired_ && index == error_index_) {
    error_fired_ = true;
    return ServingFaultType::kDetectorError;
  }
  if (!storm_fired_ && index == storm_index_) {
    storm_fired_ = true;
    return ServingFaultType::kDeadlineStorm;
  }
  return std::nullopt;
}

ChaosOnlineDetector::ChaosOnlineDetector(
    std::unique_ptr<OnlineDetector> inner,
    std::shared_ptr<ServingFaultState> faults)
    : inner_(std::move(inner)), faults_(std::move(faults)) {}

Status ChaosOnlineDetector::Observe(double value,
                                    std::vector<ScoredPoint>* out) {
  if (faults_ != nullptr) {
    // The stream position is the inner detector's observed count: after
    // a checkpoint Restore it rewinds with the state, so a replay walks
    // the same indices past the (already-fired) fault.
    const std::size_t index = inner_->observed();
    if (std::optional<ServingFaultType> fault = faults_->Fire(index)) {
      switch (*fault) {
        case ServingFaultType::kDetectorError:
          return Status::Internal("chaos: injected detector error at point " +
                                  std::to_string(index));
        case ServingFaultType::kDeadlineStorm:
          return Status::DeadlineExceeded(
              "chaos: injected deadline storm at point " +
              std::to_string(index));
        default:
          break;  // harness-driven types never fire here
      }
    }
  }
  TSAD_RETURN_IF_ERROR(inner_->Observe(value, out));
  ++observed_;
  return Status::OK();
}

Status ChaosOnlineDetector::Flush(std::vector<ScoredPoint>* out) {
  return inner_->Flush(out);
}

Result<std::string> ChaosOnlineDetector::Snapshot() const {
  return inner_->Snapshot();
}

Status ChaosOnlineDetector::Restore(std::string_view blob) {
  TSAD_RETURN_IF_ERROR(inner_->Restore(blob));
  observed_ = inner_->observed();
  return Status::OK();
}

std::string CorruptBlob(std::string_view blob, uint64_t seed,
                        std::size_t flips) {
  std::string out(blob);
  if (out.empty() || flips == 0) return out;
  Rng rng(seed);
  // Skip the leading length prefix when the blob is big enough to have
  // payload, so the damage exercises real decode paths.
  const std::size_t lo = out.size() > 16 ? 8 : 0;
  for (std::size_t k = 0; k < flips; ++k) {
    const std::size_t i = static_cast<std::size_t>(rng.UniformInt(
        static_cast<int64_t>(lo), static_cast<int64_t>(out.size()) - 1));
    const auto mask = static_cast<unsigned char>(rng.UniformInt(1, 255));
    out[i] = static_cast<char>(static_cast<unsigned char>(out[i]) ^ mask);
  }
  return out;
}

}  // namespace tsad
