#include "robustness/deadline.h"

#include <algorithm>

namespace tsad {

namespace {

using Clock = std::chrono::steady_clock;

// The active deadline for this thread. A flag instead of optional<> so
// the thread_local is trivially constructible/destructible.
thread_local bool g_deadline_active = false;
thread_local Clock::time_point g_deadline;

}  // namespace

DeadlineScope::DeadlineScope(std::chrono::nanoseconds budget)
    : DeadlineScope(Clock::now() + budget) {}

DeadlineScope::DeadlineScope(std::chrono::steady_clock::time_point deadline)
    : previous_(g_deadline), had_previous_(g_deadline_active) {
  if (had_previous_) deadline = std::min(deadline, previous_);  // only tighten
  g_deadline = deadline;
  g_deadline_active = true;
}

DeadlineScope::~DeadlineScope() {
  g_deadline = previous_;
  g_deadline_active = had_previous_;
}

bool DeadlineActive() { return g_deadline_active; }

Status CheckDeadline() {
  if (!g_deadline_active || Clock::now() < g_deadline) return Status::OK();
  return Status::DeadlineExceeded("cooperative deadline expired");
}

std::chrono::nanoseconds DeadlineRemaining() {
  if (!g_deadline_active) return std::chrono::nanoseconds::max();
  const auto left = g_deadline - Clock::now();
  return left.count() > 0 ? std::chrono::duration_cast<std::chrono::nanoseconds>(
                                left)
                          : std::chrono::nanoseconds::zero();
}

std::chrono::steady_clock::time_point DeadlineTimePoint() {
  return g_deadline;
}

}  // namespace tsad
