#include "robustness/deadline.h"

#include <algorithm>

namespace tsad {

namespace {

using Clock = std::chrono::steady_clock;

// The active deadline for this thread. A flag instead of optional<> so
// the thread_local is trivially constructible/destructible.
thread_local bool g_deadline_active = false;
thread_local Clock::time_point g_deadline;

}  // namespace

DeadlineScope::DeadlineScope(std::chrono::nanoseconds budget)
    : previous_(g_deadline), had_previous_(g_deadline_active) {
  Clock::time_point mine = Clock::now() + budget;
  if (had_previous_) mine = std::min(mine, previous_);  // only tighten
  g_deadline = mine;
  g_deadline_active = true;
}

DeadlineScope::~DeadlineScope() {
  g_deadline = previous_;
  g_deadline_active = had_previous_;
}

bool DeadlineActive() { return g_deadline_active; }

Status CheckDeadline() {
  if (!g_deadline_active || Clock::now() < g_deadline) return Status::OK();
  return Status::DeadlineExceeded("cooperative deadline expired");
}

std::chrono::nanoseconds DeadlineRemaining() {
  if (!g_deadline_active) return std::chrono::nanoseconds::max();
  const auto left = g_deadline - Clock::now();
  return left.count() > 0 ? std::chrono::duration_cast<std::chrono::nanoseconds>(
                                left)
                          : std::chrono::nanoseconds::zero();
}

}  // namespace tsad
