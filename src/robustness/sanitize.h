// Input validation and sanitization for dirty real-world series.
//
// The paper's §3 calls out exactly the pathologies the popular
// benchmarks hide: AspenTech-style -9999 missing-data markers, NaN
// gaps from dropped samples, and sensors that flatline. The functions
// here recognize those markers, summarize the damage (ScanForMissing),
// and repair it under a pluggable imputation policy so that detectors
// written for clean, finite, gap-free input can run at all.

#ifndef TSAD_ROBUSTNESS_SANITIZE_H_
#define TSAD_ROBUSTNESS_SANITIZE_H_

#include <cstddef>
#include <string_view>
#include <vector>

#include "common/series.h"
#include "common/status.h"

namespace tsad {

/// The conventional missing-data marker ("-9999 is AspenTech's code for
/// missing data", §3 of the paper).
inline constexpr double kDefaultSentinel = -9999.0;

/// How missing points are repaired before scoring.
enum class ImputationPolicy {
  kLinearInterpolate,  // straight line between surrounding observations
  kLocf,               // last observation carried forward
  kDropAndReindex,     // remove missing points; scores map back via index
};

std::string_view ImputationPolicyName(ImputationPolicy policy);

/// Damage summary for one series.
struct MissingScan {
  std::size_t n = 0;             // series length
  std::size_t num_nan = 0;       // NaN entries
  std::size_t num_inf = 0;       // +/-inf entries
  std::size_t num_sentinel = 0;  // exact sentinel matches
  std::size_t longest_gap = 0;   // longest run of consecutive missing points

  std::size_t num_missing() const { return num_nan + num_inf + num_sentinel; }
  double missing_fraction() const {
    return n == 0 ? 0.0 : static_cast<double>(num_missing()) /
                              static_cast<double>(n);
  }
};

/// Counts NaN / inf / sentinel entries and the longest contiguous gap.
MissingScan ScanForMissing(const Series& x, double sentinel = kDefaultSentinel);

/// A repaired series plus the bookkeeping needed to relate results back
/// to the original index space.
struct SanitizedSeries {
  Series values;  // every entry finite; shorter than the input only
                  // under kDropAndReindex
  /// Under kDropAndReindex: original index of each kept point. Empty
  /// for the length-preserving policies.
  std::vector<std::size_t> kept;
  MissingScan scan;

  bool reindexed() const { return !kept.empty(); }

  /// Maps a training-prefix length in original coordinates to the
  /// sanitized coordinates (identity unless reindexed).
  std::size_t MapTrainLength(std::size_t train_length) const;

  /// Expands a score track computed on `values` back to
  /// `original_length` points. Dropped positions receive 0 (neutral:
  /// never the argmax of a meaningful track). Identity when not
  /// reindexed.
  std::vector<double> ExpandScores(const std::vector<double>& scores,
                                   std::size_t original_length) const;
};

/// Repairs every missing point of `x` under `policy`.
///
/// Errors: kResourceExhausted if every point is missing or the missing
/// fraction exceeds `max_missing_fraction` (a series that damaged is
/// noise, not data). An empty series sanitizes to an empty series.
Result<SanitizedSeries> SanitizeSeries(const Series& x, ImputationPolicy policy,
                                       double sentinel = kDefaultSentinel,
                                       double max_missing_fraction = 1.0);

/// Replaces non-finite entries of a score track in place with
/// `replacement`; returns how many were patched.
std::size_t SanitizeScores(std::vector<double>& scores,
                           double replacement = 0.0);

}  // namespace tsad

#endif  // TSAD_ROBUSTNESS_SANITIZE_H_
