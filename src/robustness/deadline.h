// Cooperative per-run deadlines.
//
// A DeadlineScope installs a deadline for the current thread;
// long-running library code (the STOMP matrix-profile loops, the
// resilient wrapper's pipeline) polls CheckDeadline() at safe points
// and unwinds with kDeadlineExceeded once the budget is spent. The
// watchdog is cooperative rather than preemptive: a detector that
// never polls cannot be interrupted mid-flight, but in exchange nothing
// is ever torn down in an inconsistent state — no threads, signals or
// locks are involved and unwinding is always a clean Status return.

#ifndef TSAD_ROBUSTNESS_DEADLINE_H_
#define TSAD_ROBUSTNESS_DEADLINE_H_

#include <chrono>

#include "common/status.h"

namespace tsad {

/// RAII guard installing a deadline for the current thread. Scopes
/// nest: an inner scope can only tighten the effective deadline, never
/// extend past the enclosing one. The enclosing deadline (if any) is
/// restored on destruction.
class DeadlineScope {
 public:
  explicit DeadlineScope(std::chrono::nanoseconds budget);
  /// Installs an absolute deadline — the adoption form used to carry a
  /// deadline across threads: the parallel layer captures
  /// DeadlineTimePoint() on the submitting thread and re-installs it on
  /// each worker, so workers poll CheckDeadline() against the same wall
  /// deadline as the submitter (no budget drift from queueing delay).
  explicit DeadlineScope(std::chrono::steady_clock::time_point deadline);
  ~DeadlineScope();

  DeadlineScope(const DeadlineScope&) = delete;
  DeadlineScope& operator=(const DeadlineScope&) = delete;

 private:
  std::chrono::steady_clock::time_point previous_;
  bool had_previous_;
};

/// True if a DeadlineScope is active on the current thread.
bool DeadlineActive();

/// OK when no deadline is active or time remains; kDeadlineExceeded
/// once the active deadline has passed. One steady_clock read — cheap
/// enough to poll every few thousand inner-loop iterations.
Status CheckDeadline();

/// Remaining budget, or nanoseconds::max() when no deadline is active.
/// Clamped at zero once expired.
std::chrono::nanoseconds DeadlineRemaining();

/// The absolute deadline of the innermost active scope. Precondition:
/// DeadlineActive(). Pair with the time-point DeadlineScope constructor
/// to adopt this thread's deadline on another thread.
std::chrono::steady_clock::time_point DeadlineTimePoint();

}  // namespace tsad

#endif  // TSAD_ROBUSTNESS_DEADLINE_H_
