#include "robustness/matrix.h"

#include <cmath>
#include <cstdio>

#include "common/parallel.h"
#include "common/stats.h"

namespace tsad {

namespace {

bool AllFinite(const std::vector<double>& x) {
  for (double v : x) {
    if (!std::isfinite(v)) return false;
  }
  return true;
}

bool PeakWithinSlop(std::size_t peak, const LabeledSeries& series,
                    std::size_t slop) {
  if (peak == kNoPrediction || series.anomalies().empty()) return false;
  const AnomalyRegion& a = series.anomalies().front();
  const std::size_t lo = a.begin > slop ? a.begin - slop : 0;
  return peak >= lo && peak < a.end + slop;
}

}  // namespace

std::vector<RobustnessCase> DefaultFaultMatrix(
    const std::vector<double>& severities) {
  std::vector<RobustnessCase> cases;
  for (FaultType fault : AllFaultTypes()) {
    for (double severity : severities) {
      cases.push_back({fault, severity});
    }
  }
  return cases;
}

std::vector<RobustnessCell> RunRobustnessMatrix(
    const LabeledSeries& series,
    const std::vector<const AnomalyDetector*>& detectors,
    const RobustnessConfig& config) {
  const std::size_t num_cases = config.cases.size();

  // Phase 1: the clean baseline per detector, in parallel.
  struct CleanRun {
    Result<std::vector<double>> scores;
    std::size_t peak = kNoPrediction;
  };
  auto score_clean = [&](std::size_t di) -> CleanRun {
    CleanRun run{detectors[di]->Score(series), kNoPrediction};
    if (run.scores.ok()) {
      run.peak = PredictLocation(*run.scores, series.train_length());
    }
    return run;
  };
  std::vector<CleanRun> clean_runs;
  {
    Result<std::vector<CleanRun>> runs = ParallelMap<CleanRun>(
        detectors.size(),
        [&](std::size_t di) -> Result<CleanRun> { return score_clean(di); });
    if (runs.ok()) {
      clean_runs = std::move(*runs);
    } else {  // contained worker exception: recompute inline
      for (std::size_t di = 0; di < detectors.size(); ++di) {
        clean_runs.push_back(score_clean(di));
      }
    }
  }

  // Phase 2: every (detector, fault, severity) cell is independent —
  // fan the whole grid out. Cells land in detector-major, case-minor
  // order exactly as the serial loop produced them.
  auto make_cell = [&](std::size_t flat) -> RobustnessCell {
    const std::size_t di = flat / num_cases;
    const std::size_t ci = flat % num_cases;
    const AnomalyDetector* detector = detectors[di];
    const CleanRun& clean = clean_runs[di];
    const RobustnessCase& c = config.cases[ci];
    RobustnessCell cell;
    cell.detector = std::string(detector->name());
    cell.fault = c.fault;
    cell.severity = c.severity;
    // Seeded off the case index so every detector faces the same
    // fault realization — the columns stay comparable.
    FaultInjector injector(config.seed + 1 + ci);
    injector.Add({c.fault, c.severity, kDefaultSentinel});
    const LabeledSeries faulted = injector.Apply(series);

    Result<std::vector<double>> scores = detector->Score(faulted);
    if (!scores.ok()) {
      cell.status = scores.status();
      return cell;
    }
    cell.survived = scores->size() == faulted.length() && AllFinite(*scores);
    if (cell.survived) {
      const std::size_t peak =
          PredictLocation(*scores, faulted.train_length());
      if (clean.scores.ok() && clean.scores->size() == scores->size()) {
        cell.score_correlation = PearsonCorrelation(*clean.scores, *scores);
      }
      if (peak != kNoPrediction && clean.peak != kNoPrediction) {
        cell.peak_drift =
            peak > clean.peak ? peak - clean.peak : clean.peak - peak;
      }
      cell.peak_correct = PeakWithinSlop(peak, faulted, config.slop);
      cell.discrimination = Discrimination(*scores);
    } else {
      cell.status = Status::Internal("non-finite or short score track");
    }
    return cell;
  };

  // Grain = one detector's full row of cells: Score() is const but not
  // required to be concurrency-safe on the SAME instance (the resilient
  // wrapper keeps mutable diagnostics), so all cells of one detector
  // stay on one worker while distinct detectors fan out.
  Result<std::vector<RobustnessCell>> cells = ParallelMap<RobustnessCell>(
      detectors.size() * num_cases,
      [&](std::size_t flat) -> Result<RobustnessCell> {
        return make_cell(flat);
      },
      /*grain=*/num_cases);
  if (cells.ok()) return std::move(*cells);
  std::vector<RobustnessCell> fallback;
  for (std::size_t flat = 0; flat < detectors.size() * num_cases; ++flat) {
    fallback.push_back(make_cell(flat));
  }
  return fallback;
}

std::string FormatRobustnessTable(const std::vector<RobustnessCell>& cells) {
  std::string out;
  char line[256];
  std::string current;
  for (const RobustnessCell& cell : cells) {
    if (cell.detector != current) {
      current = cell.detector;
      std::snprintf(line, sizeof(line),
                    "\n%-28s %8s  %5s  %6s  %6s  %5s  %6s\n",
                    current.c_str(), "fault", "sev", "corr", "drift", "peak",
                    "disc");
      out += line;
      out += std::string(78, '-') + "\n";
    }
    if (cell.survived) {
      std::snprintf(line, sizeof(line),
                    "%-28s %16s  %4.0f%%  %6.3f  %6zu  %5s  %6.2f\n", "",
                    std::string(FaultTypeName(cell.fault)).c_str(),
                    cell.severity * 100.0, cell.score_correlation,
                    cell.peak_drift, cell.peak_correct ? "hit" : "MISS",
                    cell.discrimination);
    } else {
      std::snprintf(line, sizeof(line), "%-28s %16s  %4.0f%%  %s\n", "",
                    std::string(FaultTypeName(cell.fault)).c_str(),
                    cell.severity * 100.0, cell.status.ToString().c_str());
    }
    out += line;
  }
  return out;
}

}  // namespace tsad
