#include "robustness/matrix.h"

#include <cmath>
#include <cstdio>

#include "common/stats.h"

namespace tsad {

namespace {

bool AllFinite(const std::vector<double>& x) {
  for (double v : x) {
    if (!std::isfinite(v)) return false;
  }
  return true;
}

bool PeakWithinSlop(std::size_t peak, const LabeledSeries& series,
                    std::size_t slop) {
  if (peak == kNoPrediction || series.anomalies().empty()) return false;
  const AnomalyRegion& a = series.anomalies().front();
  const std::size_t lo = a.begin > slop ? a.begin - slop : 0;
  return peak >= lo && peak < a.end + slop;
}

}  // namespace

std::vector<RobustnessCase> DefaultFaultMatrix(
    const std::vector<double>& severities) {
  std::vector<RobustnessCase> cases;
  for (FaultType fault : AllFaultTypes()) {
    for (double severity : severities) {
      cases.push_back({fault, severity});
    }
  }
  return cases;
}

std::vector<RobustnessCell> RunRobustnessMatrix(
    const LabeledSeries& series,
    const std::vector<const AnomalyDetector*>& detectors,
    const RobustnessConfig& config) {
  std::vector<RobustnessCell> cells;
  for (const AnomalyDetector* detector : detectors) {
    const Result<std::vector<double>> clean = detector->Score(series);
    const std::size_t clean_peak =
        clean.ok() ? PredictLocation(*clean, series.train_length())
                   : kNoPrediction;
    for (std::size_t ci = 0; ci < config.cases.size(); ++ci) {
      const RobustnessCase& c = config.cases[ci];
      RobustnessCell cell;
      cell.detector = std::string(detector->name());
      cell.fault = c.fault;
      cell.severity = c.severity;
      // Seeded off the case index so every detector faces the same
      // fault realization — the columns stay comparable.
      FaultInjector injector(config.seed + 1 + ci);
      injector.Add({c.fault, c.severity, kDefaultSentinel});
      const LabeledSeries faulted = injector.Apply(series);

      Result<std::vector<double>> scores = detector->Score(faulted);
      if (!scores.ok()) {
        cell.status = scores.status();
        cells.push_back(std::move(cell));
        continue;
      }
      cell.survived =
          scores->size() == faulted.length() && AllFinite(*scores);
      if (cell.survived) {
        const std::size_t peak =
            PredictLocation(*scores, faulted.train_length());
        if (clean.ok() && clean->size() == scores->size()) {
          cell.score_correlation = PearsonCorrelation(*clean, *scores);
        }
        if (peak != kNoPrediction && clean_peak != kNoPrediction) {
          cell.peak_drift =
              peak > clean_peak ? peak - clean_peak : clean_peak - peak;
        }
        cell.peak_correct = PeakWithinSlop(peak, faulted, config.slop);
        cell.discrimination = Discrimination(*scores);
      } else {
        cell.status = Status::Internal("non-finite or short score track");
      }
      cells.push_back(std::move(cell));
    }
  }
  return cells;
}

std::string FormatRobustnessTable(const std::vector<RobustnessCell>& cells) {
  std::string out;
  char line[256];
  std::string current;
  for (const RobustnessCell& cell : cells) {
    if (cell.detector != current) {
      current = cell.detector;
      std::snprintf(line, sizeof(line),
                    "\n%-28s %8s  %5s  %6s  %6s  %5s  %6s\n",
                    current.c_str(), "fault", "sev", "corr", "drift", "peak",
                    "disc");
      out += line;
      out += std::string(78, '-') + "\n";
    }
    if (cell.survived) {
      std::snprintf(line, sizeof(line),
                    "%-28s %16s  %4.0f%%  %6.3f  %6zu  %5s  %6.2f\n", "",
                    std::string(FaultTypeName(cell.fault)).c_str(),
                    cell.severity * 100.0, cell.score_correlation,
                    cell.peak_drift, cell.peak_correct ? "hit" : "MISS",
                    cell.discrimination);
    } else {
      std::snprintf(line, sizeof(line), "%-28s %16s  %4.0f%%  %s\n", "",
                    std::string(FaultTypeName(cell.fault)).c_str(),
                    cell.severity * 100.0, cell.status.ToString().c_str());
    }
    out += line;
  }
  return out;
}

}  // namespace tsad
