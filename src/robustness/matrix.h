// The fault x severity robustness matrix — Fig 13 generalized.
//
// For each detector: score the clean series once, then re-score under
// every (fault, severity) cell and report how the output degrades —
// score-track correlation against the clean run, drift of the UCR
// predicted location, and whether the peak still lands inside the
// labeled anomaly. This is the "report invariances" recommendation of
// §4.2 extended from noise sweeps to the full fault taxonomy.

#ifndef TSAD_ROBUSTNESS_MATRIX_H_
#define TSAD_ROBUSTNESS_MATRIX_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/series.h"
#include "common/status.h"
#include "detectors/detector.h"
#include "robustness/fault_injector.h"

namespace tsad {

struct RobustnessCase {
  FaultType fault = FaultType::kNanMissing;
  double severity = 0.1;
};

/// Every fault type at the given severities (default 5%, 10%, 20%).
std::vector<RobustnessCase> DefaultFaultMatrix(
    const std::vector<double>& severities = {0.05, 0.1, 0.2});

struct RobustnessConfig {
  std::vector<RobustnessCase> cases = DefaultFaultMatrix();
  uint64_t seed = 99;
  std::size_t slop = 100;  // positional play when judging the peak
};

/// One (detector, fault, severity) outcome.
struct RobustnessCell {
  std::string detector;
  FaultType fault = FaultType::kNanMissing;
  double severity = 0.0;
  Status status;               // of scoring the faulted series
  bool survived = false;       // OK + full length + all-finite scores
  double score_correlation = 0.0;  // Pearson vs the clean score track
  std::size_t peak_drift = 0;      // |peak(faulted) - peak(clean)|
  bool peak_correct = false;       // faulted peak within slop of truth
  double discrimination = 0.0;     // of the faulted track
};

/// Runs the full matrix. Detectors whose clean run already fails
/// contribute cells carrying that status. `series` should be clean;
/// the harness injects the faults itself (seeded, reproducible).
std::vector<RobustnessCell> RunRobustnessMatrix(
    const LabeledSeries& series,
    const std::vector<const AnomalyDetector*>& detectors,
    const RobustnessConfig& config = {});

/// Renders cells as a per-detector degradation table (one row per
/// fault x severity).
std::string FormatRobustnessTable(const std::vector<RobustnessCell>& cells);

}  // namespace tsad

#endif  // TSAD_ROBUSTNESS_MATRIX_H_
