#include "robustness/resilient.h"

#include <cmath>
#include <utility>

#include "robustness/deadline.h"

namespace tsad {

std::string_view ServedByName(ServedBy served) {
  switch (served) {
    case ServedBy::kNone:
      return "none";
    case ServedBy::kPrimary:
      return "primary";
    case ServedBy::kSimplified:
      return "simplified";
    case ServedBy::kFallback:
      return "fallback";
  }
  return "?";
}

ResilientDetector::ResilientDetector(std::unique_ptr<AnomalyDetector> inner,
                                     ResilientConfig config,
                                     std::unique_ptr<AnomalyDetector> simplified,
                                     std::unique_ptr<AnomalyDetector> fallback)
    : inner_(std::move(inner)),
      simplified_(std::move(simplified)),
      fallback_(std::move(fallback)),
      config_(config),
      name_("resilient(" + std::string(inner_->name()) + ")") {}

Result<std::vector<double>> ResilientDetector::RunStage(
    const AnomalyDetector& detector, const SanitizedSeries& input,
    std::size_t original_length, std::size_t train_length) const {
  Result<std::vector<double>> scores = [&] {
    if (config_.deadline.count() > 0) {
      DeadlineScope scope(config_.deadline);
      return detector.Score(input.values, input.MapTrainLength(train_length));
    }
    return detector.Score(input.values, input.MapTrainLength(train_length));
  }();
  if (!scores.ok()) return scores;
  if (scores->size() != input.values.size()) {
    return Status::Internal(std::string(detector.name()) + " returned " +
                            std::to_string(scores->size()) + " scores for " +
                            std::to_string(input.values.size()) + " points");
  }
  // A track that is mostly non-finite did not really succeed; patching
  // it point-wise would invent a signal that is not there.
  std::size_t bad = 0;
  for (double s : *scores) {
    if (!std::isfinite(s)) ++bad;
  }
  if (!scores->empty() &&
      static_cast<double>(bad) >
          config_.max_bad_score_fraction *
              static_cast<double>(scores->size())) {
    return Status::Internal(std::string(detector.name()) + " emitted " +
                            std::to_string(bad) + "/" +
                            std::to_string(scores->size()) +
                            " non-finite scores");
  }
  last_scores_patched_ = SanitizeScores(*scores);
  return input.ExpandScores(*scores, original_length);
}

Result<std::vector<double>> ResilientDetector::Score(
    const Series& series, std::size_t train_length) const {
  last_served_by_ = ServedBy::kNone;
  last_primary_status_ = Status::OK();
  last_scores_patched_ = 0;

  Result<SanitizedSeries> sanitized =
      SanitizeSeries(series, config_.imputation, config_.sentinel,
                     config_.max_missing_fraction);
  if (!sanitized.ok()) {
    last_scan_ = ScanForMissing(series, config_.sentinel);
    return sanitized.status();
  }
  last_scan_ = sanitized->scan;

  Result<std::vector<double>> primary =
      RunStage(*inner_, *sanitized, series.size(), train_length);
  if (primary.ok()) {
    last_served_by_ = ServedBy::kPrimary;
    return primary;
  }
  last_primary_status_ = primary.status();

  if (simplified_ != nullptr) {
    Result<std::vector<double>> retried =
        RunStage(*simplified_, *sanitized, series.size(), train_length);
    if (retried.ok()) {
      last_served_by_ = ServedBy::kSimplified;
      return retried;
    }
  }

  if (fallback_ != nullptr) {
    Result<std::vector<double>> rescued =
        RunStage(*fallback_, *sanitized, series.size(), train_length);
    if (rescued.ok()) {
      last_served_by_ = ServedBy::kFallback;
      return rescued;
    }
  }

  // Every stage failed; the primary's error is the informative one.
  return primary.status();
}

}  // namespace tsad
