#include "robustness/sanitize.h"

#include <algorithm>
#include <cmath>
#include <string>

namespace tsad {

namespace {

bool IsMissing(double v, double sentinel) {
  return !std::isfinite(v) || v == sentinel;
}

}  // namespace

std::string_view ImputationPolicyName(ImputationPolicy policy) {
  switch (policy) {
    case ImputationPolicy::kLinearInterpolate:
      return "linear-interpolate";
    case ImputationPolicy::kLocf:
      return "locf";
    case ImputationPolicy::kDropAndReindex:
      return "drop-and-reindex";
  }
  return "?";
}

MissingScan ScanForMissing(const Series& x, double sentinel) {
  MissingScan scan;
  scan.n = x.size();
  std::size_t run = 0;
  for (double v : x) {
    if (std::isnan(v)) {
      ++scan.num_nan;
    } else if (std::isinf(v)) {
      ++scan.num_inf;
    } else if (v == sentinel) {
      ++scan.num_sentinel;
    } else {
      run = 0;
      continue;
    }
    ++run;
    scan.longest_gap = std::max(scan.longest_gap, run);
  }
  return scan;
}

std::size_t SanitizedSeries::MapTrainLength(std::size_t train_length) const {
  if (!reindexed()) return std::min(train_length, values.size());
  // Number of kept points drawn from the original training prefix.
  const auto it =
      std::lower_bound(kept.begin(), kept.end(), train_length);
  return static_cast<std::size_t>(it - kept.begin());
}

std::vector<double> SanitizedSeries::ExpandScores(
    const std::vector<double>& scores, std::size_t original_length) const {
  if (!reindexed()) return scores;
  std::vector<double> out(original_length, 0.0);
  const std::size_t n = std::min(scores.size(), kept.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (kept[i] < original_length) out[kept[i]] = scores[i];
  }
  return out;
}

Result<SanitizedSeries> SanitizeSeries(const Series& x,
                                       ImputationPolicy policy, double sentinel,
                                       double max_missing_fraction) {
  SanitizedSeries out;
  out.scan = ScanForMissing(x, sentinel);
  if (x.empty()) return out;
  if (out.scan.num_missing() == x.size()) {
    return Status::ResourceExhausted("every point is missing; nothing to score");
  }
  if (out.scan.missing_fraction() > max_missing_fraction) {
    return Status::ResourceExhausted(
        "missing fraction " + std::to_string(out.scan.missing_fraction()) +
        " exceeds limit " + std::to_string(max_missing_fraction));
  }
  if (out.scan.num_missing() == 0) {
    out.values = x;
    return out;
  }

  const std::size_t n = x.size();
  if (policy == ImputationPolicy::kDropAndReindex) {
    out.values.reserve(n - out.scan.num_missing());
    out.kept.reserve(n - out.scan.num_missing());
    for (std::size_t i = 0; i < n; ++i) {
      if (IsMissing(x[i], sentinel)) continue;
      out.values.push_back(x[i]);
      out.kept.push_back(i);
    }
    return out;
  }

  out.values = x;
  Series& y = out.values;
  // Walk missing runs; `prev` is the index of the last clean point seen
  // (npos before the first one).
  constexpr std::size_t kNone = static_cast<std::size_t>(-1);
  std::size_t prev = kNone;
  for (std::size_t i = 0; i < n; ++i) {
    if (!IsMissing(y[i], sentinel)) {
      prev = i;
      continue;
    }
    std::size_t next = i + 1;
    while (next < n && IsMissing(y[next], sentinel)) ++next;
    if (prev == kNone) {
      // Leading gap: backfill from the first observation (both policies
      // — LOCF has nothing to carry yet).
      const double fill = next < n ? y[next] : 0.0;  // next < n guaranteed
      for (std::size_t j = i; j < next; ++j) y[j] = fill;
    } else if (next >= n || policy == ImputationPolicy::kLocf) {
      // Trailing gap, or LOCF everywhere: carry the last observation.
      for (std::size_t j = i; j < next; ++j) y[j] = y[prev];
    } else {
      // Interior gap under linear interpolation.
      const double lo = y[prev];
      const double hi = y[next];
      const double span = static_cast<double>(next - prev);
      for (std::size_t j = i; j < next; ++j) {
        y[j] = lo + (hi - lo) * static_cast<double>(j - prev) / span;
      }
    }
    i = next;  // loop increment lands on the clean point (or past end)
    if (next < n) prev = next;
  }
  return out;
}

std::size_t SanitizeScores(std::vector<double>& scores, double replacement) {
  std::size_t patched = 0;
  for (double& s : scores) {
    if (!std::isfinite(s)) {
      s = replacement;
      ++patched;
    }
  }
  return patched;
}

}  // namespace tsad
