// Umbrella header for the tsad library — a C++ reproduction of
// Wu & Keogh, "Current Time Series Anomaly Detection Benchmarks are
// Flawed and are Creating the Illusion of Progress" (ICDE 2022).
//
// Include this to get the whole public API; include the individual
// module headers to keep compile times down.

#ifndef TSAD_TSAD_H_
#define TSAD_TSAD_H_

#include "common/csv.h"          // IWYU pragma: export
#include "common/fft.h"          // IWYU pragma: export
#include "common/parallel.h"     // IWYU pragma: export
#include "common/rng.h"          // IWYU pragma: export
#include "common/series.h"       // IWYU pragma: export
#include "common/stats.h"        // IWYU pragma: export
#include "common/status.h"       // IWYU pragma: export
#include "common/vector_ops.h"   // IWYU pragma: export
#include "common/wire.h"         // IWYU pragma: export

#include "substrates/matrix_profile.h"     // IWYU pragma: export
#include "substrates/motifs.h"             // IWYU pragma: export
#include "substrates/pan_profile.h"        // IWYU pragma: export
#include "substrates/sliding_window.h"     // IWYU pragma: export
#include "substrates/streaming_profile.h"  // IWYU pragma: export

#include "detectors/cusum.h"          // IWYU pragma: export
#include "detectors/detector.h"       // IWYU pragma: export
#include "detectors/discord.h"        // IWYU pragma: export
#include "detectors/merlin.h"         // IWYU pragma: export
#include "detectors/moving_zscore.h"  // IWYU pragma: export
#include "detectors/control_chart.h"  // IWYU pragma: export
#include "detectors/multivariate.h"   // IWYU pragma: export
#include "detectors/naive.h"          // IWYU pragma: export
#include "detectors/semisup_discord.h"  // IWYU pragma: export
#include "detectors/oneliner.h"       // IWYU pragma: export
#include "detectors/registry.h"       // IWYU pragma: export
#include "detectors/seasonal_esd.h"   // IWYU pragma: export
#include "detectors/spectral_residual.h"  // IWYU pragma: export
#include "detectors/streaming_discord.h"  // IWYU pragma: export
#include "detectors/telemanom.h"      // IWYU pragma: export

#include "datasets/domains.h"     // IWYU pragma: export
#include "datasets/gait.h"        // IWYU pragma: export
#include "datasets/generators.h"  // IWYU pragma: export
#include "datasets/nasa.h"        // IWYU pragma: export
#include "datasets/numenta.h"     // IWYU pragma: export
#include "datasets/omni.h"        // IWYU pragma: export
#include "datasets/physio.h"      // IWYU pragma: export
#include "datasets/yahoo.h"       // IWYU pragma: export

#include "scoring/affiliation.h"   // IWYU pragma: export
#include "scoring/auc.h"           // IWYU pragma: export
#include "scoring/confusion.h"     // IWYU pragma: export
#include "scoring/delay.h"         // IWYU pragma: export
#include "scoring/nab.h"           // IWYU pragma: export
#include "scoring/point_adjust.h"  // IWYU pragma: export
#include "scoring/range_pr.h"      // IWYU pragma: export
#include "scoring/ucr_score.h"     // IWYU pragma: export

#include "serving/admission.h"        // IWYU pragma: export
#include "serving/engine.h"           // IWYU pragma: export
#include "serving/online_adapters.h"  // IWYU pragma: export
#include "serving/online_detector.h"  // IWYU pragma: export
#include "serving/replay.h"           // IWYU pragma: export

#include "robustness/deadline.h"        // IWYU pragma: export
#include "robustness/fault_injector.h"  // IWYU pragma: export
#include "robustness/matrix.h"          // IWYU pragma: export
#include "robustness/resilient.h"       // IWYU pragma: export
#include "robustness/sanitize.h"        // IWYU pragma: export

#include "core/benchmark_audit.h"  // IWYU pragma: export
#include "core/density.h"          // IWYU pragma: export
#include "core/invariance.h"       // IWYU pragma: export
#include "core/leaderboard.h"      // IWYU pragma: export
#include "core/mislabel.h"         // IWYU pragma: export
#include "core/relabel.h"          // IWYU pragma: export
#include "core/report.h"           // IWYU pragma: export
#include "core/run_to_failure.h"   // IWYU pragma: export
#include "core/triviality.h"       // IWYU pragma: export
#include "core/ucr_archive.h"      // IWYU pragma: export

#endif  // TSAD_TSAD_H_
