#include "scoring/delay.h"

#include <algorithm>

namespace tsad {

Result<DelayScore> ComputeDelayScore(
    const std::vector<AnomalyRegion>& real_in,
    const std::vector<AnomalyRegion>& predicted_in, std::size_t series_length,
    const DelayConfig& config) {
  if (series_length == 0) {
    return Status::InvalidArgument("series_length must be positive");
  }
  const std::vector<AnomalyRegion> real = NormalizeRegions(real_in);
  const std::vector<AnomalyRegion> predicted = NormalizeRegions(predicted_in);
  for (const AnomalyRegion& r : real) {
    if (r.end > series_length) {
      return Status::InvalidArgument("real region extends past the series");
    }
  }
  for (const AnomalyRegion& p : predicted) {
    if (p.end > series_length) {
      return Status::InvalidArgument(
          "predicted region extends past the series");
    }
  }

  DelayScore score;
  score.events_total = real.size();
  score.alarm_regions = predicted.size();
  if (real.empty()) {
    score.recall = 1.0;
    score.precision = predicted.empty() ? 1.0 : 0.0;
    score.false_alarm_regions = predicted.size();
    score.f1 = score.precision;  // harmonic mean with recall == 1
    return score;
  }

  // Tolerance windows: [begin, begin + k] clipped to the event. Both
  // lists are sorted, so a two-pointer sweep would do; the event counts
  // are small enough that the direct scan reads better.
  std::vector<AnomalyRegion> windows;
  windows.reserve(real.size());
  for (const AnomalyRegion& r : real) {
    const std::size_t cap = config.tolerance >= r.length() - 1
                                ? r.end
                                : r.begin + config.tolerance + 1;
    windows.push_back({r.begin, cap});
  }

  double delay_sum = 0.0;
  for (std::size_t j = 0; j < real.size(); ++j) {
    // First alarm index inside the tolerance window, if any.
    std::size_t first = series_length;
    for (const AnomalyRegion& p : predicted) {
      const std::size_t lo = std::max(p.begin, windows[j].begin);
      if (lo < std::min(p.end, windows[j].end)) {
        first = std::min(first, lo);
      }
    }
    if (first < series_length) {
      ++score.events_detected;
      delay_sum += static_cast<double>(first - real[j].begin);
    }
  }

  for (const AnomalyRegion& p : predicted) {
    bool valid = false;
    for (const AnomalyRegion& w : windows) {
      if (std::max(p.begin, w.begin) < std::min(p.end, w.end)) {
        valid = true;
        break;
      }
    }
    if (!valid) ++score.false_alarm_regions;
  }

  score.recall = static_cast<double>(score.events_detected) /
                 static_cast<double>(score.events_total);
  score.precision =
      predicted.empty()
          ? 0.0
          : static_cast<double>(predicted.size() - score.false_alarm_regions) /
                static_cast<double>(predicted.size());
  score.mean_delay = score.events_detected == 0
                         ? 0.0
                         : delay_sum / static_cast<double>(score.events_detected);
  const double pr = score.precision + score.recall;
  score.f1 = pr == 0.0 ? 0.0 : 2.0 * score.precision * score.recall / pr;
  return score;
}

}  // namespace tsad
