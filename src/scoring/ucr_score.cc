#include "scoring/ucr_score.h"

#include <algorithm>

namespace tsad {

bool UcrCorrect(const AnomalyRegion& anomaly, std::size_t predicted,
                const UcrScoreConfig& config) {
  std::size_t slop = config.slop_floor;
  if (config.scale_slop_with_region) {
    slop = std::max(slop, anomaly.length());
  }
  const std::size_t lo = anomaly.begin > slop ? anomaly.begin - slop : 0;
  const std::size_t hi = anomaly.end + slop;
  return predicted >= lo && predicted < hi;
}

Result<UcrSeriesOutcome> ScoreUcrSeries(const LabeledSeries& series,
                                        std::size_t predicted,
                                        const UcrScoreConfig& config) {
  if (series.anomalies().size() != 1) {
    return Status::InvalidArgument(
        "UCR scoring requires exactly one anomaly region; series '" +
        series.name() + "' has " + std::to_string(series.anomalies().size()));
  }
  UcrSeriesOutcome outcome;
  outcome.series_name = series.name();
  outcome.predicted = predicted;
  outcome.anomaly = series.anomalies().front();
  outcome.correct = UcrCorrect(outcome.anomaly, predicted, config);
  return outcome;
}

}  // namespace tsad
