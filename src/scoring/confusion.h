// Point-wise confusion-matrix scoring: the precision/recall/F1 numbers
// most TSAD papers report, computed with no adjustment protocol.

#ifndef TSAD_SCORING_CONFUSION_H_
#define TSAD_SCORING_CONFUSION_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/series.h"
#include "common/status.h"

namespace tsad {

/// Confusion counts plus derived metrics. All metrics return 0 when
/// undefined (e.g., precision with no positive predictions).
struct Confusion {
  std::size_t tp = 0;
  std::size_t fp = 0;
  std::size_t fn = 0;
  std::size_t tn = 0;

  double precision() const {
    const std::size_t denom = tp + fp;
    return denom == 0 ? 0.0 : static_cast<double>(tp) / static_cast<double>(denom);
  }
  double recall() const {
    const std::size_t denom = tp + fn;
    return denom == 0 ? 0.0 : static_cast<double>(tp) / static_cast<double>(denom);
  }
  double f1() const {
    const double p = precision(), r = recall();
    return (p + r) == 0.0 ? 0.0 : 2.0 * p * r / (p + r);
  }
  double accuracy() const {
    const std::size_t total = tp + fp + fn + tn;
    return total == 0 ? 0.0
                      : static_cast<double>(tp + tn) / static_cast<double>(total);
  }
};

/// Point-wise confusion of binary predictions against binary truth.
/// Returns InvalidArgument on length mismatch.
Result<Confusion> ComputeConfusion(const std::vector<uint8_t>& truth,
                                   const std::vector<uint8_t>& predictions);

/// Best achievable point-wise F1 over all score thresholds (the
/// "omniscient threshold" protocol common in the TSAD literature —
/// itself a flattering choice, which is part of the paper's point).
struct BestF1 {
  double f1 = 0.0;
  double threshold = 0.0;
  Confusion confusion;
};
Result<BestF1> BestF1OverThresholds(const std::vector<uint8_t>& truth,
                                    const std::vector<double>& scores);

}  // namespace tsad

#endif  // TSAD_SCORING_CONFUSION_H_
