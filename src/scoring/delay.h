// Detection-delay / delay-constrained event F1 — the TimeSeriesBench
// online evaluation protocol (its "k-delay adjustment"). An event only
// counts as detected when an alarm fires within the first k+1 points
// of the event: real-time monitoring derives no value from an alarm
// raised long after the anomaly began, which is precisely the credit
// point-adjust hands out (one hit anywhere in the region retroactively
// "detects" its start). Scoring is event-wise, so a long labeled
// region is one event, not thousands of point TPs.
//
//   recall    = events detected within tolerance / total events
//   precision = valid alarm regions / total alarm regions, where an
//               alarm region is valid iff it covers some event's
//               tolerance window (an alarm that only overlaps an event
//               AFTER the tolerance failed the online contract and
//               counts as a false alarm)
//   delay     = first alarm index in the tolerance window - event begin
//
// With tolerance = infinity this degenerates to plain event-wise
// precision/recall; the default of 64 points suits the simulators'
// series lengths (1.4k-12k points).

#ifndef TSAD_SCORING_DELAY_H_
#define TSAD_SCORING_DELAY_H_

#include <cstddef>
#include <vector>

#include "common/series.h"
#include "common/status.h"

namespace tsad {

struct DelayConfig {
  /// Maximum tolerated detection delay k, in points: an event counts
  /// as detected iff an alarm fires in [begin, begin + k], clipped to
  /// the event's end.
  std::size_t tolerance = 64;
};

struct DelayScore {
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
  /// Mean detection delay over detected events, in points (0 when no
  /// event was detected).
  double mean_delay = 0.0;
  std::size_t events_total = 0;
  std::size_t events_detected = 0;
  std::size_t alarm_regions = 0;
  std::size_t false_alarm_regions = 0;
};

/// Scores predicted alarm regions against ground-truth events over a
/// series of `series_length` points (both lists normalized
/// internally). Degenerate conventions mirror ComputeRangePr: no
/// events => recall 1, precision 1 iff no alarms; events but no alarms
/// => precision 0, recall 0. Returns InvalidArgument when
/// series_length is 0 or a region extends past the series.
Result<DelayScore> ComputeDelayScore(
    const std::vector<AnomalyRegion>& real,
    const std::vector<AnomalyRegion>& predicted, std::size_t series_length,
    const DelayConfig& config = {});

}  // namespace tsad

#endif  // TSAD_SCORING_DELAY_H_
