#include "scoring/point_adjust.h"

#include <algorithm>

namespace tsad {

std::vector<uint8_t> PointAdjustPredictions(
    const std::vector<uint8_t>& truth,
    const std::vector<uint8_t>& predictions) {
  std::vector<uint8_t> adjusted = predictions;
  const std::size_t n = std::min(truth.size(), predictions.size());
  const std::vector<AnomalyRegion> regions =
      RegionsFromBinary(std::vector<uint8_t>(truth.begin(),
                                             truth.begin() +
                                                 static_cast<std::ptrdiff_t>(n)));
  for (const AnomalyRegion& r : regions) {
    bool hit = false;
    for (std::size_t i = r.begin; i < r.end && i < n; ++i) {
      if (predictions[i]) {
        hit = true;
        break;
      }
    }
    if (hit) {
      for (std::size_t i = r.begin; i < r.end && i < n; ++i) adjusted[i] = 1;
    }
  }
  return adjusted;
}

Result<Confusion> ComputePointAdjustedConfusion(
    const std::vector<uint8_t>& truth,
    const std::vector<uint8_t>& predictions) {
  if (truth.size() != predictions.size()) {
    return Status::InvalidArgument("truth/prediction length mismatch");
  }
  return ComputeConfusion(truth, PointAdjustPredictions(truth, predictions));
}

Result<BestF1> BestPointAdjustedF1(const std::vector<uint8_t>& truth,
                                   const std::vector<double>& scores) {
  if (truth.size() != scores.size()) {
    return Status::InvalidArgument("truth/score length mismatch");
  }
  // Distinct score values as candidate thresholds (predict score >= t).
  std::vector<double> thresholds = scores;
  std::sort(thresholds.begin(), thresholds.end(), std::greater<>());
  thresholds.erase(std::unique(thresholds.begin(), thresholds.end()),
                   thresholds.end());

  BestF1 best;
  for (double t : thresholds) {
    std::vector<uint8_t> pred(scores.size());
    for (std::size_t i = 0; i < scores.size(); ++i) pred[i] = scores[i] >= t;
    TSAD_ASSIGN_OR_RETURN(const Confusion c,
                          ComputePointAdjustedConfusion(truth, pred));
    const double f1 = c.f1();
    if (f1 > best.f1) {
      best.f1 = f1;
      best.threshold = t;
      best.confusion = c;
    }
  }
  return best;
}

}  // namespace tsad
