#include "scoring/point_adjust.h"

#include <algorithm>

namespace tsad {

std::vector<uint8_t> PointAdjustPredictions(
    const std::vector<uint8_t>& truth,
    const std::vector<uint8_t>& predictions) {
  std::vector<uint8_t> adjusted = predictions;
  const std::size_t n = std::min(truth.size(), predictions.size());
  const std::vector<AnomalyRegion> regions =
      RegionsFromBinary(std::vector<uint8_t>(truth.begin(),
                                             truth.begin() +
                                                 static_cast<std::ptrdiff_t>(n)));
  for (const AnomalyRegion& r : regions) {
    bool hit = false;
    for (std::size_t i = r.begin; i < r.end && i < n; ++i) {
      if (predictions[i]) {
        hit = true;
        break;
      }
    }
    if (hit) {
      for (std::size_t i = r.begin; i < r.end && i < n; ++i) adjusted[i] = 1;
    }
  }
  return adjusted;
}

Result<Confusion> ComputePointAdjustedConfusion(
    const std::vector<uint8_t>& truth,
    const std::vector<uint8_t>& predictions) {
  if (truth.size() != predictions.size()) {
    return Status::InvalidArgument("truth/prediction length mismatch");
  }
  return ComputeConfusion(truth, PointAdjustPredictions(truth, predictions));
}

Result<BestF1> BestPointAdjustedF1(const std::vector<uint8_t>& truth,
                                   const std::vector<double>& scores) {
  if (truth.size() != scores.size()) {
    return Status::InvalidArgument("truth/score length mismatch");
  }
  const std::size_t n = truth.size();

  // Which truth region each index belongs to (npos = normal point).
  constexpr std::size_t kNone = static_cast<std::size_t>(-1);
  const std::vector<AnomalyRegion> regions = RegionsFromBinary(truth);
  std::vector<std::size_t> region_of(n, kNone);
  for (std::size_t r = 0; r < regions.size(); ++r) {
    for (std::size_t i = regions[r].begin; i < regions[r].end; ++i) {
      region_of[i] = r;
    }
  }

  // Sweep the threshold down through the distinct score values,
  // admitting points in descending-score order. Admitting the FIRST
  // point of a truth region flips the whole region to detected
  // (tp += |region|); later points of the same region change nothing
  // — exactly the point-adjust expansion, maintained incrementally.
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return scores[a] > scores[b];
  });

  Confusion c;
  for (const AnomalyRegion& r : regions) c.fn += r.length();
  c.tn = n - c.fn;
  std::vector<uint8_t> region_hit(regions.size(), 0);

  BestF1 best;
  std::size_t i = 0;
  while (i < n) {
    const double value = scores[order[i]];
    while (i < n && scores[order[i]] == value) {
      const std::size_t r = region_of[order[i]];
      if (r == kNone) {
        ++c.fp;
        --c.tn;
      } else if (!region_hit[r]) {
        region_hit[r] = 1;
        c.tp += regions[r].length();
        c.fn -= regions[r].length();
      }
      ++i;
    }
    const double f1 = c.f1();
    if (f1 > best.f1) {
      best.f1 = f1;
      best.threshold = value;  // predictions are score >= value
      best.confusion = c;
    }
  }
  return best;
}

Result<BestF1> BestPointAdjustedF1Direct(const std::vector<uint8_t>& truth,
                                         const std::vector<double>& scores) {
  if (truth.size() != scores.size()) {
    return Status::InvalidArgument("truth/score length mismatch");
  }
  // Distinct score values as candidate thresholds (predict score >= t).
  std::vector<double> thresholds = scores;
  std::sort(thresholds.begin(), thresholds.end(), std::greater<>());
  thresholds.erase(std::unique(thresholds.begin(), thresholds.end()),
                   thresholds.end());

  BestF1 best;
  for (double t : thresholds) {
    std::vector<uint8_t> pred(scores.size());
    for (std::size_t i = 0; i < scores.size(); ++i) pred[i] = scores[i] >= t;
    TSAD_ASSIGN_OR_RETURN(const Confusion c,
                          ComputePointAdjustedConfusion(truth, pred));
    const double f1 = c.f1();
    if (f1 > best.f1) {
      best.f1 = f1;
      best.threshold = t;
      best.confusion = c;
    }
  }
  return best;
}

}  // namespace tsad
