// The "point-adjust" protocol (popularized by Xu et al. WWW'18 and used
// by OmniAnomaly [3] and most deep TSAD papers since): if any point of
// a true anomaly region is predicted positive, every point of that
// region is counted as detected. The paper's flaw analysis explains why
// this combines badly with long labeled regions (§2.3): one lucky point
// in a region covering half the test set yields a huge TP count.

#ifndef TSAD_SCORING_POINT_ADJUST_H_
#define TSAD_SCORING_POINT_ADJUST_H_

#include <cstdint>
#include <vector>

#include "common/series.h"
#include "scoring/confusion.h"

namespace tsad {

/// Expands predictions under the point-adjust rule: any true region
/// touched by a positive prediction becomes fully predicted.
std::vector<uint8_t> PointAdjustPredictions(
    const std::vector<uint8_t>& truth, const std::vector<uint8_t>& predictions);

/// Point-adjusted confusion (ComputeConfusion after adjustment).
Result<Confusion> ComputePointAdjustedConfusion(
    const std::vector<uint8_t>& truth, const std::vector<uint8_t>& predictions);

/// Best point-adjusted F1 over all thresholds — the headline number in
/// most deep-TSAD papers. Computed as a single descending-score sweep
/// with incremental region-hit counting: O(n log n) over the score
/// track, bit-identical in (f1, threshold, confusion) to the direct
/// recompute-per-threshold protocol below.
Result<BestF1> BestPointAdjustedF1(const std::vector<uint8_t>& truth,
                                   const std::vector<double>& scores);

/// The direct O(n * thresholds) evaluation (a full point-adjusted
/// confusion per distinct score value), kept as the test oracle for
/// the sweep above. Quadratic on continuous score tracks — do not use
/// in sweeps; call BestPointAdjustedF1.
Result<BestF1> BestPointAdjustedF1Direct(const std::vector<uint8_t>& truth,
                                         const std::vector<double>& scores);

}  // namespace tsad

#endif  // TSAD_SCORING_POINT_ADJUST_H_
