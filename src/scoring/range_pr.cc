#include "scoring/range_pr.h"

#include <algorithm>
#include <cmath>

namespace tsad {

namespace {

// Positional weight of offset i (0-based) within a range of `length`
// positions, per Tatbul et al.'s delta() examples.
double PositionWeight(PositionalBias bias, std::size_t i, std::size_t length) {
  switch (bias) {
    case PositionalBias::kFlat:
      return 1.0;
    case PositionalBias::kFront:
      return static_cast<double>(length - i);
    case PositionalBias::kBack:
      return static_cast<double>(i + 1);
    case PositionalBias::kMiddle:
      return static_cast<double>(std::min(i + 1, length - i));
  }
  return 1.0;
}

// omega(): weighted fraction of `base` covered by `overlap` under the
// positional bias. `overlap` must be a sub-range of `base` (callers
// intersect first).
double OverlapReward(const AnomalyRegion& base, const AnomalyRegion& overlap,
                     PositionalBias bias) {
  const std::size_t length = base.length();
  if (length == 0) return 0.0;
  double covered = 0.0, total = 0.0;
  for (std::size_t i = 0; i < length; ++i) {
    const double w = PositionWeight(bias, i, length);
    total += w;
    const std::size_t pos = base.begin + i;
    if (pos >= overlap.begin && pos < overlap.end) covered += w;
  }
  return total == 0.0 ? 0.0 : covered / total;
}

// Score of one range against the opposing set.
double RangeScore(const AnomalyRegion& range,
                  const std::vector<AnomalyRegion>& others, double alpha,
                  PositionalBias bias, double cardinality_power) {
  double overlap_total = 0.0;
  std::size_t overlap_count = 0;
  for (const AnomalyRegion& other : others) {
    const std::size_t lo = std::max(range.begin, other.begin);
    const std::size_t hi = std::min(range.end, other.end);
    if (lo >= hi) continue;
    ++overlap_count;
    overlap_total += OverlapReward(range, {lo, hi}, bias);
  }
  const double existence = overlap_count > 0 ? 1.0 : 0.0;
  double cardinality = 1.0;
  if (overlap_count > 1) {
    cardinality =
        1.0 / std::pow(static_cast<double>(overlap_count), cardinality_power);
  }
  return alpha * existence + (1.0 - alpha) * cardinality * overlap_total;
}

}  // namespace

RangePrResult ComputeRangePr(const std::vector<AnomalyRegion>& real_in,
                             const std::vector<AnomalyRegion>& predicted_in,
                             const RangePrConfig& config) {
  const std::vector<AnomalyRegion> real = NormalizeRegions(real_in);
  const std::vector<AnomalyRegion> predicted = NormalizeRegions(predicted_in);

  RangePrResult result;
  if (real.empty()) {
    // Vacuous recall; precision is 1 only if nothing was predicted.
    result.recall = 1.0;
    result.precision = predicted.empty() ? 1.0 : 0.0;
  } else {
    double recall_sum = 0.0;
    for (const AnomalyRegion& r : real) {
      recall_sum += RangeScore(r, predicted, config.alpha, config.recall_bias,
                               config.cardinality_power);
    }
    result.recall = recall_sum / static_cast<double>(real.size());

    if (predicted.empty()) {
      result.precision = 0.0;
    } else {
      double precision_sum = 0.0;
      for (const AnomalyRegion& p : predicted) {
        precision_sum += RangeScore(p, real, /*alpha=*/0.0,
                                    config.precision_bias,
                                    config.cardinality_power);
      }
      result.precision =
          precision_sum / static_cast<double>(predicted.size());
    }
  }
  const double pr = result.precision + result.recall;
  result.f1 = pr == 0.0 ? 0.0 : 2.0 * result.precision * result.recall / pr;
  return result;
}

}  // namespace tsad
