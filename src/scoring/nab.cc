#include "scoring/nab.h"

#include <algorithm>
#include <cmath>

namespace tsad {

namespace {

// NAB's scaled sigmoid: ~ +1 well left of the window end, 0 at the
// window end, -> -1 far to the right.
double ScaledSigmoid(double y) { return 2.0 / (1.0 + std::exp(5.0 * y)) - 1.0; }

struct Window {
  double begin = 0.0;  // fractional bounds to honor fractional widths
  double end = 0.0;

  bool contains(double pos) const { return pos >= begin && pos <= end; }
  double width() const { return std::max(1.0, end - begin); }
};

}  // namespace

NabProfile NabStandardProfile() { return {1.0, 0.11, 1.0}; }
NabProfile NabRewardLowFpProfile() { return {1.0, 0.22, 1.0}; }
NabProfile NabRewardLowFnProfile() { return {1.0, 0.11, 2.0}; }

Result<NabScore> ComputeNabScore(const std::vector<AnomalyRegion>& anomalies_in,
                                 const std::vector<std::size_t>& detections,
                                 std::size_t series_length,
                                 const NabConfig& config) {
  if (series_length == 0) {
    return Status::InvalidArgument("series_length must be positive");
  }
  for (std::size_t d : detections) {
    if (d >= series_length) {
      return Status::InvalidArgument("detection index " + std::to_string(d) +
                                     " out of range");
    }
  }
  const std::vector<AnomalyRegion> anomalies = NormalizeRegions(anomalies_in);

  // Build NAB windows: centered on each anomaly, total window budget =
  // window_fraction * series_length spread over the anomalies.
  std::vector<Window> windows;
  if (!anomalies.empty()) {
    const double per_window =
        config.window_fraction * static_cast<double>(series_length) /
        static_cast<double>(anomalies.size());
    for (const AnomalyRegion& a : anomalies) {
      const double center =
          0.5 * (static_cast<double>(a.begin) + static_cast<double>(a.end));
      Window w;
      w.begin = std::max(0.0, center - per_window / 2.0);
      w.end = std::min(static_cast<double>(series_length - 1),
                       center + per_window / 2.0);
      // Ensure the window covers at least the labeled region itself.
      w.begin = std::min(w.begin, static_cast<double>(a.begin));
      w.end = std::max(w.end, static_cast<double>(a.end > 0 ? a.end - 1 : 0));
      windows.push_back(w);
    }
    // When the per-anomaly budget makes adjacent windows overlap, NAB
    // merges them into one (the reference implementation does the same
    // while building its window list). Without the merge, a detection
    // in the overlap credits only the first window by scan order and
    // the second is double-charged as a miss. Window begins are
    // nondecreasing (anomalies are normalized), so one forward pass
    // suffices.
    std::vector<Window> merged;
    for (const Window& w : windows) {
      if (!merged.empty() && w.begin <= merged.back().end) {
        merged.back().end = std::max(merged.back().end, w.end);
      } else {
        merged.push_back(w);
      }
    }
    windows = std::move(merged);
  }

  NabScore score;
  score.total_windows = windows.size();

  std::vector<std::size_t> sorted = detections;
  std::sort(sorted.begin(), sorted.end());

  std::vector<bool> window_hit(windows.size(), false);
  double raw = 0.0;
  for (std::size_t d : sorted) {
    const double pos = static_cast<double>(d);
    // Find a containing window.
    std::size_t in_window = windows.size();
    for (std::size_t w = 0; w < windows.size(); ++w) {
      if (windows[w].contains(pos)) {
        in_window = w;
        break;
      }
    }
    if (in_window < windows.size()) {
      if (window_hit[in_window]) continue;  // only first detection counts
      window_hit[in_window] = true;
      ++score.detected_windows;
      // Relative position: -1 at the window's left edge, 0 at the right.
      const Window& w = windows[in_window];
      const double y = (pos - w.end) / w.width();
      raw += config.profile.tp_weight * ScaledSigmoid(y);
    } else {
      ++score.false_positives;
      // Penalty relative to the closest preceding window; saturates to
      // -fp_weight when no window precedes or it is far away.
      double y = 10.0;  // far right => sigmoid ~ -1
      for (const Window& w : windows) {
        if (w.end <= pos) {
          y = std::min(y, (pos - w.end) / w.width());
        }
      }
      raw += config.profile.fp_weight * ScaledSigmoid(std::max(y, 1e-3));
    }
  }
  for (std::size_t w = 0; w < windows.size(); ++w) {
    if (!window_hit[w]) raw -= config.profile.fn_weight;
  }
  score.raw = raw;

  // Normalization against the null (detect nothing) and perfect
  // (earliest possible detection in every window, no FPs) detectors.
  const double null_raw = -config.profile.fn_weight *
                          static_cast<double>(windows.size());
  const double perfect_raw = config.profile.tp_weight * ScaledSigmoid(-1.0) *
                             static_cast<double>(windows.size());
  const double denom = perfect_raw - null_raw;
  score.normalized = denom <= 0.0 ? 0.0 : 100.0 * (raw - null_raw) / denom;
  return score;
}

}  // namespace tsad
