#include "scoring/auc.h"

#include <algorithm>
#include <numeric>

namespace tsad {

namespace {

Status CheckInputs(const std::vector<uint8_t>& truth,
                   const std::vector<double>& scores, std::size_t* positives) {
  if (truth.size() != scores.size()) {
    return Status::InvalidArgument("truth/score length mismatch");
  }
  std::size_t pos = 0;
  for (uint8_t t : truth) pos += t != 0 ? 1 : 0;
  if (pos == 0 || pos == truth.size()) {
    return Status::InvalidArgument(
        "AUC undefined: need at least one positive and one negative");
  }
  *positives = pos;
  return Status::OK();
}

}  // namespace

Result<double> RocAuc(const std::vector<uint8_t>& truth,
                      const std::vector<double>& scores) {
  std::size_t positives = 0;
  TSAD_RETURN_IF_ERROR(CheckInputs(truth, scores, &positives));
  const std::size_t n = truth.size();
  const std::size_t negatives = n - positives;

  // Midranks of the scores.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return scores[a] < scores[b];
  });
  std::vector<double> rank(n);
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j + 1 < n && scores[order[j + 1]] == scores[order[i]]) ++j;
    const double midrank = 0.5 * static_cast<double>(i + j) + 1.0;
    for (std::size_t k = i; k <= j; ++k) rank[order[k]] = midrank;
    i = j + 1;
  }
  double positive_rank_sum = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    if (truth[k]) positive_rank_sum += rank[k];
  }
  const double p = static_cast<double>(positives);
  const double u = positive_rank_sum - p * (p + 1.0) / 2.0;
  return u / (p * static_cast<double>(negatives));
}

Result<double> PrAuc(const std::vector<uint8_t>& truth,
                     const std::vector<double>& scores) {
  std::size_t positives = 0;
  TSAD_RETURN_IF_ERROR(CheckInputs(truth, scores, &positives));
  const std::size_t n = truth.size();

  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return scores[a] > scores[b];
  });

  // Average precision with tie groups: all points sharing a score enter
  // together; their contribution uses the group-end precision.
  double ap = 0.0;
  std::size_t tp = 0, fp = 0;
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    std::size_t group_tp = 0, group_fp = 0;
    while (j < n && scores[order[j]] == scores[order[i]]) {
      if (truth[order[j]]) {
        ++group_tp;
      } else {
        ++group_fp;
      }
      ++j;
    }
    tp += group_tp;
    fp += group_fp;
    if (group_tp > 0) {
      const double precision =
          static_cast<double>(tp) / static_cast<double>(tp + fp);
      ap += precision * static_cast<double>(group_tp);
    }
    i = j;
  }
  return ap / static_cast<double>(positives);
}

}  // namespace tsad
