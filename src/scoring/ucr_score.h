// The UCR Anomaly Archive's scoring protocol (paper §2.3, §3): each
// test series contains exactly one anomaly; the algorithm returns the
// single most anomalous location; the answer is binary — correct iff
// the location falls inside the labeled region extended by a small
// "slop" allowance (§4.4: algorithms may place their peak at the
// beginning, middle or end of the anomalous subsequence, and the
// scoring must not punish formatting). Aggregate quality over an
// archive is plain accuracy.

#ifndef TSAD_SCORING_UCR_SCORE_H_
#define TSAD_SCORING_UCR_SCORE_H_

#include <cstddef>
#include <vector>

#include "common/series.h"
#include "common/status.h"

namespace tsad {

struct UcrScoreConfig {
  /// Allowed slack on each side of the labeled region, in points. The
  /// official archive accepts predictions within max(100, region
  /// length) of the region; `slop_floor` is that 100.
  std::size_t slop_floor = 100;
  /// If true, slop = max(slop_floor, region length); if false,
  /// slop = slop_floor exactly.
  bool scale_slop_with_region = true;
};

/// True iff `predicted` is a correct answer for a series whose single
/// anomaly is `anomaly`.
bool UcrCorrect(const AnomalyRegion& anomaly, std::size_t predicted,
                const UcrScoreConfig& config = {});

/// Per-series result of a UCR evaluation.
struct UcrSeriesOutcome {
  std::string series_name;
  std::size_t predicted = 0;
  AnomalyRegion anomaly;
  bool correct = false;
};

/// Archive-level accuracy.
struct UcrAccuracy {
  std::size_t correct = 0;
  std::size_t total = 0;
  std::vector<UcrSeriesOutcome> outcomes;

  double accuracy() const {
    return total == 0 ? 0.0
                      : static_cast<double>(correct) / static_cast<double>(total);
  }
};

/// Scores one predicted location against a labeled series. Returns
/// InvalidArgument unless the series has exactly one anomaly region.
Result<UcrSeriesOutcome> ScoreUcrSeries(const LabeledSeries& series,
                                        std::size_t predicted,
                                        const UcrScoreConfig& config = {});

}  // namespace tsad

#endif  // TSAD_SCORING_UCR_SCORE_H_
