// NAB scoring (Ahmad et al., Neurocomputing 2017 — the Numenta
// benchmark the paper critiques). Each true anomaly gets an "anomaly
// window"; detections inside the window earn a sigmoidal reward that
// favors early detection; detections outside windows are penalized as
// false positives; missed windows are penalized as false negatives.
// The final score is normalized between a "null" detector (score 0)
// and a perfect detector (score 100).
//
// The paper notes (§2.3) that this scoring function is "exceedingly
// difficult to interpret, and almost no one uses this" — implementing
// it lets the benches demonstrate exactly that interpretability gap
// next to plain accuracy.

#ifndef TSAD_SCORING_NAB_H_
#define TSAD_SCORING_NAB_H_

#include <cstddef>
#include <vector>

#include "common/series.h"
#include "common/status.h"

namespace tsad {

/// NAB application profile weights.
struct NabProfile {
  double tp_weight = 1.0;
  double fp_weight = 0.11;  // cost per false positive
  double fn_weight = 1.0;   // cost per missed window
};

/// The "standard", "reward low FP" and "reward low FN" profiles from
/// the NAB codebase.
NabProfile NabStandardProfile();
NabProfile NabRewardLowFpProfile();
NabProfile NabRewardLowFnProfile();

struct NabConfig {
  NabProfile profile;
  /// Window length around each true anomaly, as a fraction of the
  /// series length divided by the number of anomalies (NAB's 10%
  /// convention).
  double window_fraction = 0.10;
};

struct NabScore {
  double raw = 0.0;         // sum of sigmoidal rewards/penalties
  double normalized = 0.0;  // 100 * (raw - null) / (perfect - null)
  std::size_t detected_windows = 0;
  std::size_t total_windows = 0;
  std::size_t false_positives = 0;
};

/// Scores point detections (indices into the series) against labeled
/// anomalies. Returns InvalidArgument if series_length is 0 or a
/// detection index is out of range.
Result<NabScore> ComputeNabScore(const std::vector<AnomalyRegion>& anomalies,
                                 const std::vector<std::size_t>& detections,
                                 std::size_t series_length,
                                 const NabConfig& config = {});

}  // namespace tsad

#endif  // TSAD_SCORING_NAB_H_
