// Range-based precision and recall (Tatbul, Lee, Zdonik, Alam &
// Gottschlich, NeurIPS 2018) — the paper's reference [19] for "others
// have considered problems with current scoring functions".
//
// For each real anomaly range R_i:
//   Recall(R_i) = alpha * Existence(R_i)
//               + (1 - alpha) * CardinalityFactor * OverlapTotal(R_i)
// where Existence is 1 iff any predicted range overlaps R_i, the
// overlap reward integrates a positional-bias weight over the covered
// positions, and the cardinality factor penalizes fragmented
// detections. Precision is symmetric over predicted ranges with
// alpha = 0 (existence is meaningless for precision).

#ifndef TSAD_SCORING_RANGE_PR_H_
#define TSAD_SCORING_RANGE_PR_H_

#include <cstddef>
#include <vector>

#include "common/series.h"

namespace tsad {

/// Positional bias: which part of a range matters most.
enum class PositionalBias {
  kFlat,   // all positions equal
  kFront,  // early detection rewarded (the pump-at-midnight story, §2.3)
  kBack,   // late positions rewarded
  kMiddle, // center rewarded
};

struct RangePrConfig {
  double alpha = 0.0;  // weight of the existence reward in recall
  PositionalBias recall_bias = PositionalBias::kFlat;
  PositionalBias precision_bias = PositionalBias::kFlat;
  /// Cardinality penalty: overlap reward is divided by the number of
  /// distinct predicted ranges overlapping the real range, raised to
  /// this power (0 = no penalty, 1 = linear penalty).
  double cardinality_power = 1.0;
};

struct RangePrResult {
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
};

/// Computes range-based precision/recall/F1 between real and predicted
/// anomaly region lists (both are normalized internally).
RangePrResult ComputeRangePr(const std::vector<AnomalyRegion>& real,
                             const std::vector<AnomalyRegion>& predicted,
                             const RangePrConfig& config = {});

}  // namespace tsad

#endif  // TSAD_SCORING_RANGE_PR_H_
