// Threshold-free scoring: ROC-AUC and PR-AUC (average precision) over
// raw score tracks. These avoid the omniscient-threshold problem of
// best-F1 sweeps but — as the paper's §2 analysis implies — still
// inherit every label flaw: an unlabeled twin (Fig 5) caps the
// achievable AUC of a GOOD detector, which the auc bench demonstrates.

#ifndef TSAD_SCORING_AUC_H_
#define TSAD_SCORING_AUC_H_

#include <cstdint>
#include <vector>

#include "common/status.h"

namespace tsad {

/// ROC-AUC via the Mann-Whitney statistic with midrank tie handling.
/// Returns InvalidArgument on length mismatch or when either class is
/// empty (AUC undefined).
Result<double> RocAuc(const std::vector<uint8_t>& truth,
                      const std::vector<double>& scores);

/// Area under the precision-recall curve (average precision: sum of
/// precision at each positive, in descending-score order, with ties
/// grouped). Same preconditions as RocAuc.
Result<double> PrAuc(const std::vector<uint8_t>& truth,
                     const std::vector<double>& scores);

}  // namespace tsad

#endif  // TSAD_SCORING_AUC_H_
