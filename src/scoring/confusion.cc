#include "scoring/confusion.h"

#include <algorithm>

namespace tsad {

Result<Confusion> ComputeConfusion(const std::vector<uint8_t>& truth,
                                   const std::vector<uint8_t>& predictions) {
  if (truth.size() != predictions.size()) {
    return Status::InvalidArgument(
        "truth/prediction length mismatch: " + std::to_string(truth.size()) +
        " vs " + std::to_string(predictions.size()));
  }
  Confusion c;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    const bool t = truth[i] != 0, p = predictions[i] != 0;
    if (t && p) {
      ++c.tp;
    } else if (!t && p) {
      ++c.fp;
    } else if (t && !p) {
      ++c.fn;
    } else {
      ++c.tn;
    }
  }
  return c;
}

Result<BestF1> BestF1OverThresholds(const std::vector<uint8_t>& truth,
                                    const std::vector<double>& scores) {
  if (truth.size() != scores.size()) {
    return Status::InvalidArgument("truth/score length mismatch");
  }
  // Sort points by descending score; sweep the threshold through the
  // distinct score values, maintaining the confusion incrementally.
  std::vector<std::size_t> order(scores.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return scores[a] > scores[b];
  });

  std::size_t total_pos = 0;
  for (uint8_t t : truth) total_pos += t != 0 ? 1 : 0;

  BestF1 best;
  Confusion c;
  c.fn = total_pos;
  c.tn = truth.size() - total_pos;

  std::size_t i = 0;
  while (i < order.size()) {
    // Admit all points sharing this score value (threshold just below).
    const double value = scores[order[i]];
    while (i < order.size() && scores[order[i]] == value) {
      if (truth[order[i]] != 0) {
        ++c.tp;
        --c.fn;
      } else {
        ++c.fp;
        --c.tn;
      }
      ++i;
    }
    const double f1 = c.f1();
    if (f1 > best.f1) {
      best.f1 = f1;
      best.threshold = value;  // predictions are score >= value
      best.confusion = c;
    }
  }
  return best;
}

}  // namespace tsad
