#include "scoring/affiliation.h"

#include <algorithm>
#include <limits>

namespace tsad {

namespace {

// Index distance from x to the event [begin, end): 0 inside, else the
// gap to the nearest covered index.
std::size_t DistToRegion(std::size_t x, const AnomalyRegion& r) {
  if (x >= r.begin && x < r.end) return 0;
  return x < r.begin ? r.begin - x : x - (r.end - 1);
}

// An affiliation zone: the half-open index interval [begin, end) whose
// points are nearest to one ground-truth event.
struct Zone {
  std::size_t begin = 0;
  std::size_t end = 0;
  std::size_t size() const { return end - begin; }
};

// P[dist(U, event) >= d] for U uniform on the zone: the fraction of
// zone indices at least d away from the event. d == 0 is certain.
double SurvivalToEvent(const Zone& zone, const AnomalyRegion& event,
                       std::size_t d) {
  if (d == 0) return 1.0;
  // Left side: indices y <= event.begin - d.
  std::size_t count = 0;
  if (event.begin >= d) {
    const std::size_t hi = event.begin - d;  // inclusive
    if (hi >= zone.begin) {
      count += std::min(hi, zone.end - 1) - zone.begin + 1;
    }
  }
  // Right side: indices y >= (event.end - 1) + d.
  const std::size_t lo = (event.end - 1) + d;  // inclusive
  if (lo < zone.end) {
    count += zone.end - std::max(lo, zone.begin);
  }
  return static_cast<double>(count) / static_cast<double>(zone.size());
}

// P[|U - t| >= d] for U uniform on the zone. d == 0 is certain.
double SurvivalToPoint(const Zone& zone, std::size_t t, std::size_t d) {
  if (d == 0) return 1.0;
  // Indices strictly closer than d form [t - d + 1, t + d - 1].
  const std::size_t near_lo = std::max(zone.begin, t >= d - 1 ? t - (d - 1) : 0);
  const std::size_t near_hi = std::min(zone.end - 1, t + (d - 1));  // inclusive
  const std::size_t near =
      near_hi >= near_lo ? near_hi - near_lo + 1 : 0;
  return static_cast<double>(zone.size() - near) /
         static_cast<double>(zone.size());
}

}  // namespace

Result<AffiliationScore> ComputeAffiliation(
    const std::vector<AnomalyRegion>& real_in,
    const std::vector<AnomalyRegion>& predicted_in,
    std::size_t series_length) {
  if (series_length == 0) {
    return Status::InvalidArgument("series_length must be positive");
  }
  const std::vector<AnomalyRegion> real = NormalizeRegions(real_in);
  const std::vector<AnomalyRegion> predicted = NormalizeRegions(predicted_in);
  for (const AnomalyRegion& r : real) {
    if (r.end > series_length) {
      return Status::InvalidArgument("real region extends past the series");
    }
  }
  for (const AnomalyRegion& p : predicted) {
    if (p.end > series_length) {
      return Status::InvalidArgument(
          "predicted region extends past the series");
    }
  }

  AffiliationScore score;
  score.events = real.size();
  if (real.empty()) {
    score.recall = 1.0;
    score.precision = predicted.empty() ? 1.0 : 0.0;
    score.f1 = score.precision;  // harmonic mean with recall == 1
    return score;
  }

  // Zone boundaries: the midpoint between consecutive events, ties to
  // the earlier event; the first and last zones absorb the margins.
  std::vector<Zone> zones(real.size());
  for (std::size_t j = 0; j < real.size(); ++j) {
    zones[j].begin =
        j == 0 ? 0
               : (real[j - 1].end - 1 + real[j].begin) / 2 + 1;
    zones[j].end =
        j + 1 == real.size()
            ? series_length
            : (real[j].end - 1 + real[j + 1].begin) / 2 + 1;
  }

  double precision_sum = 0.0;
  double recall_sum = 0.0;
  for (std::size_t j = 0; j < real.size(); ++j) {
    const Zone& zone = zones[j];
    const AnomalyRegion& event = real[j];

    // Predicted indices clipped to this zone, as sub-regions.
    std::vector<AnomalyRegion> local;
    for (const AnomalyRegion& p : predicted) {
      const std::size_t lo = std::max(p.begin, zone.begin);
      const std::size_t hi = std::min(p.end, zone.end);
      if (lo < hi) local.push_back({lo, hi});
    }

    if (!local.empty()) {
      ++score.zones_with_predictions;
      double sum = 0.0;
      std::size_t count = 0;
      for (const AnomalyRegion& p : local) {
        for (std::size_t x = p.begin; x < p.end; ++x) {
          sum += SurvivalToEvent(zone, event, DistToRegion(x, event));
          ++count;
        }
      }
      precision_sum += sum / static_cast<double>(count);

      double recall_j = 0.0;
      for (std::size_t t = event.begin; t < event.end; ++t) {
        std::size_t d = std::numeric_limits<std::size_t>::max();
        for (const AnomalyRegion& p : local) {
          d = std::min(d, DistToRegion(t, p));
        }
        recall_j += SurvivalToPoint(zone, t, d);
      }
      recall_sum += recall_j / static_cast<double>(event.length());
    }
    // A zone without predictions contributes recall 0 and abstains
    // from the precision average.
  }

  score.precision =
      score.zones_with_predictions == 0
          ? 0.0
          : precision_sum / static_cast<double>(score.zones_with_predictions);
  score.recall = recall_sum / static_cast<double>(real.size());
  const double pr = score.precision + score.recall;
  score.f1 = pr == 0.0 ? 0.0 : 2.0 * score.precision * score.recall / pr;
  return score;
}

}  // namespace tsad
