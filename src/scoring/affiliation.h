// Affiliation-based precision/recall (Huet, Navarro & Rossi, KDD 2022
// — the parameter-free, event-local scoring the TimeSeriesBench line
// of work recommends over point-adjust). The time axis is partitioned
// into "affiliation zones", one per ground-truth event (each index is
// affiliated with its nearest event; ties go to the earlier event).
// Within each zone, distances between predictions and the event are
// converted to probabilities against the zone's uniform baseline:
//
//   precision_j = mean over predicted indices p in zone_j of
//                 P[ dist(U, I_j) >= dist(p, I_j) ],  U ~ Uniform(zone_j)
//   recall_j    = mean over truth indices t in I_j of
//                 P[ |U - t| >= dist(t, P_j) ],       U ~ Uniform(zone_j)
//
// where I_j is the event, P_j the predicted indices in zone_j, and
// dist(x, S) the index distance from x to the set S (0 when inside).
// A random predictor scores ~0.5; an exact predictor scores 1. The
// conversion makes the metric parameter-free (no tolerance window to
// tune) and event-local (one 5000-point labeled region cannot buy
// credit for a miss elsewhere — the point-adjust pathology of §2.3).
//
// Aggregation follows the reference implementation: precision averages
// over zones that contain at least one prediction (a zone with none
// expresses no opinion about precision); recall averages over ALL
// events, scoring 0 for events whose zone has no prediction.

#ifndef TSAD_SCORING_AFFILIATION_H_
#define TSAD_SCORING_AFFILIATION_H_

#include <cstddef>
#include <vector>

#include "common/series.h"
#include "common/status.h"

namespace tsad {

struct AffiliationScore {
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
  /// Number of ground-truth events (affiliation zones).
  std::size_t events = 0;
  /// Zones containing at least one predicted index (the precision
  /// average runs over exactly these).
  std::size_t zones_with_predictions = 0;
};

/// Computes affiliation precision/recall/F1 between ground-truth and
/// predicted anomaly regions over a series of `series_length` points
/// (both region lists are normalized internally).
///
/// Degenerate conventions (mirroring ComputeRangePr): no ground-truth
/// events => recall 1, precision 1 iff nothing was predicted; events
/// but no predictions => precision 0, recall 0. Returns InvalidArgument
/// when series_length is 0 or a region extends past the series.
Result<AffiliationScore> ComputeAffiliation(
    const std::vector<AnomalyRegion>& real,
    const std::vector<AnomalyRegion>& predicted, std::size_t series_length);

}  // namespace tsad

#endif  // TSAD_SCORING_AFFILIATION_H_
