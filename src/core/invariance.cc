#include "core/invariance.h"

#include <cmath>

#include "common/rng.h"
#include "common/stats.h"

namespace tsad {

std::string_view PerturbationName(Perturbation p) {
  switch (p) {
    case Perturbation::kGaussianNoise:
      return "gaussian-noise";
    case Perturbation::kAmplitudeScale:
      return "amplitude-scale";
    case Perturbation::kLinearTrend:
      return "linear-trend";
    case Perturbation::kBaselineWander:
      return "baseline-wander";
  }
  return "?";
}

LabeledSeries Perturb(const LabeledSeries& series, Perturbation perturbation,
                      double level, uint64_t seed) {
  LabeledSeries out = series;
  if (level == 0.0) return out;
  Series& x = out.mutable_values();
  const double scale = StdDev(x);
  Rng rng(seed);
  const std::size_t n = x.size();
  switch (perturbation) {
    case Perturbation::kGaussianNoise:
      for (double& v : x) v += rng.Gaussian(0.0, level * scale);
      break;
    case Perturbation::kAmplitudeScale:
      for (double& v : x) v *= (1.0 + level);
      break;
    case Perturbation::kLinearTrend:
      for (std::size_t i = 0; i < n; ++i) {
        x[i] += level * scale * static_cast<double>(i) /
                static_cast<double>(n > 1 ? n - 1 : 1);
      }
      break;
    case Perturbation::kBaselineWander:
      for (std::size_t i = 0; i < n; ++i) {
        x[i] += level * scale *
                std::sin(2.0 * 3.14159265358979 * static_cast<double>(i) /
                         (static_cast<double>(n) / 3.0));
      }
      break;
  }
  return out;
}

std::vector<InvarianceRow> RunInvarianceStudy(
    const LabeledSeries& series,
    const std::vector<const AnomalyDetector*>& detectors,
    const InvarianceConfig& config) {
  std::vector<InvarianceRow> rows;
  for (double level : config.levels) {
    const LabeledSeries perturbed =
        Perturb(series, config.perturbation, level, config.seed);
    for (const AnomalyDetector* detector : detectors) {
      InvarianceRow row;
      row.detector_name = std::string(detector->name());
      row.perturbation = config.perturbation;
      row.level = level;
      Result<std::vector<double>> scores = detector->Score(perturbed);
      if (scores.ok() && !scores->empty()) {
        // Judge the peak over the test span only; the training prefix
        // is anomaly-free by contract.
        row.peak_location =
            PredictLocation(*scores, perturbed.train_length());
        row.discrimination = Discrimination(*scores);
        if (!perturbed.anomalies().empty() &&
            row.peak_location != kNoPrediction) {
          const AnomalyRegion& a = perturbed.anomalies().front();
          const std::size_t lo =
              a.begin > config.slop ? a.begin - config.slop : 0;
          const std::size_t hi = a.end + config.slop;
          row.peak_correct =
              row.peak_location >= lo && row.peak_location < hi;
        }
      }
      rows.push_back(std::move(row));
    }
  }
  return rows;
}

}  // namespace tsad
