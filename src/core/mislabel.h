// The mislabeled-ground-truth auditor (§2.4, Figs 4-7 & 9). Four
// automated audits, each targeting one pathology the paper documents:
//
//  * Unlabeled twins (Figs 5, 9): a labeled anomaly whose z-normalized
//    nearest neighbor OUTSIDE every labeled region is (nearly)
//    identical — if the labeled one is an anomaly, so is its twin.
//  * Half-labeled constant runs (Fig 4): a maximal constant run where
//    the label covers part of the flat line and not the rest, although
//    "literally nothing has changed" within it.
//  * Label toggling (Fig 7): many labeled regions separated by tiny
//    gaps right after a regime change — unreasonably precise labels;
//    the auditor proposes the merged region instead.
//  * Duplicate series (A1-Real13/15): near-identical datasets inflate
//    apparent archive size.

#ifndef TSAD_CORE_MISLABEL_H_
#define TSAD_CORE_MISLABEL_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/series.h"
#include "common/status.h"

namespace tsad {

enum class MislabelKind {
  kUnlabeledTwin,
  kHalfLabeledConstant,
  kLabelToggling,
  kDuplicateSeries,
};

std::string_view MislabelKindName(MislabelKind kind);

struct MislabelFinding {
  MislabelKind kind = MislabelKind::kUnlabeledTwin;
  std::string series_name;
  /// Focal point of the problem (twin position, first unlabeled flat
  /// point, start of the toggling span, ...).
  std::size_t position = 0;
  /// For twins: distance to the labeled exemplar and the series median
  /// profile distance for context. For toggling: the proposed merged
  /// region is in `proposed`.
  double distance = 0.0;
  double reference_distance = 0.0;
  AnomalyRegion proposed;  // suggested relabel, when applicable
  std::string detail;
};

struct TwinSearchConfig {
  /// Subsequence length floor for the comparison window (the window is
  /// max(min_window, region length)).
  std::size_t min_window = 16;
  /// A candidate is a twin when its z-normalized distance to the
  /// labeled exemplar is below `ratio` x the median distance-profile
  /// value (i.e., it matches the anomaly far better than typical data
  /// does)...
  double ratio = 0.25;
  /// ...AND below `identity_cap` x sqrt(2m), the maximum attainable
  /// z-normalized distance. This near-identity requirement keeps
  /// phase-aligned seasonal windows (distance ~0.25-0.35 of max) from
  /// masquerading as twins; genuine twins (identical dropout, repeated
  /// freeze) sit within noise of zero.
  double identity_cap = 0.18;
  /// Margin (points) around labeled regions excluded from twin search.
  std::size_t exclusion_margin = 8;
  /// At most this many twin findings are emitted per labeled region;
  /// the last finding's detail records how many more matches exist.
  /// (A label on a statistically unremarkable region — the paper's
  /// Fig 6 — legitimately matches dozens of places.)
  std::size_t max_per_region = 4;
};

/// Finds unlabeled twins of each labeled anomaly via MASS profiles.
std::vector<MislabelFinding> FindUnlabeledTwins(
    const LabeledSeries& series, const TwinSearchConfig& config = {});

struct ConstantRunAuditConfig {
  std::size_t min_run = 12;
  double tolerance = 1e-9;
};

/// Finds constant runs that are partially (but not fully) labeled.
std::vector<MislabelFinding> AuditConstantRuns(
    const LabeledSeries& series, const ConstantRunAuditConfig& config = {});

struct TogglingAuditConfig {
  std::size_t max_gap = 8;      // gaps this small are "toggling"
  std::size_t min_regions = 4;  // this many close regions = a finding
};

/// Finds rapid label toggling and proposes the merged region.
std::vector<MislabelFinding> AuditLabelToggling(
    const LabeledSeries& series, const TogglingAuditConfig& config = {});

/// Finds near-duplicate series pairs by Pearson correlation of
/// length-truncated values (threshold on |r|).
std::vector<MislabelFinding> FindDuplicateSeries(
    const BenchmarkDataset& dataset, double correlation_threshold = 0.995);

/// Runs all four audits over a dataset.
struct MislabelAuditConfig {
  TwinSearchConfig twins;
  ConstantRunAuditConfig constant_runs;
  TogglingAuditConfig toggling;
  double duplicate_correlation = 0.995;
  bool run_twin_search = true;  // the expensive audit; can be disabled
};

std::vector<MislabelFinding> AuditDatasetLabels(
    const BenchmarkDataset& dataset, const MislabelAuditConfig& config = {});

}  // namespace tsad

#endif  // TSAD_CORE_MISLABEL_H_
