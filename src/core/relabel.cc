#include "core/relabel.h"

namespace tsad {

LabeledSeries ApplyFindings(const LabeledSeries& series,
                            const std::vector<MislabelFinding>& findings,
                            RelabelSummary* summary) {
  std::vector<AnomalyRegion> regions = series.anomalies();
  RelabelSummary local;
  for (const MislabelFinding& f : findings) {
    if (f.series_name != series.name()) continue;
    switch (f.kind) {
      case MislabelKind::kUnlabeledTwin:
        if (f.proposed.length() > 0) {
          regions.push_back(f.proposed);
          ++local.twins_added;
        }
        break;
      case MislabelKind::kHalfLabeledConstant:
        // The proposed region is the full constant run; adding it and
        // normalizing merges it with the partial label.
        if (f.proposed.length() > 0) {
          regions.push_back(f.proposed);
          ++local.runs_extended;
        }
        break;
      case MislabelKind::kLabelToggling: {
        // Drop the toggling chain inside the proposed span, then label
        // the span as one region.
        if (f.proposed.length() == 0) break;
        std::erase_if(regions, [&](const AnomalyRegion& r) {
          return r.begin >= f.proposed.begin && r.end <= f.proposed.end;
        });
        regions.push_back(f.proposed);
        ++local.toggles_merged;
        break;
      }
      case MislabelKind::kDuplicateSeries:
        ++local.findings_ignored;
        break;
    }
  }
  if (summary != nullptr) {
    summary->twins_added += local.twins_added;
    summary->runs_extended += local.runs_extended;
    summary->toggles_merged += local.toggles_merged;
    summary->findings_ignored += local.findings_ignored;
  }
  LabeledSeries out = series;
  out.set_anomalies(std::move(regions));
  return out;
}

BenchmarkDataset ApplyFindingsToDataset(
    const BenchmarkDataset& dataset,
    const std::vector<MislabelFinding>& findings, RelabelSummary* summary) {
  BenchmarkDataset out;
  out.name = dataset.name + " (relabeled)";
  out.series.reserve(dataset.series.size());
  for (const LabeledSeries& s : dataset.series) {
    out.series.push_back(ApplyFindings(s, findings, summary));
  }
  return out;
}

}  // namespace tsad
