// The run-to-failure bias analyzer (§2.5, Fig 10): are anomaly
// locations skewed toward the end of their series? If so, "a naive
// algorithm that simply labels the last point as an anomaly has an
// excellent chance of being correct."

#ifndef TSAD_CORE_RUN_TO_FAILURE_H_
#define TSAD_CORE_RUN_TO_FAILURE_H_

#include <array>
#include <cstddef>
#include <string>
#include <vector>

#include "common/series.h"

namespace tsad {

struct RunToFailureReport {
  std::string dataset_name;
  std::size_t num_series = 0;
  /// Relative position (0..1) of the LAST anomaly in each series (the
  /// paper's Fig 10 plots the rightmost anomaly).
  std::vector<double> last_anomaly_positions;
  /// Decile histogram of those positions.
  std::array<std::size_t, 10> decile_counts = {};
  double mean_position = 0.0;
  double fraction_in_last_quintile = 0.0;
  /// One-sample Kolmogorov-Smirnov statistic against Uniform(0,1):
  /// large values mean the placement is far from random.
  double ks_statistic = 0.0;
  /// Fraction of series where the naive last-point detector scores a
  /// hit: the final point lies within `slop` of the last anomaly.
  double last_point_hit_rate = 0.0;
};

struct RunToFailureConfig {
  std::size_t last_point_slop = 100;
};

RunToFailureReport AnalyzeRunToFailure(const BenchmarkDataset& dataset,
                                       const RunToFailureConfig& config = {});

}  // namespace tsad

#endif  // TSAD_CORE_RUN_TO_FAILURE_H_
