// The cross-family, multi-metric detector leaderboard — the paper's
// "illusion of progress" experiment reproduced against our own
// detector zoo. Every registry detector (including the resilient:
// wrappers) runs across every simulator family (Yahoo, NAB, NASA,
// OMNI, physio, gait) and is scored under every scoring protocol the
// library implements, from the flattering (best point-adjust F1) to
// the event-aware (affiliation, detection delay). The report carries
// rank-inversion statistics: pairs of detectors ordered one way by
// point-adjust F1 and the opposite way by an event-aware metric —
// each such pair is a place where the popular protocol manufactures
// progress that the fair protocols do not see.
//
// The sweep is one ParallelFor over (detector, family, series)
// triples; each worker builds its own detector instance from the spec,
// so the report is bit-identical at any thread count.

#ifndef TSAD_CORE_LEADERBOARD_H_
#define TSAD_CORE_LEADERBOARD_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/series.h"
#include "common/status.h"

namespace tsad {

/// The scoring protocols on the board, in report column order.
enum class LeaderboardMetric {
  kPointF1,        // best point-wise F1 over all thresholds
  kPointAdjustF1,  // best point-adjusted F1 (the flattering headline)
  kRangePrF1,      // range-based precision/recall F1 (Tatbul et al.)
  kNab,            // NAB normalized score / 100 (can be negative)
  kUcrSlop,        // UCR protocol: peak within slop of a labeled region
  kAffiliationF1,  // affiliation precision/recall F1 (parameter-free)
  kDelayF1,        // delay-constrained event F1 (online protocol)
};
inline constexpr std::size_t kNumLeaderboardMetrics = 7;

/// Stable metric name used in flags, reports and JSON.
std::string_view LeaderboardMetricName(LeaderboardMetric metric);

/// Parses a comma-separated metric list ("" or "all" = every metric).
/// Unknown names are InvalidArgument with a "did you mean" hint.
Result<std::vector<LeaderboardMetric>> ParseLeaderboardMetrics(
    const std::string& list);

/// The simulator families on the board.
enum class LeaderboardFamily {
  kYahoo,   // simulated Yahoo S5 (stratified across A1-A4)
  kNab,     // simulated Numenta collection (taxi, spike density, ads)
  kNasa,    // simulated NASA SMAP/MSL-style channels
  kOmni,    // simulated OMNI/SMD machines (cross-dimension mean)
  kPhysio,  // synthetic ECG / BIDMC pleth
  kGait,    // synthetic force-plate gait
};
inline constexpr std::size_t kNumLeaderboardFamilies = 6;

std::string_view LeaderboardFamilyName(LeaderboardFamily family);

/// Parses a comma-separated family list ("" or "all" = every family).
/// Unknown names are InvalidArgument with a "did you mean" hint.
Result<std::vector<LeaderboardFamily>> ParseLeaderboardFamilies(
    const std::string& list);

/// Every registered detector spec plus its resilient: wrapper.
std::vector<std::string> DefaultLeaderboardDetectors();

/// The labeled series the leaderboard evaluates for one family:
/// deterministic in (family, seed), at most `max_series` entries
/// (0 = no cap). Series without a training prefix get one assigned
/// (quarter of the series, clipped to the first anomaly) so the
/// semi-supervised detectors can compete.
std::vector<LabeledSeries> BuildLeaderboardFamily(LeaderboardFamily family,
                                                  uint64_t seed,
                                                  std::size_t max_series);

struct LeaderboardConfig {
  /// Detector specs to run; empty = DefaultLeaderboardDetectors().
  std::vector<std::string> detectors;
  /// Families to run; empty = all six.
  std::vector<LeaderboardFamily> families;
  /// Metrics to compute; empty = all seven.
  std::vector<LeaderboardMetric> metrics;
  uint64_t seed = 42;
  /// Cap on series per family (0 = no cap). The default keeps a full
  /// 30-detector board tractable on one core.
  std::size_t max_series_per_family = 4;
  /// Tolerance k of the delay metric, in points.
  std::size_t delay_tolerance = 64;
};

/// One (detector, family) cell: every metric, averaged over the
/// family's series. values is aligned with the report's metric list;
/// entries are NaN when no series could be scored.
struct LeaderboardCell {
  std::string detector;
  std::string family;
  std::vector<double> values;
  std::size_t series_scored = 0;
  std::size_t detector_errors = 0;
};

/// Rank disagreement between point-adjust F1 and one other metric
/// within one family. A discordant pair is two detectors strictly
/// ordered one way by point-adjust and the other way by the metric;
/// the example names the pair with the widest margins (the detector
/// point-adjust flatters most vs the one the metric prefers).
struct RankInversionStat {
  std::string family;
  std::string metric;
  std::size_t discordant_pairs = 0;
  std::string flattered;  // ahead on point-adjust, behind on the metric
  std::string robbed;     // behind on point-adjust, ahead on the metric
  double flattered_point_adjust = 0.0;
  double flattered_value = 0.0;
  double robbed_point_adjust = 0.0;
  double robbed_value = 0.0;
};

struct LeaderboardReport {
  std::vector<std::string> detectors;
  std::vector<std::string> families;
  std::vector<LeaderboardMetric> metrics;
  uint64_t seed = 0;
  std::size_t delay_tolerance = 0;
  /// detector-major x family: cells[d * families.size() + f].
  std::vector<LeaderboardCell> cells;
  /// One entry per (family, non-point-adjust metric) with at least one
  /// discordant pair; empty when point-adjust F1 is not on the board.
  std::vector<RankInversionStat> inversions;
  std::size_t total_discordant_pairs = 0;
};

/// Runs the sweep. Validates every detector spec up front (so a typo
/// fails fast with the registry's "did you mean" message); per-series
/// detector failures are recorded in the cell, not fatal.
Result<LeaderboardReport> RunLeaderboard(const LeaderboardConfig& config = {});

/// Rank-inversion analysis of a cell grid (pure; exposed for tests).
/// Writes the grand total into *total when non-null.
std::vector<RankInversionStat> ComputeRankInversions(
    const std::vector<LeaderboardCell>& cells,
    const std::vector<std::string>& detectors,
    const std::vector<std::string>& families,
    const std::vector<LeaderboardMetric>& metrics, std::size_t* total);

/// Machine-readable report (one JSON object; NaN cells become null).
/// Byte-identical for byte-identical reports.
std::string LeaderboardJson(const LeaderboardReport& report);

/// Human-readable per-family tables, detectors sorted by point-adjust
/// F1 (the flattering order — the other columns show the corrections),
/// plus the inversion summary.
std::string FormatLeaderboardTable(const LeaderboardReport& report);

}  // namespace tsad

#endif  // TSAD_CORE_LEADERBOARD_H_
