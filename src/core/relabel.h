// Relabeling: §4.1 says existing papers should "ideally [be]
// reevaluated on new challenging datasets"; the constructive half of
// that is fixing the labels the audit proved wrong. This module applies
// mislabel findings back onto a dataset:
//
//  * unlabeled twins     -> the twin's region becomes ground truth
//                           (Fig 5's D, Fig 9's two unlabeled freezes),
//  * half-labeled runs   -> the label covers the whole constant run
//                           (Fig 4: "literally nothing has changed"),
//  * toggling labels     -> the chain collapses into one region
//                           (Fig 7: the paper's proposed label).
//
// Duplicate-series findings are reported, not "fixed" — deduplication
// is an archive-curation decision.

#ifndef TSAD_CORE_RELABEL_H_
#define TSAD_CORE_RELABEL_H_

#include <vector>

#include "common/series.h"
#include "core/mislabel.h"

namespace tsad {

struct RelabelSummary {
  std::size_t twins_added = 0;
  std::size_t runs_extended = 0;
  std::size_t toggles_merged = 0;
  std::size_t findings_ignored = 0;  // duplicates and unknown kinds
};

/// Returns a copy of `series` with the findings' proposed labels
/// applied (regions are normalized/merged afterwards). Findings whose
/// series_name does not match are ignored.
LabeledSeries ApplyFindings(const LabeledSeries& series,
                            const std::vector<MislabelFinding>& findings,
                            RelabelSummary* summary = nullptr);

/// Applies findings across a whole dataset (matching by series name).
BenchmarkDataset ApplyFindingsToDataset(
    const BenchmarkDataset& dataset,
    const std::vector<MislabelFinding>& findings,
    RelabelSummary* summary = nullptr);

}  // namespace tsad

#endif  // TSAD_CORE_RELABEL_H_
