// The triviality analyzer (§2.2, Table 1): decides whether a labeled
// series is "trivial" in the paper's Definition-1 sense — solvable by a
// one-liner from the equation (1)-(6) family — by brute-force searching
// the (form, k, c) grid with an EXACT sweep over the offset b.
//
// The b sweep is exact because for a fixed form/k/c the predicate
// "margin > b" fires on a monotone family of point sets: the series is
// solvable iff the smallest per-region maximum margin exceeds the
// largest margin at any point that must not fire. No b grid needed.
//
// "Solved" means perfect detection under a small positional slop: every
// ground-truth region is hit by at least one flag within `slop` points,
// and no flag lands more than `slop` points from a region (§4.4's
// "play" to avoid punishing output formatting).

#ifndef TSAD_CORE_TRIVIALITY_H_
#define TSAD_CORE_TRIVIALITY_H_

#include <array>
#include <cstddef>
#include <string>
#include <vector>

#include "common/series.h"
#include "detectors/oneliner.h"

namespace tsad {

struct SolveCriteria {
  /// Positional tolerance, in points, on each side of a labeled region.
  std::size_t slop = 3;
  /// Minimum relative separation between the weakest region margin and
  /// the strongest forbidden margin for a configuration to count as a
  /// solution (0 = any strict separation). Raising this filters out
  /// "lucky" solutions that overfit a noise maximum inside a wide
  /// labeled region.
  double min_headroom = 0.0;
};

struct OneLinerSearchSpace {
  std::vector<std::size_t> ks = {5, 11, 21, 51, 101, 151};
  std::vector<double> cs = {0.0, 0.5, 1.0, 2.0, 3.0, 4.0, 6.0};
};

/// Outcome of the search on one series.
struct TrivialitySolution {
  bool solved = false;
  OneLinerParams params;  // valid iff solved
  /// Margin headroom: (smallest region max-margin) - (largest forbidden
  /// margin), normalized by their midpoint's magnitude. Larger = the
  /// one-liner separates more decisively.
  double headroom = 0.0;
};

/// Checks the solve criterion for an explicit flag vector.
bool FlagsSolve(const LabeledSeries& series, const std::vector<uint8_t>& flags,
                const SolveCriteria& criteria = {});

/// Searches only the given form's parameter grid. Forms (3)/(5) ignore
/// the k/c grids.
TrivialitySolution SolveWithForm(const LabeledSeries& series,
                                 OneLinerForm form,
                                 const OneLinerSearchSpace& space = {},
                                 const SolveCriteria& criteria = {});

/// Tries the forms in the paper's numbering order (3), (4), (5), (6)
/// and returns the first solving configuration.
TrivialitySolution FindOneLiner(const LabeledSeries& series,
                                const OneLinerSearchSpace& space = {},
                                const SolveCriteria& criteria = {});

/// The pre-memoization implementations, frozen verbatim: every (k, c)
/// candidate recomputes its diff track and moving windows from scratch
/// via OneLinerMargin, and every b sweep rebuilds the allowed mask and
/// region bounds. Kept so tests can assert the memoized search returns
/// IDENTICAL solutions (same solved flag, params, and headroom bits)
/// and so the perf bench reports the sweep speedup against the real
/// baseline.
TrivialitySolution SolveWithFormDirect(const LabeledSeries& series,
                                       OneLinerForm form,
                                       const OneLinerSearchSpace& space = {},
                                       const SolveCriteria& criteria = {});
TrivialitySolution FindOneLinerDirect(const LabeledSeries& series,
                                      const OneLinerSearchSpace& space = {},
                                      const SolveCriteria& criteria = {});

/// Per-dataset Table 1 row.
struct DatasetTriviality {
  std::string dataset_name;
  std::size_t total = 0;
  /// Solved counts by form, indexed by static_cast<int>(OneLinerForm).
  std::array<std::size_t, 4> solved_by_form = {0, 0, 0, 0};
  std::size_t solved = 0;

  double solved_percent() const {
    return total == 0 ? 0.0
                      : 100.0 * static_cast<double>(solved) /
                            static_cast<double>(total);
  }
};

/// Per-series record (for galleries and debugging).
struct SeriesTriviality {
  std::string series_name;
  TrivialitySolution solution;
};

struct TrivialityReport {
  std::vector<DatasetTriviality> datasets;
  std::vector<SeriesTriviality> series;  // across all datasets, in order
  std::size_t total = 0;
  std::size_t solved = 0;

  double solved_percent() const {
    return total == 0 ? 0.0
                      : 100.0 * static_cast<double>(solved) /
                            static_cast<double>(total);
  }
};

/// Runs the brute force over whole datasets — the Table 1 engine.
TrivialityReport AnalyzeTriviality(
    const std::vector<const BenchmarkDataset*>& datasets,
    const OneLinerSearchSpace& space = {}, const SolveCriteria& criteria = {});

}  // namespace tsad

#endif  // TSAD_CORE_TRIVIALITY_H_
