#include "core/report.h"

#include <algorithm>
#include <fstream>
#include <set>
#include <sstream>

namespace tsad {

std::string AsciiSparkline(const Series& values, std::size_t width) {
  static constexpr const char* kLevels[] = {" ", ".", ":", "-",
                                            "=", "+", "*", "#"};
  if (values.empty() || width == 0) return "";
  double lo = values[0], hi = values[0];
  for (double v : values) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  const double range = hi - lo > 1e-12 ? hi - lo : 1.0;
  // Exact-width bucketing: bucket i covers [i*n/w, (i+1)*n/w) and
  // renders its maximum. Series shorter than the width render one
  // character per point.
  const std::size_t n = values.size();
  const std::size_t cells = std::min(width, n);
  std::string out;
  out.reserve(cells);
  for (std::size_t c = 0; c < cells; ++c) {
    const std::size_t begin = c * n / cells;
    const std::size_t end = std::max(begin + 1, (c + 1) * n / cells);
    double peak = values[begin];
    for (std::size_t j = begin; j < end && j < n; ++j) {
      peak = std::max(peak, values[j]);
    }
    int level = static_cast<int>((peak - lo) / range * 7.0 + 0.5);
    level = std::clamp(level, 0, 7);
    out += kLevels[level];
  }
  return out;
}

std::string RenderAuditReport(const BenchmarkAudit& audit,
                              const BenchmarkDataset& dataset,
                              const ReportConfig& config) {
  std::ostringstream md;
  md << "# Benchmark audit: " << audit.dataset_name << "\n\n";
  md << "**Verdict: "
     << (audit.irretrievably_flawed ? "IRRETRIEVABLY FLAWED" : "no flaw found")
     << "**\n\n";
  for (const std::string& reason : audit.verdict_reasons) {
    md << "- " << reason << "\n";
  }

  // --- Triviality -----------------------------------------------------
  md << "\n## Triviality (one-liner brute force)\n\n";
  md << audit.triviality.solved << " / " << audit.triviality.total
     << " series (" << audit.triviality.solved_percent()
     << "%) are solvable by a single line of the equation (1)-(6) "
        "family.\n\n";
  md << "| series | solving one-liner |\n|---|---|\n";
  std::size_t listed = 0;
  for (const SeriesTriviality& s : audit.triviality.series) {
    if (!s.solution.solved) continue;
    md << "| " << s.series_name << " | `" << s.solution.params.ToMatlab()
       << "` |\n";
    if (++listed >= 15) {
      md << "| ... | (" << audit.triviality.solved - listed
         << " more solved series) |\n";
      break;
    }
  }

  // --- Density ----------------------------------------------------------
  md << "\n## Anomaly density\n\n";
  md << "- series with one region covering > 1/2 of the test span: "
     << audit.density.over_half << "\n";
  md << "- series with one region covering > 1/3: " << audit.density.over_third
     << "\n";
  md << "- series with >= 10 labeled regions: " << audit.density.many_regions
     << "\n";
  md << "- series with adjacent labeled regions: " << audit.density.adjacent
     << "\n";
  md << "- series with the ideal single anomaly: "
     << audit.density.single_anomaly << " / " << audit.density.stats.size()
     << "\n";

  // --- Mislabels --------------------------------------------------------
  md << "\n## Ground-truth findings\n\n";
  if (audit.mislabels.empty()) {
    md << "none\n";
  } else {
    md << "| kind | series | detail |\n|---|---|---|\n";
    std::size_t shown = 0;
    for (const MislabelFinding& f : audit.mislabels) {
      md << "| " << MislabelKindName(f.kind) << " | " << f.series_name
         << " | " << f.detail << " |\n";
      if (++shown >= 20) {
        md << "| ... | | (" << audit.mislabels.size() - shown
           << " more findings) |\n";
        break;
      }
    }
  }

  // --- Run-to-failure -----------------------------------------------------
  md << "\n## Run-to-failure bias\n\n";
  md << "- mean relative position of the last anomaly: "
     << audit.run_to_failure.mean_position << "\n";
  md << "- fraction in the last quintile: "
     << 100.0 * audit.run_to_failure.fraction_in_last_quintile << "%\n";
  md << "- KS statistic vs Uniform(0,1): " << audit.run_to_failure.ks_statistic
     << "\n";
  md << "- naive last-point hit rate: "
     << 100.0 * audit.run_to_failure.last_point_hit_rate << "%\n";

  // --- Panels -------------------------------------------------------------
  std::set<std::string> flagged;
  for (const MislabelFinding& f : audit.mislabels) {
    flagged.insert(f.series_name);
  }
  if (!flagged.empty()) {
    md << "\n## Flagged series (visual check, per the paper's §4.3)\n";
    std::size_t panels = 0;
    for (const LabeledSeries& s : dataset.series) {
      if (flagged.count(s.name()) == 0) continue;
      md << "\n### " << s.name() << "\n\n```\n"
         << AsciiSparkline(s.values(), config.sparkline_width) << "\n";
      // Label track beneath.
      const auto labels = s.BinaryLabels();
      Series label_track(labels.begin(), labels.end());
      md << AsciiSparkline(label_track, config.sparkline_width)
         << "  <- labels\n```\n";
      if (++panels >= config.max_panels) break;
    }
  }
  return md.str();
}

Status WriteAuditReport(const BenchmarkAudit& audit,
                        const BenchmarkDataset& dataset,
                        const std::string& path, const ReportConfig& config) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::IOError("cannot open '" + path + "' for writing");
  out << RenderAuditReport(audit, dataset, config);
  out.flush();
  if (!out) return Status::IOError("error writing '" + path + "'");
  return Status::OK();
}

}  // namespace tsad
