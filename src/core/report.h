// Markdown rendering for benchmark audits — §4.3's "visualize the data"
// recommendation turned into an artifact: one self-contained .md file
// with the verdict, the four flaw sections, per-series tables, and
// ASCII sparklines of the worst offenders.

#ifndef TSAD_CORE_REPORT_H_
#define TSAD_CORE_REPORT_H_

#include <string>

#include "common/series.h"
#include "common/status.h"
#include "core/benchmark_audit.h"

namespace tsad {

struct ReportConfig {
  /// How many of the flagged series get a sparkline panel.
  std::size_t max_panels = 6;
  /// Sparkline width in characters.
  std::size_t sparkline_width = 72;
};

/// Renders a full Markdown report of the audit. `dataset` must be the
/// dataset the audit was computed from (for the sparkline panels).
std::string RenderAuditReport(const BenchmarkAudit& audit,
                              const BenchmarkDataset& dataset,
                              const ReportConfig& config = {});

/// Renders and writes the report to `path`.
Status WriteAuditReport(const BenchmarkAudit& audit,
                        const BenchmarkDataset& dataset,
                        const std::string& path,
                        const ReportConfig& config = {});

/// A one-line ASCII sparkline of a series (shared with the benches).
std::string AsciiSparkline(const Series& values, std::size_t width = 72);

}  // namespace tsad

#endif  // TSAD_CORE_REPORT_H_
