#include "core/triviality.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/parallel.h"
#include "common/vector_ops.h"

namespace tsad {

namespace {

// Builds the "allowed" mask: point i may be flagged iff it lies within
// `slop` of some ground-truth region.
std::vector<uint8_t> AllowedMask(const LabeledSeries& series,
                                 std::size_t slop) {
  std::vector<uint8_t> allowed(series.length(), 0);
  for (const AnomalyRegion& r : series.anomalies()) {
    const std::size_t lo = r.begin > slop ? r.begin - slop : 0;
    const std::size_t hi = std::min(series.length(), r.end + slop);
    for (std::size_t i = lo; i < hi; ++i) allowed[i] = 1;
  }
  return allowed;
}

// Given the margin track aligned to the original series, decides
// solvability with an exact b sweep; fills `params_b` and `headroom`
// when solvable.
bool ExactBSweep(const LabeledSeries& series, const std::vector<double>& margin,
                 std::size_t slop, double* b_out, double* headroom_out) {
  if (series.anomalies().empty()) return false;
  const std::vector<uint8_t> allowed = AllowedMask(series, slop);

  // Largest margin among points that must not fire. (With b above this
  // value no forbidden point fires; margin > b means strictly above.)
  bool has_forbidden = false;
  double forbidden_max = -std::numeric_limits<double>::infinity();
  for (std::size_t i = 1; i < margin.size(); ++i) {  // index 0 is padding
    if (!allowed[i]) {
      has_forbidden = true;
      forbidden_max = std::max(forbidden_max, margin[i]);
    }
  }
  // Degenerate case: the labeled regions plus slop cover every index,
  // so nothing is forbidden, forbidden_max stays -inf and ANY threshold
  // would "solve" the series with b = -inf and infinite headroom. A
  // one-liner that may flag everywhere is not a meaningful solution —
  // reject instead of reporting a fake solve.
  if (!has_forbidden) return false;

  // Smallest per-region best margin. Every region must contain (within
  // slop) at least one point whose margin strictly exceeds b.
  double weakest_region = std::numeric_limits<double>::infinity();
  for (const AnomalyRegion& r : series.anomalies()) {
    const std::size_t lo = std::max<std::size_t>(1, r.begin > slop
                                                        ? r.begin - slop
                                                        : 0);
    const std::size_t hi = std::min(margin.size(), r.end + slop);
    double region_best = -std::numeric_limits<double>::infinity();
    for (std::size_t i = lo; i < hi; ++i) {
      region_best = std::max(region_best, margin[i]);
    }
    weakest_region = std::min(weakest_region, region_best);
  }

  if (!(weakest_region > forbidden_max)) return false;
  // The margin arrays were computed with b = 0, so margin > b is the
  // original predicate with offset b. Place b in the middle of the gap.
  const double b = 0.5 * (weakest_region + forbidden_max);
  if (b_out != nullptr) *b_out = b;
  if (headroom_out != nullptr) {
    // Headroom: the separating gap as a fraction of the full margin
    // dynamic range. A decisive spike solution separates by a large
    // fraction of the range; a lucky noise maximum separates by a
    // sliver.
    double margin_min = std::numeric_limits<double>::infinity();
    double margin_max = -std::numeric_limits<double>::infinity();
    for (std::size_t i = 1; i < margin.size(); ++i) {
      margin_min = std::min(margin_min, margin[i]);
      margin_max = std::max(margin_max, margin[i]);
    }
    const double range = std::max(1e-12, margin_max - margin_min);
    *headroom_out = (weakest_region - forbidden_max) / range;
  }
  return true;
}

// Margin track for a parameter setting with b = 0.
std::vector<double> MarginWithZeroB(const LabeledSeries& series,
                                    OneLinerParams params) {
  params.b = 0.0;
  return OneLinerMargin(series.values(), params);
}

// Everything ExactBSweep derives from (series, slop) alone, hoisted out
// of the (k, c) grid: the b sweep runs once per candidate margin, but
// the forbidden-index list and per-region index bounds are identical
// for all of them. The stored indices are exactly the indices the
// per-call scans visited, in the same order, so the sweep below folds
// the same doubles through the same max/min chain — bit-identical
// solvability, b, and headroom.
struct ExactSweepContext {
  std::size_t margin_length = 0;  // == series.length(), the padded margin size
  std::vector<std::size_t> forbidden;  // i >= 1 with allowed[i] == 0
  std::vector<std::pair<std::size_t, std::size_t>> region_bounds;  // [lo, hi)
};

ExactSweepContext BuildSweepContext(const LabeledSeries& series,
                                    std::size_t slop) {
  ExactSweepContext ctx;
  ctx.margin_length = series.length();
  const std::vector<uint8_t> allowed = AllowedMask(series, slop);
  for (std::size_t i = 1; i < allowed.size(); ++i) {  // index 0 is padding
    if (!allowed[i]) ctx.forbidden.push_back(i);
  }
  for (const AnomalyRegion& r : series.anomalies()) {
    const std::size_t lo = std::max<std::size_t>(1, r.begin > slop
                                                        ? r.begin - slop
                                                        : 0);
    const std::size_t hi = std::min(series.length(), r.end + slop);
    ctx.region_bounds.emplace_back(lo, hi);
  }
  return ctx;
}

// ExactBSweep over the precomputed context; see ExactBSweep for the
// semantics of each step.
bool ExactBSweepWithContext(const ExactSweepContext& ctx,
                            const std::vector<double>& margin, double* b_out,
                            double* headroom_out) {
  if (ctx.region_bounds.empty()) return false;  // no labeled anomalies
  if (ctx.forbidden.empty()) return false;      // degenerate full coverage

  double forbidden_max = -std::numeric_limits<double>::infinity();
  for (std::size_t i : ctx.forbidden) {
    forbidden_max = std::max(forbidden_max, margin[i]);
  }

  double weakest_region = std::numeric_limits<double>::infinity();
  for (const auto& [lo, hi] : ctx.region_bounds) {
    double region_best = -std::numeric_limits<double>::infinity();
    for (std::size_t i = lo; i < hi; ++i) {
      region_best = std::max(region_best, margin[i]);
    }
    weakest_region = std::min(weakest_region, region_best);
  }

  if (!(weakest_region > forbidden_max)) return false;
  const double b = 0.5 * (weakest_region + forbidden_max);
  if (b_out != nullptr) *b_out = b;
  if (headroom_out != nullptr) {
    double margin_min = std::numeric_limits<double>::infinity();
    double margin_max = -std::numeric_limits<double>::infinity();
    for (std::size_t i = 1; i < margin.size(); ++i) {
      margin_min = std::min(margin_min, margin[i]);
      margin_max = std::max(margin_max, margin[i]);
    }
    const double range = std::max(1e-12, margin_max - margin_min);
    *headroom_out = (weakest_region - forbidden_max) / range;
  }
  return true;
}

// The memoized grid search for one form: margins come from the shared
// OneLinerMarginCache (diff tracks and per-k windows computed once for
// the whole grid) and the b sweep from the shared context. Candidate
// order, early exit, and best-selection are exactly SolveWithFormDirect.
TrivialitySolution SolveWithFormCached(const LabeledSeries& series,
                                       const ExactSweepContext& ctx,
                                       OneLinerMarginCache& cache,
                                       OneLinerForm form,
                                       const OneLinerSearchSpace& space,
                                       const SolveCriteria& criteria) {
  TrivialitySolution best;
  if (series.length() < 3) return best;

  const bool use_abs =
      form == OneLinerForm::kEq3 || form == OneLinerForm::kEq4;
  const bool adaptive =
      form == OneLinerForm::kEq4 || form == OneLinerForm::kEq6;

  auto consider = [&](const OneLinerParams& base) {
    OneLinerParams zero_b = base;
    zero_b.b = 0.0;
    const std::vector<double> margin = cache.Margin(zero_b);
    double b = 0.0, headroom = 0.0;
    if (!ExactBSweepWithContext(ctx, margin, &b, &headroom)) return;
    if (headroom < criteria.min_headroom) return;
    if (!best.solved || headroom > best.headroom) {
      best.solved = true;
      best.params = base;
      best.params.b = b;
      best.headroom = headroom;
    }
  };

  if (!adaptive) {
    OneLinerParams p;
    p.use_abs = use_abs;
    p.use_movmean = false;
    p.c = 0.0;
    consider(p);
    return best;
  }

  for (std::size_t k : space.ks) {
    for (double c : space.cs) {
      OneLinerParams p;
      p.use_abs = use_abs;
      p.use_movmean = true;
      p.k = k;
      p.c = c;
      consider(p);
      if (best.solved && best.headroom > 0.8) return best;  // good enough
    }
  }
  return best;
}

}  // namespace

bool FlagsSolve(const LabeledSeries& series, const std::vector<uint8_t>& flags,
                const SolveCriteria& criteria) {
  if (flags.size() != series.length()) return false;
  if (series.anomalies().empty()) return false;
  const std::vector<uint8_t> allowed = AllowedMask(series, criteria.slop);
  for (std::size_t i = 0; i < flags.size(); ++i) {
    if (flags[i] && !allowed[i]) return false;  // stray false positive
  }
  for (const AnomalyRegion& r : series.anomalies()) {
    const std::size_t lo = r.begin > criteria.slop ? r.begin - criteria.slop
                                                   : 0;
    const std::size_t hi = std::min(flags.size(), r.end + criteria.slop);
    bool hit = false;
    for (std::size_t i = lo; i < hi; ++i) {
      if (flags[i]) {
        hit = true;
        break;
      }
    }
    if (!hit) return false;  // region missed
  }
  return true;
}

TrivialitySolution SolveWithForm(const LabeledSeries& series,
                                 OneLinerForm form,
                                 const OneLinerSearchSpace& space,
                                 const SolveCriteria& criteria) {
  if (series.length() < 3) return {};
  const ExactSweepContext ctx = BuildSweepContext(series, criteria.slop);
  OneLinerMarginCache cache(series.values());
  return SolveWithFormCached(series, ctx, cache, form, space, criteria);
}

TrivialitySolution FindOneLiner(const LabeledSeries& series,
                                const OneLinerSearchSpace& space,
                                const SolveCriteria& criteria) {
  if (series.length() < 3) return {};
  // One context + margin cache serves all four forms: the (series,
  // slop) precomputation is form-independent, and the two lhs tracks
  // plus their per-k windows are shared between the threshold and the
  // adaptive form of each family.
  const ExactSweepContext ctx = BuildSweepContext(series, criteria.slop);
  OneLinerMarginCache cache(series.values());
  static constexpr OneLinerForm kOrder[] = {
      OneLinerForm::kEq3, OneLinerForm::kEq4, OneLinerForm::kEq5,
      OneLinerForm::kEq6};
  for (OneLinerForm form : kOrder) {
    TrivialitySolution s =
        SolveWithFormCached(series, ctx, cache, form, space, criteria);
    if (s.solved) return s;
  }
  return {};
}

TrivialitySolution SolveWithFormDirect(const LabeledSeries& series,
                                       OneLinerForm form,
                                       const OneLinerSearchSpace& space,
                                       const SolveCriteria& criteria) {
  TrivialitySolution best;
  if (series.length() < 3) return best;

  const bool use_abs =
      form == OneLinerForm::kEq3 || form == OneLinerForm::kEq4;
  const bool adaptive =
      form == OneLinerForm::kEq4 || form == OneLinerForm::kEq6;

  auto consider = [&](const OneLinerParams& base) {
    const std::vector<double> margin = MarginWithZeroB(series, base);
    double b = 0.0, headroom = 0.0;
    if (!ExactBSweep(series, margin, criteria.slop, &b, &headroom)) return;
    if (headroom < criteria.min_headroom) return;
    if (!best.solved || headroom > best.headroom) {
      best.solved = true;
      best.params = base;
      best.params.b = b;
      best.headroom = headroom;
    }
  };

  if (!adaptive) {
    OneLinerParams p;
    p.use_abs = use_abs;
    p.use_movmean = false;
    p.c = 0.0;
    consider(p);
    return best;
  }

  for (std::size_t k : space.ks) {
    for (double c : space.cs) {
      OneLinerParams p;
      p.use_abs = use_abs;
      p.use_movmean = true;
      p.k = k;
      p.c = c;
      consider(p);
      if (best.solved && best.headroom > 0.8) return best;  // good enough
    }
  }
  return best;
}

TrivialitySolution FindOneLinerDirect(const LabeledSeries& series,
                                      const OneLinerSearchSpace& space,
                                      const SolveCriteria& criteria) {
  // The paper's numbering order: simplified thresholds first within
  // each lhs family.
  static constexpr OneLinerForm kOrder[] = {
      OneLinerForm::kEq3, OneLinerForm::kEq4, OneLinerForm::kEq5,
      OneLinerForm::kEq6};
  for (OneLinerForm form : kOrder) {
    TrivialitySolution s = SolveWithFormDirect(series, form, space, criteria);
    if (s.solved) return s;
  }
  return {};
}

TrivialityReport AnalyzeTriviality(
    const std::vector<const BenchmarkDataset*>& datasets,
    const OneLinerSearchSpace& space, const SolveCriteria& criteria) {
  // The brute force is embarrassingly parallel per series: flatten the
  // (dataset, series) pairs, search them across the pool, then fold the
  // per-series solutions into the report serially and in order — the
  // report is bit-identical at every thread count.
  std::vector<const LabeledSeries*> flat;
  for (const BenchmarkDataset* dataset : datasets) {
    for (const LabeledSeries& s : dataset->series) flat.push_back(&s);
  }

  Result<std::vector<TrivialitySolution>> solutions =
      ParallelMap<TrivialitySolution>(
          flat.size(), [&](std::size_t i) -> Result<TrivialitySolution> {
            return FindOneLiner(*flat[i], space, criteria);
          });
  std::vector<TrivialitySolution> solved;
  if (solutions.ok()) {
    solved = std::move(*solutions);
  } else {
    // FindOneLiner cannot fail; only a contained worker exception (e.g.
    // bad_alloc) lands here. Recompute inline rather than report junk.
    solved.reserve(flat.size());
    for (const LabeledSeries* s : flat) {
      solved.push_back(FindOneLiner(*s, space, criteria));
    }
  }

  TrivialityReport report;
  std::size_t flat_index = 0;
  for (const BenchmarkDataset* dataset : datasets) {
    DatasetTriviality row;
    row.dataset_name = dataset->name;
    row.total = dataset->size();
    for (const LabeledSeries& s : dataset->series) {
      SeriesTriviality record;
      record.series_name = s.name();
      record.solution = solved[flat_index++];
      if (record.solution.solved) {
        ++row.solved;
        ++row.solved_by_form[static_cast<int>(record.solution.params.form())];
      }
      report.series.push_back(std::move(record));
    }
    report.total += row.total;
    report.solved += row.solved;
    report.datasets.push_back(std::move(row));
  }
  return report;
}

}  // namespace tsad
