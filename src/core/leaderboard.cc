#include "core/leaderboard.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <numeric>

#include "common/parallel.h"
#include "common/suggest.h"
#include "datasets/gait.h"
#include "datasets/nasa.h"
#include "datasets/numenta.h"
#include "datasets/omni.h"
#include "datasets/physio.h"
#include "datasets/yahoo.h"
#include "detectors/detector.h"
#include "detectors/registry.h"
#include "scoring/affiliation.h"
#include "scoring/confusion.h"
#include "scoring/delay.h"
#include "scoring/nab.h"
#include "scoring/point_adjust.h"
#include "scoring/range_pr.h"
#include "scoring/ucr_score.h"

namespace tsad {

namespace {

constexpr LeaderboardMetric kAllMetrics[kNumLeaderboardMetrics] = {
    LeaderboardMetric::kPointF1,       LeaderboardMetric::kPointAdjustF1,
    LeaderboardMetric::kRangePrF1,     LeaderboardMetric::kNab,
    LeaderboardMetric::kUcrSlop,       LeaderboardMetric::kAffiliationF1,
    LeaderboardMetric::kDelayF1,
};

constexpr LeaderboardFamily kAllFamilies[kNumLeaderboardFamilies] = {
    LeaderboardFamily::kYahoo, LeaderboardFamily::kNab,
    LeaderboardFamily::kNasa,  LeaderboardFamily::kOmni,
    LeaderboardFamily::kPhysio, LeaderboardFamily::kGait,
};

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

// Generic comma-list parser over a fixed name table, with the shared
// "did you mean" rejection.
template <typename Enum, std::size_t N>
Result<std::vector<Enum>> ParseNameList(const std::string& list,
                                        const Enum (&all)[N],
                                        std::string_view (*name_of)(Enum),
                                        const char* what) {
  std::vector<Enum> out;
  if (list.empty() || list == "all") {
    out.assign(all, all + N);
    return out;
  }
  std::vector<std::string> known;
  for (Enum e : all) known.emplace_back(name_of(e));
  std::size_t start = 0;
  while (start <= list.size()) {
    const std::size_t comma = list.find(',', start);
    const std::string token = list.substr(
        start, comma == std::string::npos ? std::string::npos : comma - start);
    if (!token.empty()) {
      bool found = false;
      for (Enum e : all) {
        if (token == name_of(e)) {
          if (std::find(out.begin(), out.end(), e) == out.end()) {
            out.push_back(e);
          }
          found = true;
          break;
        }
      }
      if (!found) {
        std::string message = "unknown " + std::string(what) + " '" + token +
                              "'; known:";
        for (const std::string& k : known) message += " " + k;
        const std::string suggestion = SuggestClosest(token, known);
        if (!suggestion.empty()) {
          message += "; did you mean '" + suggestion + "'?";
        }
        return Status::InvalidArgument(message);
      }
    }
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  if (out.empty()) {
    return Status::InvalidArgument(std::string("empty ") + what + " list");
  }
  return out;
}

// Assigns a training prefix to series that ship without one (quarter
// of the series, clipped to the first anomaly) so the semi-supervised
// detectors can compete on every family.
void EnsureTrainPrefix(LabeledSeries* series) {
  if (series->train_length() > 0 || series->length() == 0) return;
  std::size_t prefix = series->length() / 4;
  if (!series->anomalies().empty()) {
    prefix = std::min(prefix, series->anomalies().front().begin);
  }
  series->set_train_length(prefix);
}

// Cross-dimension mean of a multivariate machine: the univariate
// reduction that lets the (univariate) registry detectors run on the
// OMNI family while keeping its label track.
LabeledSeries ReduceToMean(const MultivariateSeries& machine) {
  const std::size_t n = machine.length();
  const std::size_t d = machine.num_dimensions();
  Series mean(n, 0.0);
  for (const Series& dim : machine.dimensions()) {
    for (std::size_t i = 0; i < n; ++i) mean[i] += dim[i];
  }
  if (d > 0) {
    for (std::size_t i = 0; i < n; ++i) mean[i] /= static_cast<double>(d);
  }
  return LabeledSeries(machine.name(), std::move(mean), machine.anomalies(),
                       machine.train_length());
}

// One detector's full metric row for one series, or ok=false when the
// detector refused the series.
struct SeriesEval {
  bool ok = false;
  std::vector<double> values;
};

SeriesEval ScoreOneSeries(const std::string& spec, const LabeledSeries& series,
                          const std::vector<LeaderboardMetric>& metrics,
                          std::size_t delay_tolerance) {
  SeriesEval eval;
  Result<std::unique_ptr<AnomalyDetector>> detector = MakeDetector(spec);
  if (!detector.ok()) return eval;
  Result<std::vector<double>> scored = (*detector)->Score(series);
  if (!scored.ok()) return eval;

  // Defensive: a NaN in a score track would poison the threshold sort.
  std::vector<double> scores = std::move(*scored);
  for (double& s : scores) {
    if (std::isnan(s)) s = -std::numeric_limits<double>::infinity();
  }

  const std::size_t n = series.length();
  const std::vector<uint8_t> labels = series.BinaryLabels();
  const std::vector<AnomalyRegion>& anomalies = series.anomalies();

  // Thresholded protocols share one density-matched threshold: admit
  // as many points as the ground truth labels anomalous (the "oracle
  // contamination" rule — the same omniscient favor for every metric,
  // so differences between columns come from the protocols, not the
  // thresholding).
  std::size_t positives = 0;
  for (uint8_t l : labels) positives += l != 0 ? 1 : 0;
  std::vector<uint8_t> predictions(n, 0);
  if (positives > 0 && n > 0) {
    std::vector<double> sorted = scores;
    std::nth_element(sorted.begin(),
                     sorted.begin() + static_cast<std::ptrdiff_t>(positives - 1),
                     sorted.end(), std::greater<>());
    const double threshold = sorted[positives - 1];
    for (std::size_t i = 0; i < n; ++i) {
      predictions[i] = scores[i] >= threshold ? 1 : 0;
    }
  }
  const std::vector<AnomalyRegion> predicted = RegionsFromBinary(predictions);

  eval.values.reserve(metrics.size());
  for (LeaderboardMetric metric : metrics) {
    double value = kNan;
    switch (metric) {
      case LeaderboardMetric::kPointF1: {
        Result<BestF1> best = BestF1OverThresholds(labels, scores);
        if (best.ok()) value = best->f1;
        break;
      }
      case LeaderboardMetric::kPointAdjustF1: {
        Result<BestF1> best = BestPointAdjustedF1(labels, scores);
        if (best.ok()) value = best->f1;
        break;
      }
      case LeaderboardMetric::kRangePrF1:
        value = ComputeRangePr(anomalies, predicted).f1;
        break;
      case LeaderboardMetric::kNab: {
        std::vector<std::size_t> detections;
        for (const AnomalyRegion& p : predicted) detections.push_back(p.begin);
        Result<NabScore> nab = ComputeNabScore(anomalies, detections, n);
        if (nab.ok()) value = nab->normalized / 100.0;
        break;
      }
      case LeaderboardMetric::kUcrSlop: {
        const std::size_t peak = PredictLocation(scores, series.train_length());
        value = 0.0;
        if (peak != kNoPrediction) {
          for (const AnomalyRegion& a : anomalies) {
            if (UcrCorrect(a, peak)) {
              value = 1.0;
              break;
            }
          }
        }
        break;
      }
      case LeaderboardMetric::kAffiliationF1: {
        Result<AffiliationScore> aff = ComputeAffiliation(anomalies, predicted, n);
        if (aff.ok()) value = aff->f1;
        break;
      }
      case LeaderboardMetric::kDelayF1: {
        DelayConfig config;
        config.tolerance = delay_tolerance;
        Result<DelayScore> delay = ComputeDelayScore(anomalies, predicted, n, config);
        if (delay.ok()) value = delay->f1;
        break;
      }
    }
    eval.values.push_back(value);
  }
  eval.ok = true;
  return eval;
}

std::string FormatDouble(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

void AppendJsonString(std::string* out, std::string_view s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

}  // namespace

std::string_view LeaderboardMetricName(LeaderboardMetric metric) {
  switch (metric) {
    case LeaderboardMetric::kPointF1:
      return "point_f1";
    case LeaderboardMetric::kPointAdjustF1:
      return "point_adjust_f1";
    case LeaderboardMetric::kRangePrF1:
      return "range_pr_f1";
    case LeaderboardMetric::kNab:
      return "nab";
    case LeaderboardMetric::kUcrSlop:
      return "ucr_slop";
    case LeaderboardMetric::kAffiliationF1:
      return "affiliation_f1";
    case LeaderboardMetric::kDelayF1:
      return "delay_f1";
  }
  return "?";
}

Result<std::vector<LeaderboardMetric>> ParseLeaderboardMetrics(
    const std::string& list) {
  return ParseNameList(list, kAllMetrics, &LeaderboardMetricName, "metric");
}

std::string_view LeaderboardFamilyName(LeaderboardFamily family) {
  switch (family) {
    case LeaderboardFamily::kYahoo:
      return "yahoo";
    case LeaderboardFamily::kNab:
      return "nab";
    case LeaderboardFamily::kNasa:
      return "nasa";
    case LeaderboardFamily::kOmni:
      return "omni";
    case LeaderboardFamily::kPhysio:
      return "physio";
    case LeaderboardFamily::kGait:
      return "gait";
  }
  return "?";
}

Result<std::vector<LeaderboardFamily>> ParseLeaderboardFamilies(
    const std::string& list) {
  return ParseNameList(list, kAllFamilies, &LeaderboardFamilyName, "family");
}

std::vector<std::string> DefaultLeaderboardDetectors() {
  std::vector<std::string> specs = RegisteredDetectorNames();
  const std::size_t base = specs.size();
  specs.reserve(2 * base);
  for (std::size_t i = 0; i < base; ++i) {
    specs.push_back("resilient:" + specs[i]);
  }
  return specs;
}

std::vector<LabeledSeries> BuildLeaderboardFamily(LeaderboardFamily family,
                                                  uint64_t seed,
                                                  std::size_t max_series) {
  std::vector<LabeledSeries> out;
  const std::size_t cap =
      max_series == 0 ? std::numeric_limits<std::size_t>::max() : max_series;
  switch (family) {
    case LeaderboardFamily::kYahoo: {
      YahooConfig config;
      config.seed = seed;
      if (max_series > 0) {
        // Generating only what the cap can use keeps small boards
        // cheap; stratification below still sees all four benchmarks.
        const std::size_t per = (max_series + 3) / 4;
        config.a1_count = std::min(config.a1_count, per);
        config.a2_count = std::min(config.a2_count, per);
        config.a3_count = std::min(config.a3_count, per);
        config.a4_count = std::min(config.a4_count, per);
      }
      const YahooArchive archive = GenerateYahooArchive(config);
      // Round-robin across A1..A4 so a small cap still spans the
      // benchmarks' distinct anomaly morphologies.
      const std::vector<const BenchmarkDataset*> sets = archive.all();
      for (std::size_t i = 0; out.size() < cap; ++i) {
        bool any = false;
        for (const BenchmarkDataset* set : sets) {
          if (i < set->series.size() && out.size() < cap) {
            out.push_back(set->series[i]);
            any = true;
          }
        }
        if (!any) break;
      }
      break;
    }
    case LeaderboardFamily::kNab: {
      NumentaConfig config;
      config.seed = seed;
      BenchmarkDataset dataset = GenerateNumentaDataset(config);
      for (LabeledSeries& s : dataset.series) {
        if (out.size() >= cap) break;
        out.push_back(std::move(s));
      }
      break;
    }
    case LeaderboardFamily::kNasa: {
      NasaConfig config;
      config.seed = seed;
      NasaArchive archive = GenerateNasaArchive(config);
      for (LabeledSeries& s : archive.channels.series) {
        if (out.size() >= cap) break;
        out.push_back(std::move(s));
      }
      break;
    }
    case LeaderboardFamily::kOmni: {
      OmniConfig config;
      config.seed = seed;
      if (max_series > 0) {
        config.num_machines = std::min(config.num_machines, max_series);
      }
      const OmniArchive archive = GenerateOmniArchive(config);
      for (const MultivariateSeries& machine : archive.machines) {
        if (out.size() >= cap) break;
        out.push_back(ReduceToMean(machine));
      }
      break;
    }
    case LeaderboardFamily::kPhysio: {
      PhysioConfig config;
      config.seed = seed;
      config.duration_sec = 30.0;  // 6000 points keeps the board tractable
      if (out.size() < cap) out.push_back(GenerateEcgWithPvc(config));
      if (out.size() < cap) {
        EcgPlethPair pair = GenerateBidmcPair(config, /*train_length=*/1500);
        out.push_back(std::move(pair.pleth));
        if (out.size() < cap) out.push_back(std::move(pair.ecg));
      }
      break;
    }
    case LeaderboardFamily::kGait: {
      const std::size_t count = std::min<std::size_t>(cap, 3);
      for (std::size_t i = 0; i < count; ++i) {
        GaitConfig config;
        config.seed = seed + 7 * i;
        config.num_cycles = 36;  // ~8.3k points
        config.train_cycles = 18;
        out.push_back(GenerateGaitData(config).series);
      }
      break;
    }
  }
  for (LabeledSeries& s : out) EnsureTrainPrefix(&s);
  return out;
}

Result<LeaderboardReport> RunLeaderboard(const LeaderboardConfig& config) {
  LeaderboardReport report;
  report.seed = config.seed;
  report.delay_tolerance = config.delay_tolerance;
  report.metrics = config.metrics;
  if (report.metrics.empty()) {
    report.metrics.assign(kAllMetrics, kAllMetrics + kNumLeaderboardMetrics);
  }
  std::vector<LeaderboardFamily> families = config.families;
  if (families.empty()) {
    families.assign(kAllFamilies, kAllFamilies + kNumLeaderboardFamilies);
  }
  for (LeaderboardFamily f : families) {
    report.families.emplace_back(LeaderboardFamilyName(f));
  }
  report.detectors = config.detectors.empty() ? DefaultLeaderboardDetectors()
                                              : config.detectors;

  // Fail fast on a bad spec (with the registry's "did you mean"),
  // before any series is generated or scored.
  for (const std::string& spec : report.detectors) {
    Result<std::unique_ptr<AnomalyDetector>> probe = MakeDetector(spec);
    if (!probe.ok()) return probe.status();
  }

  std::vector<std::vector<LabeledSeries>> family_series;
  family_series.reserve(families.size());
  for (LeaderboardFamily f : families) {
    family_series.push_back(
        BuildLeaderboardFamily(f, config.seed, config.max_series_per_family));
  }

  // Flatten to (detector, family, series) triples — the one sweep.
  struct Triple {
    std::size_t detector, family, series;
  };
  std::vector<Triple> triples;
  for (std::size_t d = 0; d < report.detectors.size(); ++d) {
    for (std::size_t f = 0; f < families.size(); ++f) {
      for (std::size_t s = 0; s < family_series[f].size(); ++s) {
        triples.push_back({d, f, s});
      }
    }
  }

  TSAD_ASSIGN_OR_RETURN(
      const std::vector<SeriesEval> evals,
      ParallelMap<SeriesEval>(triples.size(), [&](std::size_t i) -> Result<SeriesEval> {
        const Triple& t = triples[i];
        return ScoreOneSeries(report.detectors[t.detector],
                              family_series[t.family][t.series],
                              report.metrics, config.delay_tolerance);
      }));

  // Aggregate into (detector, family) cells in triple order — index-
  // deterministic, so the report is identical at any thread count.
  const std::size_t num_families = families.size();
  report.cells.resize(report.detectors.size() * num_families);
  std::vector<std::vector<double>> sums(report.cells.size());
  for (std::size_t c = 0; c < report.cells.size(); ++c) {
    LeaderboardCell& cell = report.cells[c];
    cell.detector = report.detectors[c / num_families];
    cell.family = report.families[c % num_families];
    sums[c].assign(report.metrics.size(), 0.0);
  }
  for (std::size_t i = 0; i < triples.size(); ++i) {
    const Triple& t = triples[i];
    const std::size_t c = t.detector * num_families + t.family;
    if (!evals[i].ok) {
      ++report.cells[c].detector_errors;
      continue;
    }
    ++report.cells[c].series_scored;
    for (std::size_t m = 0; m < report.metrics.size(); ++m) {
      sums[c][m] += evals[i].values[m];
    }
  }
  for (std::size_t c = 0; c < report.cells.size(); ++c) {
    LeaderboardCell& cell = report.cells[c];
    cell.values.assign(report.metrics.size(), kNan);
    if (cell.series_scored > 0) {
      for (std::size_t m = 0; m < report.metrics.size(); ++m) {
        cell.values[m] = sums[c][m] / static_cast<double>(cell.series_scored);
      }
    }
  }

  report.inversions =
      ComputeRankInversions(report.cells, report.detectors, report.families,
                            report.metrics, &report.total_discordant_pairs);
  return report;
}

std::vector<RankInversionStat> ComputeRankInversions(
    const std::vector<LeaderboardCell>& cells,
    const std::vector<std::string>& detectors,
    const std::vector<std::string>& families,
    const std::vector<LeaderboardMetric>& metrics, std::size_t* total) {
  std::vector<RankInversionStat> stats;
  if (total != nullptr) *total = 0;
  std::size_t pa_index = metrics.size();
  for (std::size_t m = 0; m < metrics.size(); ++m) {
    if (metrics[m] == LeaderboardMetric::kPointAdjustF1) pa_index = m;
  }
  if (pa_index == metrics.size()) return stats;

  for (std::size_t f = 0; f < families.size(); ++f) {
    for (std::size_t m = 0; m < metrics.size(); ++m) {
      if (m == pa_index) continue;
      RankInversionStat stat;
      stat.family = families[f];
      stat.metric = std::string(LeaderboardMetricName(metrics[m]));
      double best_margin = 0.0;
      for (std::size_t a = 0; a < detectors.size(); ++a) {
        for (std::size_t b = a + 1; b < detectors.size(); ++b) {
          const LeaderboardCell& ca = cells[a * families.size() + f];
          const LeaderboardCell& cb = cells[b * families.size() + f];
          const double pa_a = ca.values[pa_index], pa_b = cb.values[pa_index];
          const double m_a = ca.values[m], m_b = cb.values[m];
          if (std::isnan(pa_a) || std::isnan(pa_b) || std::isnan(m_a) ||
              std::isnan(m_b)) {
            continue;
          }
          const double pa_gap = pa_a - pa_b;
          const double metric_gap = m_a - m_b;
          if (pa_gap * metric_gap >= 0.0 || pa_gap == 0.0) continue;
          ++stat.discordant_pairs;
          // The "flattered" detector leads on point-adjust but trails
          // on the fair metric; keep the widest example.
          const std::size_t flattered = pa_gap > 0.0 ? a : b;
          const std::size_t robbed = pa_gap > 0.0 ? b : a;
          const double margin = std::abs(pa_gap) * std::abs(metric_gap);
          if (margin > best_margin) {
            best_margin = margin;
            stat.flattered = detectors[flattered];
            stat.robbed = detectors[robbed];
            const LeaderboardCell& cf = cells[flattered * families.size() + f];
            const LeaderboardCell& cr = cells[robbed * families.size() + f];
            stat.flattered_point_adjust = cf.values[pa_index];
            stat.flattered_value = cf.values[m];
            stat.robbed_point_adjust = cr.values[pa_index];
            stat.robbed_value = cr.values[m];
          }
        }
      }
      if (stat.discordant_pairs > 0) {
        if (total != nullptr) *total += stat.discordant_pairs;
        stats.push_back(std::move(stat));
      }
    }
  }
  return stats;
}

std::string LeaderboardJson(const LeaderboardReport& report) {
  std::string out = "{\n  \"leaderboard\": {\n";
  out += "    \"seed\": " + std::to_string(report.seed) + ",\n";
  out += "    \"delay_tolerance\": " + std::to_string(report.delay_tolerance) +
         ",\n";
  const auto append_name_array = [&out](const char* key, const auto& names,
                                        const auto& to_name) {
    out += std::string("    \"") + key + "\": [";
    for (std::size_t i = 0; i < names.size(); ++i) {
      if (i > 0) out += ", ";
      AppendJsonString(&out, to_name(names[i]));
    }
    out += "],\n";
  };
  append_name_array("detectors", report.detectors,
                    [](const std::string& s) -> std::string_view { return s; });
  append_name_array("families", report.families,
                    [](const std::string& s) -> std::string_view { return s; });
  append_name_array("metrics", report.metrics, [](LeaderboardMetric m) {
    return LeaderboardMetricName(m);
  });

  out += "    \"cells\": [\n";
  for (std::size_t c = 0; c < report.cells.size(); ++c) {
    const LeaderboardCell& cell = report.cells[c];
    out += "      {\"detector\": ";
    AppendJsonString(&out, cell.detector);
    out += ", \"family\": ";
    AppendJsonString(&out, cell.family);
    out += ", \"series_scored\": " + std::to_string(cell.series_scored);
    out += ", \"detector_errors\": " + std::to_string(cell.detector_errors);
    out += ", \"values\": {";
    for (std::size_t m = 0; m < report.metrics.size(); ++m) {
      if (m > 0) out += ", ";
      AppendJsonString(&out, LeaderboardMetricName(report.metrics[m]));
      out += ": ";
      out += std::isnan(cell.values[m]) ? "null" : FormatDouble(cell.values[m]);
    }
    out += "}}";
    out += c + 1 < report.cells.size() ? ",\n" : "\n";
  }
  out += "    ],\n";

  out += "    \"rank_inversions\": {\n";
  out += "      \"total_discordant_pairs\": " +
         std::to_string(report.total_discordant_pairs) + ",\n";
  out += "      \"stats\": [\n";
  for (std::size_t i = 0; i < report.inversions.size(); ++i) {
    const RankInversionStat& stat = report.inversions[i];
    out += "        {\"family\": ";
    AppendJsonString(&out, stat.family);
    out += ", \"metric\": ";
    AppendJsonString(&out, stat.metric);
    out += ", \"discordant_pairs\": " + std::to_string(stat.discordant_pairs);
    out += ", \"flattered\": ";
    AppendJsonString(&out, stat.flattered);
    out += ", \"flattered_point_adjust_f1\": " +
           FormatDouble(stat.flattered_point_adjust);
    out += ", \"flattered_value\": " + FormatDouble(stat.flattered_value);
    out += ", \"robbed\": ";
    AppendJsonString(&out, stat.robbed);
    out += ", \"robbed_point_adjust_f1\": " +
           FormatDouble(stat.robbed_point_adjust);
    out += ", \"robbed_value\": " + FormatDouble(stat.robbed_value);
    out += "}";
    out += i + 1 < report.inversions.size() ? ",\n" : "\n";
  }
  out += "      ]\n    }\n  }\n}\n";
  return out;
}

std::string FormatLeaderboardTable(const LeaderboardReport& report) {
  std::string out;
  char buf[256];
  std::size_t pa_index = 0;  // sort column: point-adjust when present
  for (std::size_t m = 0; m < report.metrics.size(); ++m) {
    if (report.metrics[m] == LeaderboardMetric::kPointAdjustF1) pa_index = m;
  }

  for (std::size_t f = 0; f < report.families.size(); ++f) {
    std::snprintf(buf, sizeof(buf), "\n== family: %s ==\n",
                  report.families[f].c_str());
    out += buf;
    std::snprintf(buf, sizeof(buf), "%-28s", "detector");
    out += buf;
    for (LeaderboardMetric m : report.metrics) {
      std::snprintf(buf, sizeof(buf), " %15s",
                    std::string(LeaderboardMetricName(m)).c_str());
      out += buf;
    }
    out += "\n";

    // Detectors in the flattering order: point-adjust F1 descending
    // (NaN cells sink; ties keep registration order).
    std::vector<std::size_t> order(report.detectors.size());
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                       const double va =
                           report.cells[a * report.families.size() + f]
                               .values[pa_index];
                       const double vb =
                           report.cells[b * report.families.size() + f]
                               .values[pa_index];
                       if (std::isnan(vb)) return !std::isnan(va);
                       if (std::isnan(va)) return false;
                       return va > vb;
                     });
    for (std::size_t d : order) {
      const LeaderboardCell& cell = report.cells[d * report.families.size() + f];
      std::snprintf(buf, sizeof(buf), "%-28s", cell.detector.c_str());
      out += buf;
      for (std::size_t m = 0; m < report.metrics.size(); ++m) {
        if (std::isnan(cell.values[m])) {
          std::snprintf(buf, sizeof(buf), " %15s", "--");
        } else {
          std::snprintf(buf, sizeof(buf), " %15.3f", cell.values[m]);
        }
        out += buf;
      }
      if (cell.detector_errors > 0) {
        std::snprintf(buf, sizeof(buf), "  (%zu series errored)",
                      cell.detector_errors);
        out += buf;
      }
      out += "\n";
    }
  }

  std::snprintf(buf, sizeof(buf),
                "\nrank inversions vs point_adjust_f1: %zu discordant "
                "pair(s) across %zu (family, metric) cell(s)\n",
                report.total_discordant_pairs, report.inversions.size());
  out += buf;
  for (const RankInversionStat& stat : report.inversions) {
    std::snprintf(buf, sizeof(buf),
                  "  [%s/%s] %zu pair(s); point-adjust flatters %s "
                  "(pa %.3f, %s %.3f) over %s (pa %.3f, %s %.3f)\n",
                  stat.family.c_str(), stat.metric.c_str(),
                  stat.discordant_pairs, stat.flattered.c_str(),
                  stat.flattered_point_adjust, stat.metric.c_str(),
                  stat.flattered_value, stat.robbed.c_str(),
                  stat.robbed_point_adjust, stat.metric.c_str(),
                  stat.robbed_value);
    out += buf;
  }
  return out;
}

}  // namespace tsad
