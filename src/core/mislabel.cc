#include "core/mislabel.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/stats.h"
#include "substrates/matrix_profile.h"
#include "substrates/sliding_window.h"

namespace tsad {

namespace {

// True if subsequence [pos, pos+m) stays clear of every labeled region
// by at least `margin` points.
bool ClearOfLabels(const LabeledSeries& series, std::size_t pos,
                   std::size_t m, std::size_t margin) {
  const std::size_t lo = pos > margin ? pos - margin : 0;
  const std::size_t hi = pos + m + margin;
  for (const AnomalyRegion& r : series.anomalies()) {
    if (lo < r.end && r.begin < hi) return false;
  }
  return true;
}

}  // namespace

std::string_view MislabelKindName(MislabelKind kind) {
  switch (kind) {
    case MislabelKind::kUnlabeledTwin:
      return "unlabeled-twin";
    case MislabelKind::kHalfLabeledConstant:
      return "half-labeled-constant";
    case MislabelKind::kLabelToggling:
      return "label-toggling";
    case MislabelKind::kDuplicateSeries:
      return "duplicate-series";
  }
  return "?";
}

std::vector<MislabelFinding> FindUnlabeledTwins(
    const LabeledSeries& series, const TwinSearchConfig& config) {
  std::vector<MislabelFinding> findings;
  const Series& x = series.values();

  for (const AnomalyRegion& r : series.anomalies()) {
    const std::size_t m = std::max(config.min_window, r.length());
    if (m < 4 || m * 2 > x.size()) continue;
    // Center the window on the labeled region.
    std::size_t start = r.begin;
    if (m > r.length()) {
      const std::size_t extra = (m - r.length()) / 2;
      start = r.begin > extra ? r.begin - extra : 0;
    }
    if (start + m > x.size()) start = x.size() - m;

    const std::vector<double> profile =
        MassDistanceProfile(x, Subsequence(x, start, m));
    if (profile.empty()) continue;
    const double median_dist = Median(std::vector<double>(profile));
    if (median_dist <= 1e-12) continue;  // degenerate (constant series)
    const double max_distance = std::sqrt(2.0 * static_cast<double>(m));
    const double threshold = std::min(config.ratio * median_dist,
                                      config.identity_cap * max_distance);

    // Scan for matches clear of all labels; keep local minima and
    // suppress neighbors within m points.
    struct Match {
      std::size_t position;
      double distance;
    };
    std::vector<Match> matches;
    std::size_t i = 0;
    while (i < profile.size()) {
      if (profile[i] < threshold &&
          ClearOfLabels(series, i, m, config.exclusion_margin)) {
        // Refine to the local minimum of this match.
        std::size_t best = i;
        std::size_t j = i;
        while (j < profile.size() && j < i + m) {
          if (profile[j] < profile[best] &&
              ClearOfLabels(series, j, m, config.exclusion_margin)) {
            best = j;
          }
          ++j;
        }
        matches.push_back({best, profile[best]});
        i = j;
      } else {
        ++i;
      }
    }
    // Emit the closest max_per_region matches; note how many more exist.
    std::sort(matches.begin(), matches.end(),
              [](const Match& a, const Match& b) {
                return a.distance < b.distance;
              });
    const std::size_t emit = std::min(matches.size(), config.max_per_region);
    for (std::size_t k = 0; k < emit; ++k) {
      MislabelFinding f;
      f.kind = MislabelKind::kUnlabeledTwin;
      f.series_name = series.name();
      f.position = matches[k].position;
      f.distance = matches[k].distance;
      f.reference_distance = median_dist;
      f.proposed = {matches[k].position, matches[k].position + m};
      f.detail = "subsequence at " + std::to_string(matches[k].position) +
                 " matches the labeled anomaly at [" +
                 std::to_string(r.begin) + ", " + std::to_string(r.end) +
                 ") with distance " + std::to_string(matches[k].distance) +
                 " (median " + std::to_string(median_dist) + ")";
      if (k + 1 == emit && matches.size() > emit) {
        f.detail += "; " + std::to_string(matches.size() - emit) +
                    " further match(es) suppressed";
      }
      findings.push_back(std::move(f));
    }
  }
  return findings;
}

std::vector<MislabelFinding> AuditConstantRuns(
    const LabeledSeries& series, const ConstantRunAuditConfig& config) {
  std::vector<MislabelFinding> findings;
  const auto runs =
      FindConstantRuns(series.values(), config.min_run, config.tolerance);
  for (const auto& [begin, end] : runs) {
    std::size_t labeled = 0;
    for (std::size_t i = begin; i < end; ++i) {
      if (series.IsAnomalous(i)) ++labeled;
    }
    const std::size_t run_len = end - begin;
    if (labeled == 0 || labeled == run_len) continue;  // consistent
    MislabelFinding f;
    f.kind = MislabelKind::kHalfLabeledConstant;
    f.series_name = series.name();
    // Focal point: the first unlabeled point of the run.
    for (std::size_t i = begin; i < end; ++i) {
      if (!series.IsAnomalous(i)) {
        f.position = i;
        break;
      }
    }
    f.proposed = {begin, end};
    f.detail = "constant run [" + std::to_string(begin) + ", " +
               std::to_string(end) + ") has " + std::to_string(labeled) +
               "/" + std::to_string(run_len) +
               " points labeled; nothing changes within the run";
    findings.push_back(std::move(f));
  }
  return findings;
}

std::vector<MislabelFinding> AuditLabelToggling(
    const LabeledSeries& series, const TogglingAuditConfig& config) {
  std::vector<MislabelFinding> findings;
  const auto& regions = series.anomalies();
  std::size_t i = 0;
  while (i < regions.size()) {
    // Grow a chain of regions separated by gaps <= max_gap.
    std::size_t j = i;
    while (j + 1 < regions.size() &&
           regions[j + 1].begin - regions[j].end <= config.max_gap) {
      ++j;
    }
    const std::size_t chain = j - i + 1;
    if (chain >= config.min_regions) {
      MislabelFinding f;
      f.kind = MislabelKind::kLabelToggling;
      f.series_name = series.name();
      f.position = regions[i].begin;
      f.proposed = {regions[i].begin, regions[j].end};
      f.detail = std::to_string(chain) +
                 " labeled regions toggle with gaps <= " +
                 std::to_string(config.max_gap) +
                 "; propose the single region [" +
                 std::to_string(f.proposed.begin) + ", " +
                 std::to_string(f.proposed.end) + ")";
      findings.push_back(std::move(f));
    }
    i = j + 1;
  }
  return findings;
}

std::vector<MislabelFinding> FindDuplicateSeries(
    const BenchmarkDataset& dataset, double correlation_threshold) {
  std::vector<MislabelFinding> findings;
  for (std::size_t a = 0; a < dataset.series.size(); ++a) {
    for (std::size_t b = a + 1; b < dataset.series.size(); ++b) {
      const Series& xa = dataset.series[a].values();
      const Series& xb = dataset.series[b].values();
      const std::size_t n = std::min(xa.size(), xb.size());
      if (n < 16) continue;
      const Series ta(xa.begin(), xa.begin() + static_cast<std::ptrdiff_t>(n));
      const Series tb(xb.begin(), xb.begin() + static_cast<std::ptrdiff_t>(n));
      const double r = PearsonCorrelation(ta, tb);
      if (std::fabs(r) >= correlation_threshold) {
        MislabelFinding f;
        f.kind = MislabelKind::kDuplicateSeries;
        f.series_name = dataset.series[a].name();
        f.distance = 1.0 - std::fabs(r);
        f.detail = "series '" + dataset.series[a].name() + "' and '" +
                   dataset.series[b].name() +
                   "' are near-duplicates (|r| = " + std::to_string(r) + ")";
        findings.push_back(std::move(f));
      }
    }
  }
  return findings;
}

std::vector<MislabelFinding> AuditDatasetLabels(
    const BenchmarkDataset& dataset, const MislabelAuditConfig& config) {
  std::vector<MislabelFinding> findings;
  for (const LabeledSeries& s : dataset.series) {
    if (config.run_twin_search) {
      auto twins = FindUnlabeledTwins(s, config.twins);
      findings.insert(findings.end(), twins.begin(), twins.end());
    }
    auto constant = AuditConstantRuns(s, config.constant_runs);
    findings.insert(findings.end(), constant.begin(), constant.end());
    auto toggling = AuditLabelToggling(s, config.toggling);
    findings.insert(findings.end(), toggling.begin(), toggling.end());
  }
  auto duplicates =
      FindDuplicateSeries(dataset, config.duplicate_correlation);
  findings.insert(findings.end(), duplicates.begin(), duplicates.end());
  return findings;
}

}  // namespace tsad
