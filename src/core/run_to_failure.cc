#include "core/run_to_failure.h"

#include <algorithm>
#include <cmath>

#include "common/stats.h"

namespace tsad {

RunToFailureReport AnalyzeRunToFailure(const BenchmarkDataset& dataset,
                                       const RunToFailureConfig& config) {
  RunToFailureReport report;
  report.dataset_name = dataset.name;

  std::size_t last_point_hits = 0, scored = 0;
  for (const LabeledSeries& s : dataset.series) {
    if (s.anomalies().empty() || s.length() < 2) continue;
    ++scored;
    const AnomalyRegion& last = s.anomalies().back();
    const double rel = static_cast<double>(last.begin) /
                       static_cast<double>(s.length() - 1);
    report.last_anomaly_positions.push_back(rel);
    const std::size_t decile =
        std::min<std::size_t>(9, static_cast<std::size_t>(rel * 10.0));
    ++report.decile_counts[decile];

    // Would flagging the very last point count as a detection?
    const std::size_t final_index = s.length() - 1;
    const std::size_t hi = last.end + config.last_point_slop;
    const std::size_t lo = last.begin > config.last_point_slop
                               ? last.begin - config.last_point_slop
                               : 0;
    if (final_index >= lo && final_index < hi) ++last_point_hits;
  }
  report.num_series = scored;
  if (scored == 0) return report;

  report.mean_position = Mean(report.last_anomaly_positions);
  std::size_t last_quintile = 0;
  for (double p : report.last_anomaly_positions) {
    if (p >= 0.8) ++last_quintile;
  }
  report.fraction_in_last_quintile =
      static_cast<double>(last_quintile) / static_cast<double>(scored);
  report.last_point_hit_rate =
      static_cast<double>(last_point_hits) / static_cast<double>(scored);

  // One-sample KS statistic vs Uniform(0,1).
  std::vector<double> sorted = report.last_anomaly_positions;
  std::sort(sorted.begin(), sorted.end());
  double ks = 0.0;
  const double n = static_cast<double>(sorted.size());
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    const double cdf = sorted[i];  // Uniform(0,1) CDF at the sample
    const double hi = static_cast<double>(i + 1) / n - cdf;
    const double lo = cdf - static_cast<double>(i) / n;
    ks = std::max({ks, hi, lo});
  }
  report.ks_statistic = ks;
  return report;
}

}  // namespace tsad
