// The unrealistic-anomaly-density analyzer (§2.3). Quantifies the three
// flavors the paper identifies:
//   1. huge contiguous labeled regions (NASA D-2/M-1/M-2: > 1/2 of the
//      test span; "another dozen or so" > 1/3),
//   2. many separate regions in a short span (SMD machine-2-5: 21),
//   3. labeled regions nearly adjacent (Yahoo: two anomalies
//      sandwiching a single normal point).

#ifndef TSAD_CORE_DENSITY_H_
#define TSAD_CORE_DENSITY_H_

#include <cstddef>
#include <limits>
#include <string>
#include <vector>

#include "common/series.h"

namespace tsad {

struct DensityStats {
  std::string series_name;
  std::size_t series_length = 0;
  std::size_t test_length = 0;  // length after the training prefix
  std::size_t num_regions = 0;
  std::size_t anomalous_points = 0;
  double anomaly_fraction = 0.0;        // of the test span
  double max_contiguous_fraction = 0.0; // largest region / test span
  /// Smallest normal gap between consecutive regions; SIZE_MAX when
  /// there are fewer than two regions.
  std::size_t min_gap = std::numeric_limits<std::size_t>::max();
};

DensityStats AnalyzeDensity(const LabeledSeries& series);

struct DensityThresholds {
  double contiguous_half = 0.5;
  double contiguous_third = 1.0 / 3.0;
  std::size_t many_regions = 10;
  std::size_t adjacent_gap = 2;  // regions this close are "adjacent"
};

/// Which density flaws a series exhibits.
struct DensityFlags {
  bool over_half_contiguous = false;
  bool over_third_contiguous = false;
  bool many_regions = false;
  bool adjacent_regions = false;
  /// The paper's ideal: exactly one anomaly (§2.3, "the ideal number of
  /// anomalies in a single testing time series is exactly one").
  bool ideal_single_anomaly = false;

  bool any_flaw() const {
    return over_half_contiguous || over_third_contiguous || many_regions ||
           adjacent_regions;
  }
};

DensityFlags ClassifyDensity(const DensityStats& stats,
                             const DensityThresholds& thresholds = {});

/// Archive-level census used by the density bench.
struct DensityCensus {
  std::string dataset_name;
  std::vector<DensityStats> stats;  // per series
  std::size_t over_half = 0;
  std::size_t over_third = 0;
  std::size_t many_regions = 0;
  std::size_t adjacent = 0;
  std::size_t single_anomaly = 0;
};

DensityCensus CensusDensity(const BenchmarkDataset& dataset,
                            const DensityThresholds& thresholds = {});

}  // namespace tsad

#endif  // TSAD_CORE_DENSITY_H_
