#include "core/benchmark_audit.h"

#include <sstream>

namespace tsad {

BenchmarkAudit AuditBenchmark(const BenchmarkDataset& dataset,
                              const AuditConfig& config) {
  BenchmarkAudit audit;
  audit.dataset_name = dataset.name;
  audit.triviality = AnalyzeTriviality({&dataset}, config.search_space,
                                       config.solve_criteria);
  audit.density = CensusDensity(dataset, config.density_thresholds);
  audit.mislabels = AuditDatasetLabels(dataset, config.mislabel);
  audit.run_to_failure =
      AnalyzeRunToFailure(dataset, config.run_to_failure);

  // Verdict assembly.
  const double trivial_fraction =
      audit.triviality.total == 0
          ? 0.0
          : static_cast<double>(audit.triviality.solved) /
                static_cast<double>(audit.triviality.total);
  if (trivial_fraction > config.triviality_verdict_threshold) {
    std::ostringstream r;
    r << "triviality: " << audit.triviality.solved << "/"
      << audit.triviality.total
      << " series solvable with a one-liner";
    audit.verdict_reasons.push_back(r.str());
  }
  if (!audit.mislabels.empty()) {
    audit.verdict_reasons.push_back(
        "mislabeled ground truth: " + std::to_string(audit.mislabels.size()) +
        " finding(s)");
  }
  const std::size_t density_flaws = audit.density.over_third +
                                    audit.density.many_regions +
                                    audit.density.adjacent;
  if (density_flaws > 0) {
    audit.verdict_reasons.push_back(
        "unrealistic density: " + std::to_string(density_flaws) +
        " series with density flaw(s)");
  }
  if (audit.run_to_failure.fraction_in_last_quintile >
      config.run_to_failure_quintile_threshold) {
    std::ostringstream r;
    r << "run-to-failure bias: "
      << static_cast<int>(100.0 *
                          audit.run_to_failure.fraction_in_last_quintile)
      << "% of last anomalies fall in the final quintile";
    audit.verdict_reasons.push_back(r.str());
  }
  audit.irretrievably_flawed = !audit.verdict_reasons.empty();
  return audit;
}

std::string FormatAudit(const BenchmarkAudit& audit) {
  std::ostringstream out;
  out << "=== Benchmark audit: " << audit.dataset_name << " ===\n";
  out << "Triviality: " << audit.triviality.solved << "/"
      << audit.triviality.total << " ("
      << audit.triviality.solved_percent() << "%) one-liner solvable\n";
  out << "Density: " << audit.density.over_half
      << " series >1/2 contiguous, " << audit.density.over_third
      << " >1/3, " << audit.density.many_regions << " with >=10 regions, "
      << audit.density.adjacent << " with adjacent regions, "
      << audit.density.single_anomaly << " with the ideal single anomaly\n";
  out << "Mislabels: " << audit.mislabels.size() << " finding(s)\n";
  for (const MislabelFinding& f : audit.mislabels) {
    out << "  [" << MislabelKindName(f.kind) << "] " << f.series_name << ": "
        << f.detail << "\n";
  }
  out << "Run-to-failure: mean last-anomaly position "
      << audit.run_to_failure.mean_position << ", "
      << 100.0 * audit.run_to_failure.fraction_in_last_quintile
      << "% in last quintile, naive last-point hit rate "
      << 100.0 * audit.run_to_failure.last_point_hit_rate << "%\n";
  out << "Verdict: "
      << (audit.irretrievably_flawed ? "IRRETRIEVABLY FLAWED" : "no flaw found")
      << "\n";
  for (const std::string& reason : audit.verdict_reasons) {
    out << "  - " << reason << "\n";
  }
  return out.str();
}

}  // namespace tsad
