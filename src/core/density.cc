#include "core/density.h"

#include <algorithm>

namespace tsad {

DensityStats AnalyzeDensity(const LabeledSeries& series) {
  DensityStats stats;
  stats.series_name = series.name();
  stats.series_length = series.length();
  stats.test_length = series.length() - std::min(series.length(),
                                                 series.train_length());
  stats.num_regions = series.anomalies().size();
  stats.anomalous_points = series.NumAnomalousPoints();
  if (stats.test_length > 0) {
    stats.anomaly_fraction = static_cast<double>(stats.anomalous_points) /
                             static_cast<double>(stats.test_length);
    std::size_t longest = 0;
    for (const AnomalyRegion& r : series.anomalies()) {
      longest = std::max(longest, r.length());
    }
    stats.max_contiguous_fraction =
        static_cast<double>(longest) / static_cast<double>(stats.test_length);
  }
  const auto& regions = series.anomalies();
  for (std::size_t i = 1; i < regions.size(); ++i) {
    const std::size_t gap = regions[i].begin - regions[i - 1].end;
    stats.min_gap = std::min(stats.min_gap, gap);
  }
  return stats;
}

DensityFlags ClassifyDensity(const DensityStats& stats,
                             const DensityThresholds& thresholds) {
  DensityFlags flags;
  flags.over_half_contiguous =
      stats.max_contiguous_fraction > thresholds.contiguous_half;
  flags.over_third_contiguous =
      stats.max_contiguous_fraction > thresholds.contiguous_third;
  flags.many_regions = stats.num_regions >= thresholds.many_regions;
  flags.adjacent_regions =
      stats.num_regions >= 2 && stats.min_gap <= thresholds.adjacent_gap;
  flags.ideal_single_anomaly = stats.num_regions == 1;
  return flags;
}

DensityCensus CensusDensity(const BenchmarkDataset& dataset,
                            const DensityThresholds& thresholds) {
  DensityCensus census;
  census.dataset_name = dataset.name;
  for (const LabeledSeries& s : dataset.series) {
    DensityStats stats = AnalyzeDensity(s);
    const DensityFlags flags = ClassifyDensity(stats, thresholds);
    if (flags.over_half_contiguous) ++census.over_half;
    if (flags.over_third_contiguous) ++census.over_third;
    if (flags.many_regions) ++census.many_regions;
    if (flags.adjacent_regions) ++census.adjacent;
    if (flags.ideal_single_anomaly) ++census.single_anomaly;
    census.stats.push_back(std::move(stats));
  }
  return census;
}

}  // namespace tsad
