#include "core/ucr_archive.h"

#include <algorithm>
#include <charconv>
#include <cmath>

#include "common/parallel.h"
#include "core/triviality.h"
#include "datasets/domains.h"
#include "datasets/gait.h"
#include "datasets/generators.h"
#include "datasets/physio.h"
#include "detectors/discord.h"

namespace tsad {

namespace {

constexpr std::string_view kPrefix = "UCR_Anomaly_";

bool ParseSizeT(std::string_view sv, std::size_t* out) {
  if (sv.empty()) return false;
  auto [ptr, ec] = std::from_chars(sv.data(), sv.data() + sv.size(), *out);
  return ec == std::errc() && ptr == sv.data() + sv.size();
}

}  // namespace

std::string FormatUcrName(const UcrName& name) {
  return std::string(kPrefix) + name.base + "_" +
         std::to_string(name.train_length) + "_" +
         std::to_string(name.anomaly_begin) + "_" +
         std::to_string(name.anomaly_end);
}

Result<UcrName> ParseUcrName(const std::string& name) {
  std::string_view sv = name;
  if (sv.substr(0, kPrefix.size()) == kPrefix) sv.remove_prefix(kPrefix.size());
  // The last three '_'-separated fields are train/begin/end; everything
  // before them is the base name (which may itself contain '_').
  std::size_t fields[3];
  std::string_view rest = sv;
  for (int f = 2; f >= 0; --f) {
    const std::size_t pos = rest.rfind('_');
    if (pos == std::string_view::npos) {
      return Status::InvalidArgument("UCR name '" + name +
                                     "': fewer than 3 numeric fields");
    }
    if (!ParseSizeT(rest.substr(pos + 1), &fields[f])) {
      return Status::InvalidArgument("UCR name '" + name +
                                     "': non-numeric field '" +
                                     std::string(rest.substr(pos + 1)) + "'");
    }
    rest = rest.substr(0, pos);
  }
  if (rest.empty()) {
    return Status::InvalidArgument("UCR name '" + name + "': empty base");
  }
  UcrName parsed;
  parsed.base = std::string(rest);
  parsed.train_length = fields[0];
  parsed.anomaly_begin = fields[1];
  parsed.anomaly_end = fields[2];
  if (parsed.anomaly_begin >= parsed.anomaly_end) {
    return Status::InvalidArgument("UCR name '" + name +
                                   "': anomaly begin >= end");
  }
  if (parsed.anomaly_begin < parsed.train_length) {
    return Status::InvalidArgument(
        "UCR name '" + name + "': anomaly begins inside the training prefix");
  }
  return parsed;
}

Status ValidateUcrDataset(const LabeledSeries& series) {
  TSAD_RETURN_IF_ERROR(series.Validate());
  if (series.anomalies().size() != 1) {
    return Status::InvalidArgument(
        "UCR dataset '" + series.name() + "' must have exactly one anomaly; " +
        std::to_string(series.anomalies().size()) + " found");
  }
  if (series.train_length() == 0) {
    return Status::InvalidArgument("UCR dataset '" + series.name() +
                                   "' has no training prefix");
  }
  const AnomalyRegion& a = series.anomalies().front();
  if (a.begin < series.train_length()) {
    return Status::InvalidArgument("UCR dataset '" + series.name() +
                                   "': anomaly inside the training prefix");
  }
  // If the name is UCR-formatted, it must agree with the labels.
  Result<UcrName> parsed = ParseUcrName(series.name());
  if (parsed.ok()) {
    if (parsed->train_length != series.train_length() ||
        parsed->anomaly_begin != a.begin || parsed->anomaly_end != a.end) {
      return Status::InvalidArgument(
          "UCR dataset '" + series.name() +
          "': name fields disagree with the actual labels [" +
          std::to_string(a.begin) + ", " + std::to_string(a.end) +
          ") / train " + std::to_string(series.train_length()));
    }
  }
  return Status::OK();
}

std::string_view UcrInjectionName(UcrInjection kind) {
  switch (kind) {
    case UcrInjection::kSpike:
      return "spike";
    case UcrInjection::kDropout:
      return "dropout";
    case UcrInjection::kFreeze:
      return "freeze";
    case UcrInjection::kSmoothHump:
      return "smooth-hump";
    case UcrInjection::kTimeWarp:
      return "time-warp";
  }
  return "?";
}

Result<LabeledSeries> MakeUcrDataset(const std::string& base_name,
                                     Series base_values,
                                     std::size_t train_length,
                                     UcrInjection kind, Rng& rng,
                                     double scale) {
  scale = std::max(1e-3, scale);
  const std::size_t n = base_values.size();
  if (train_length < 64 || train_length + 256 > n) {
    return Status::InvalidArgument(
        "base series too short for train split: n = " + std::to_string(n) +
        ", train = " + std::to_string(train_length));
  }
  // Scale anomaly size with the base signal's spread.
  double lo = base_values[0], hi = base_values[0];
  for (double v : base_values) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  const double spread = std::max(1e-9, hi - lo);

  const std::size_t width =
      static_cast<std::size_t>(rng.UniformInt(24, 96));
  const std::size_t pos = PickPosition(rng, train_length + 32, n - 32, width,
                                       /*end_bias=*/0.0);
  AnomalyRegion region;
  switch (kind) {
    case UcrInjection::kSpike:
      region = InjectSpike(base_values, pos,
                           scale * spread * rng.Uniform(0.5, 1.0) *
                               (rng.Bernoulli(0.5) ? 1.0 : -1.0));
      break;
    case UcrInjection::kDropout:
      region = InjectDropout(base_values, pos,
                             static_cast<std::size_t>(rng.UniformInt(1, 4)),
                             lo - scale * spread * 0.5);
      break;
    case UcrInjection::kFreeze: {
      const std::size_t w = std::max<std::size_t>(
          4, static_cast<std::size_t>(scale * static_cast<double>(width)));
      region = InjectFreeze(base_values, pos, w);
      break;
    }
    case UcrInjection::kSmoothHump:
      region = InjectSmoothHump(base_values, pos, width,
                                scale * spread * rng.Uniform(0.15, 0.3) *
                                    (rng.Bernoulli(0.5) ? 1.0 : -1.0));
      break;
    case UcrInjection::kTimeWarp:
      region = InjectTimeWarp(base_values, pos, std::max<std::size_t>(width, 48),
                              1.0 + scale * rng.Uniform(0.4, 0.8));
      break;
  }
  if (region.length() == 0) {
    return Status::Internal("injection produced an empty region");
  }
  UcrName name;
  name.base = base_name;
  name.train_length = train_length;
  name.anomaly_begin = region.begin;
  name.anomaly_end = region.end;
  return LabeledSeries(FormatUcrName(name), std::move(base_values), {region},
                       train_length);
}

std::string_view UcrDifficultyName(UcrDifficulty difficulty) {
  switch (difficulty) {
    case UcrDifficulty::kTrivial:
      return "trivial";
    case UcrDifficulty::kModerate:
      return "moderate";
    case UcrDifficulty::kHard:
      return "hard";
  }
  return "?";
}

UcrDifficulty RateDifficulty(const LabeledSeries& series,
                             std::size_t discord_window) {
  // Trivial: the one-liner brute force solves it (a generous slop is
  // used because a spike's recovery edge lands next to the region).
  SolveCriteria criteria;
  criteria.slop = std::max<std::size_t>(3, discord_window / 8);
  // Demand decisive separation so a noise fluke inside a wide labeled
  // region does not rate the dataset "trivial".
  criteria.min_headroom = 0.5;
  if (FindOneLiner(series, OneLinerSearchSpace{}, criteria).solved) {
    return UcrDifficulty::kTrivial;
  }
  // Moderate: a fixed-window discord's argmax is a correct UCR answer.
  DiscordDetector discord(discord_window);
  Result<std::vector<double>> scores =
      discord.Score(series.values(), series.train_length());
  if (scores.ok()) {
    const std::size_t peak =
        PredictLocation(*scores, series.train_length());
    if (peak != kNoPrediction &&
        UcrCorrect(series.anomalies().front(), peak)) {
      return UcrDifficulty::kModerate;
    }
  }
  return UcrDifficulty::kHard;
}

Result<LabeledSeries> MakeCalibratedUcrDataset(
    const std::string& base_name, const Series& base_values,
    std::size_t train_length, UcrInjection kind, uint64_t seed,
    UcrDifficulty target, std::size_t max_iterations) {
  // Every attempt replays the identical RNG stream, so the anomaly's
  // position and flavor stay fixed while only the magnitude moves.
  auto attempt = [&](double scale) -> Result<LabeledSeries> {
    Rng rng(seed);
    return MakeUcrDataset(base_name, base_values, train_length, kind, rng,
                          scale);
  };

  double lo = 0.02, hi = 8.0, scale = 1.0;
  for (std::size_t iter = 0; iter < max_iterations; ++iter) {
    TSAD_ASSIGN_OR_RETURN(LabeledSeries made, attempt(scale));
    const UcrDifficulty rated = RateDifficulty(made);
    if (rated == target) return made;
    // Larger magnitude -> easier. Move toward the target.
    const bool too_easy = static_cast<int>(rated) < static_cast<int>(target);
    if (too_easy) {
      hi = scale;
    } else {
      lo = scale;
    }
    scale = 0.5 * (lo + hi);
  }
  return Status::NotFound(
      "no magnitude in [0.02, 8] x default reaches difficulty '" +
      std::string(UcrDifficultyName(target)) + "' for base '" + base_name +
      "' with " + std::string(UcrInjectionName(kind)));
}

UcrArchive BuildDemoArchive(uint64_t seed) {
  UcrArchive archive;
  Rng master(seed);

  // 1-2: physiology (natural anomalies confirmed out-of-band, §3.1).
  {
    PhysioConfig cfg;
    cfg.seed = master.Fork(1).NextUint64();
    cfg.duration_sec = 60.0;
    EcgPlethPair pair = GenerateBidmcPair(cfg, 2500);
    archive.datasets.push_back(std::move(pair.pleth));

    PhysioConfig ecg_cfg;
    ecg_cfg.seed = master.Fork(2).NextUint64();
    LabeledSeries ecg = GenerateEcgWithPvc(ecg_cfg);
    ecg.set_train_length(3000);
    UcrName name;
    name.base = "ECG1";
    name.train_length = 3000;
    name.anomaly_begin = ecg.anomalies().front().begin;
    name.anomaly_end = ecg.anomalies().front().end;
    ecg.set_name(FormatUcrName(name));
    archive.datasets.push_back(std::move(ecg));
  }
  // 3: gait (synthetic-but-plausible insertion, §3.2).
  {
    GaitConfig cfg;
    cfg.seed = master.Fork(3).NextUint64();
    archive.datasets.push_back(GenerateGaitData(cfg).series);
  }
  // 4+: injected anomalies on clean industrial-style bases, one per
  // injection kind, spanning trivial (dropout/spike) to hard
  // (time warp).
  const UcrInjection kinds[] = {UcrInjection::kSpike, UcrInjection::kDropout,
                                UcrInjection::kFreeze,
                                UcrInjection::kSmoothHump,
                                UcrInjection::kTimeWarp};
  std::size_t idx = 0;
  for (UcrInjection kind : kinds) {
    Rng rng = master.Fork(10 + idx);
    const std::size_t n = 8000;
    Series base = Mix({Sinusoid(n, 160.0, 1.0, rng.Uniform(0.0, 6.28)),
                       Sinusoid(n, 37.0, 0.25, 1.1),
                       GaussianNoise(n, 0.03, rng)});
    Result<LabeledSeries> made =
        MakeUcrDataset("industrial" + std::to_string(idx + 1),
                       std::move(base), 2000, kind, rng);
    if (made.ok()) archive.datasets.push_back(std::move(made.value()));
    ++idx;
  }
  return archive;
}

UcrArchive BuildFullArchive(uint64_t seed) {
  UcrArchive archive = BuildDemoArchive(seed);

  struct Domain {
    const char* base;
    Series (*make)(std::size_t, Rng&);
    std::size_t length;
    std::size_t train;
  };
  const Domain domains[] = {
      {"insect_wingbeat", &InsectWingbeat, 9000, 2500},
      {"robot_joint", &RobotJointTelemetry, 10000, 3000},
      {"plant_historian", &IndustrialProcessValue, 12000, 4000},
      {"pedestrian", &PedestrianCounts, 8064, 2688},  // 12 weeks, train 4
      {"sat_bus", &SpacecraftTelemetry, 10000, 3000},
  };
  const UcrInjection kinds[] = {UcrInjection::kSpike, UcrInjection::kDropout,
                                UcrInjection::kFreeze,
                                UcrInjection::kSmoothHump,
                                UcrInjection::kTimeWarp};

  Rng master(seed ^ 0x5eedULL);
  std::size_t stream = 100;
  for (const Domain& domain : domains) {
    // One dataset per injection kind per domain, rotated so every
    // domain still contributes the full difficulty spectrum.
    for (UcrInjection kind : kinds) {
      Rng rng = master.Fork(stream++);
      Series base = domain.make(domain.length, rng);
      Result<LabeledSeries> made = MakeUcrDataset(
          std::string(domain.base) + "_" +
              std::string(UcrInjectionName(kind)),
          std::move(base), domain.train, kind, rng);
      if (made.ok()) archive.datasets.push_back(std::move(made.value()));
    }
  }
  return archive;
}

UcrAccuracy EvaluateOnArchive(const AnomalyDetector& detector,
                              const UcrArchive& archive,
                              const UcrScoreConfig& config) {
  // Each dataset is scored independently; the per-series loop fans out
  // over the pool when the detector allows concurrent Score() calls on
  // one instance. Outcomes land in archive order either way.
  auto score_one = [&](std::size_t i) -> UcrSeriesOutcome {
    const LabeledSeries& series = archive.datasets[i];
    UcrSeriesOutcome outcome;
    outcome.series_name = series.name();
    if (!series.anomalies().empty()) {
      outcome.anomaly = series.anomalies().front();
    }
    Result<std::vector<double>> scores = detector.Score(series);
    if (scores.ok()) {
      const std::size_t peak =
          PredictLocation(*scores, series.train_length());
      if (peak != kNoPrediction && series.anomalies().size() == 1) {
        outcome.predicted = peak;
        outcome.correct =
            UcrCorrect(series.anomalies().front(), peak, config);
      }
    } else {
      outcome.series_name += " [detector error: " +
                             scores.status().ToString() + "]";
    }
    return outcome;
  };

  const std::size_t n = archive.datasets.size();
  UcrAccuracy accuracy;
  if (detector.concurrent_score_safe()) {
    Result<std::vector<UcrSeriesOutcome>> outcomes =
        ParallelMap<UcrSeriesOutcome>(
            n, [&](std::size_t i) -> Result<UcrSeriesOutcome> {
              return score_one(i);
            });
    if (outcomes.ok()) accuracy.outcomes = std::move(*outcomes);
  }
  if (accuracy.outcomes.size() != n) {  // serial detector, or a
    accuracy.outcomes.clear();          // contained worker exception
    for (std::size_t i = 0; i < n; ++i) {
      accuracy.outcomes.push_back(score_one(i));
    }
  }
  accuracy.total = n;
  for (const UcrSeriesOutcome& outcome : accuracy.outcomes) {
    if (outcome.correct) ++accuracy.correct;
  }
  return accuracy;
}

}  // namespace tsad
