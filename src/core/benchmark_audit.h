// Archive-level audit orchestrator: runs all four flaw analyzers
// (triviality §2.2, density §2.3, mislabels §2.4, run-to-failure §2.5)
// over a benchmark and rolls the results into the paper's §2.6 verdict.

#ifndef TSAD_CORE_BENCHMARK_AUDIT_H_
#define TSAD_CORE_BENCHMARK_AUDIT_H_

#include <string>
#include <vector>

#include "common/series.h"
#include "core/density.h"
#include "core/mislabel.h"
#include "core/run_to_failure.h"
#include "core/triviality.h"

namespace tsad {

struct AuditConfig {
  OneLinerSearchSpace search_space;
  SolveCriteria solve_criteria;
  DensityThresholds density_thresholds;
  MislabelAuditConfig mislabel;
  RunToFailureConfig run_to_failure;
  /// Fractions above which each flaw contributes to the verdict.
  double triviality_verdict_threshold = 0.5;
  double run_to_failure_quintile_threshold = 0.4;
};

struct BenchmarkAudit {
  std::string dataset_name;
  TrivialityReport triviality;       // single-dataset report
  DensityCensus density;
  std::vector<MislabelFinding> mislabels;
  RunToFailureReport run_to_failure;

  /// §2.6: a benchmark is "irretrievably flawed" when triviality is
  /// pervasive, or labels are demonstrably wrong, or density/placement
  /// breaks the task's assumptions.
  bool irretrievably_flawed = false;
  std::vector<std::string> verdict_reasons;
};

BenchmarkAudit AuditBenchmark(const BenchmarkDataset& dataset,
                              const AuditConfig& config = {});

/// Renders the audit as a human-readable report block (the paper's
/// recommendation to *show* the problems, §4.3).
std::string FormatAudit(const BenchmarkAudit& audit);

}  // namespace tsad

#endif  // TSAD_CORE_BENCHMARK_AUDIT_H_
