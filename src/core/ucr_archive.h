// The UCR Time Series Anomaly Archive toolkit (§3): dataset naming,
// construction of single-anomaly datasets (natural-with-out-of-band
// confirmation and synthetic-but-plausible insertion), structural
// validation, difficulty calibration, and the evaluation harness that
// scores detectors by the archive's binary accuracy protocol.
//
// File-name convention (§3.1):
//   UCR_Anomaly_<base>_<train>_<begin>_<end>
// means: the first <train> points are anomaly-free training data, and
// the single anomaly lies in [<begin>, <end>).

#ifndef TSAD_CORE_UCR_ARCHIVE_H_
#define TSAD_CORE_UCR_ARCHIVE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/series.h"
#include "common/status.h"
#include "detectors/detector.h"
#include "scoring/ucr_score.h"

namespace tsad {

/// Parsed UCR dataset name.
struct UcrName {
  std::string base;
  std::size_t train_length = 0;
  std::size_t anomaly_begin = 0;
  std::size_t anomaly_end = 0;
};

/// Formats "UCR_Anomaly_<base>_<train>_<begin>_<end>".
std::string FormatUcrName(const UcrName& name);

/// Parses a UCR archive file name; accepts names with or without the
/// "UCR_Anomaly_" prefix. Returns InvalidArgument on malformed names.
Result<UcrName> ParseUcrName(const std::string& name);

/// Validates the UCR structural contract: exactly one anomaly region,
/// entirely after the training prefix; a nonempty training prefix; the
/// name (if UCR-formatted) consistent with the labels.
Status ValidateUcrDataset(const LabeledSeries& series);

/// Synthetic-but-plausible insertion transforms (§3.2).
enum class UcrInjection {
  kSpike,       // point outlier (the AspenTech -9999-style dropout too)
  kDropout,
  kFreeze,
  kSmoothHump,
  kTimeWarp,
};

std::string_view UcrInjectionName(UcrInjection kind);

/// Builds a UCR dataset from an anomaly-free base series by injecting
/// one anomaly at a random test-span location (never inside the
/// training prefix). `scale` multiplies the injection's default
/// magnitude (spike/dropout/hump amplitude, freeze width, warp
/// stretch); 1.0 is the stock size. Returns InvalidArgument when the
/// base is too short for the requested split.
Result<LabeledSeries> MakeUcrDataset(const std::string& base_name,
                                     Series base_values,
                                     std::size_t train_length,
                                     UcrInjection kind, Rng& rng,
                                     double scale = 1.0);

/// Difficulty rating (§3.2 "thread the needle between too easy and too
/// difficult").
enum class UcrDifficulty {
  kTrivial,     // a one-liner solves it
  kModerate,    // a fixed-window discord finds it
  kHard,        // neither does
};

std::string_view UcrDifficultyName(UcrDifficulty difficulty);

/// Rates a dataset by actually running the one-liner search and a
/// discord detector against it.
UcrDifficulty RateDifficulty(const LabeledSeries& series,
                             std::size_t discord_window = 64);

/// §3.2's "thread the needle between being too easy, and too
/// difficult", operationalized: bisect the injection magnitude until
/// the dataset rates `target` difficulty (default kModerate — hard
/// enough to defeat the one-liners, easy enough that a discord finds
/// it). The anomaly position and flavor are held fixed across the
/// search (every attempt replays the same RNG stream). Returns
/// NotFound if no magnitude in [0.02x, 8x] hits the target.
Result<LabeledSeries> MakeCalibratedUcrDataset(
    const std::string& base_name, const Series& base_values,
    std::size_t train_length, UcrInjection kind, uint64_t seed,
    UcrDifficulty target = UcrDifficulty::kModerate,
    std::size_t max_iterations = 10);


/// A demo archive built entirely from this repository's simulators —
/// physiology, gait, industrial sawtooth, machine telemetry — spanning
/// trivial to hard, single anomaly each.
struct UcrArchive {
  std::vector<LabeledSeries> datasets;
};
UcrArchive BuildDemoArchive(uint64_t seed = 99);

/// The full multi-domain archive: the demo archive plus datasets built
/// from every domain generator in datasets/domains.h (entomology,
/// robotics, industry, urban sensing, space science) across all five
/// injection kinds — ~28 single-anomaly datasets spanning trivial to
/// hard, mirroring §3's "the datasets span many domains".
UcrArchive BuildFullArchive(uint64_t seed = 99);

/// Runs a detector over an archive under the UCR protocol: score the
/// series, take the argmax over the test span, check it against the
/// labeled region (with slop). Series the detector errors on count as
/// incorrect (with the error recorded in the outcome's name field).
/// When detector.concurrent_score_safe() holds, series are scored in
/// parallel over the common/parallel.h pool; outcomes are placed in
/// archive order regardless of thread count.
UcrAccuracy EvaluateOnArchive(const AnomalyDetector& detector,
                              const UcrArchive& archive,
                              const UcrScoreConfig& config = {});

}  // namespace tsad

#endif  // TSAD_CORE_UCR_ARCHIVE_H_
