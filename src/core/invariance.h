// The invariance study harness (§4.2, Fig 13): run several detectors on
// the same series under increasing perturbation (Gaussian noise,
// amplitude scaling, linear trend, baseline wander) and report where
// each detector's score peaks and how decisively (the Fig 13
// "discrimination" — peak minus mean, in units of score spread).
//
// This is the paper's recommended way to communicate when an algorithm
// should be trusted: "one approach might be better than the other if we
// expect to encounter noisy data."

#ifndef TSAD_CORE_INVARIANCE_H_
#define TSAD_CORE_INVARIANCE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/series.h"
#include "common/status.h"
#include "detectors/detector.h"

namespace tsad {

/// Which perturbation family to sweep.
enum class Perturbation {
  kGaussianNoise,   // add N(0, level * signal_std)
  kAmplitudeScale,  // multiply by (1 + level)
  kLinearTrend,     // add a ramp with total rise level * signal_std
  kBaselineWander,  // add a slow sinusoid, amplitude level * signal_std
};

std::string_view PerturbationName(Perturbation p);

struct InvarianceRow {
  std::string detector_name;
  Perturbation perturbation = Perturbation::kGaussianNoise;
  double level = 0.0;
  std::size_t peak_location = 0;
  bool peak_correct = false;    // within slop of the true anomaly
  double discrimination = 0.0;  // (max - mean) / std of the score track
};

struct InvarianceConfig {
  std::vector<double> levels = {0.0, 0.25, 0.5, 1.0, 2.0};
  Perturbation perturbation = Perturbation::kGaussianNoise;
  std::size_t slop = 100;  // §4.4's positional "play"
  uint64_t seed = 1234;    // noise realizations are deterministic
};

/// Applies one perturbation to a copy of the series (labels unchanged).
LabeledSeries Perturb(const LabeledSeries& series, Perturbation perturbation,
                      double level, uint64_t seed);

/// Runs every detector at every perturbation level. Detectors that
/// error at some level contribute a row with peak_correct = false and
/// discrimination = 0.
std::vector<InvarianceRow> RunInvarianceStudy(
    const LabeledSeries& series,
    const std::vector<const AnomalyDetector*>& detectors,
    const InvarianceConfig& config = {});

}  // namespace tsad

#endif  // TSAD_CORE_INVARIANCE_H_
